//! Umbrella crate re-exporting the full public API. See README.md.
pub use ds_closure as closure;
pub use ds_fragment as fragment;
pub use ds_gen as gen;
pub use ds_graph as graph;
pub use ds_machine as machine;
pub use ds_relation as relation;
