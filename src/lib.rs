//! Umbrella crate re-exporting the full public API. See README.md.
//!
//! The highest-level entry point is [`System`]: a builder that picks
//! graph × fragmenter × execution backend and yields one [`TcEngine`] —
//! the backend-polymorphic query surface (`shortest_path`, `connected`,
//! `route`, `update`, `query_batch`) both execution substrates implement.

pub use ds_closure as closure;
pub use ds_durability as durability;
pub use ds_fragment as fragment;
pub use ds_gen as gen;
pub use ds_graph as graph;
pub use ds_machine as machine;
pub use ds_obs as obs;
pub use ds_relation as relation;
pub use ds_serve as serve;

pub mod system;

pub use ds_closure::api::{BatchAnswer, BatchStats, NetworkUpdate, QueryRequest, TcEngine};
pub use ds_closure::{
    EngineSnapshot, FallbackReason, PrecomputeStats, PrecomputeStrategy, QueryAnswer, QueryStats,
    Route, UpdateBatchReport, UpdateReport,
};
pub use ds_durability::{recover, DurabilityConfig, DurabilityError, DurableStore, Recovered};
pub use ds_obs::{MetricsSnapshot, ObsConfig, Observability, RequestTrace, TraceId};
pub use ds_relation::bulk::{MaterializeConfig, MaterializeEngine, MaterializeStats};
pub use ds_serve::{ServeConfig, ServeStats, ServedAnswer, ServedBatch, ServedUpdate, Server};
pub use system::{Backend, Fragmenter, System, SystemBuilder, SystemError};
