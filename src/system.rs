//! The `System` facade: pick generator output × fragmenter × execution
//! backend declaratively, get back one [`TcEngine`].
//!
//! The paper's phase-one independence means the same disconnection-set
//! pipeline runs identically whether sites are simulated in-process or as
//! message-passing threads. `System` makes that a one-liner:
//!
//! ```
//! use discset::fragment::linear::LinearConfig;
//! use discset::gen::deterministic::grid;
//! use discset::graph::NodeId;
//! use discset::{Backend, Fragmenter, System, TcEngine};
//!
//! let g = grid(10, 3);
//! for backend in [Backend::Inline, Backend::SiteThreads] {
//!     let mut sys = System::builder()
//!         .graph(&g)
//!         .fragmenter(Fragmenter::Linear(LinearConfig { fragments: 3, ..Default::default() }))
//!         .backend(backend)
//!         .build()
//!         .unwrap();
//!     assert_eq!(sys.shortest_path(NodeId(0), NodeId(29)).cost, Some(11));
//! }
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use ds_closure::api::{BatchAnswer, NetworkUpdate, QueryRequest, TcEngine};
use ds_closure::{
    ClosureError, DisconnectionSetEngine, EngineConfig, PrecomputeStats, QueryAnswer, Route,
    UpdateBatchReport, UpdateReport,
};
use ds_durability::{recover, DurabilityConfig, DurabilityError};
use ds_fragment::bond_energy::{bond_energy, BondEnergyConfig};
use ds_fragment::center::{center_based, CenterConfig};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::{semantic, CrossingPolicy, FragError, Fragmentation};
use ds_gen::output::expand_connections;
use ds_gen::GeneratedGraph;
use ds_graph::{Coord, CsrGraph, Edge, EdgeList};
use ds_machine::{Machine, MachineOptions};
use ds_obs::{MetricsSnapshot, Observability};
use ds_relation::bulk::{MaterializeConfig, MaterializeEngine, MaterializeError, MaterializeStats};
use ds_relation::{PathTuple, Relation};

/// Which execution substrate evaluates phase one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// `DisconnectionSetEngine` — sites simulated inside the calling
    /// process (sequentially or with scoped threads, per
    /// [`EngineConfig::mode`]).
    Inline,
    /// `Machine` — one OS thread per site, message-passing coordinator
    /// (the PRISMA/DB stand-in). Route reconstruction is unavailable.
    SiteThreads,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Inline => "inline",
            Backend::SiteThreads => "site-threads",
        })
    }
}

/// Which §3 fragmentation strategy splits the relation.
#[derive(Clone, Debug)]
pub enum Fragmenter {
    /// Coordinate sweep (§3.3) — guaranteed acyclic fragmentation graph.
    Linear(LinearConfig),
    /// Center-based growth (§3.1) — balanced fragment sizes.
    Center(CenterConfig),
    /// Bond-energy clustering (§3.2) — small disconnection sets.
    BondEnergy(BondEnergyConfig),
    /// Semantic fragmentation from per-node labels (countries, clusters).
    ByLabels {
        labels: Vec<u32>,
        parts: usize,
        policy: CrossingPolicy,
    },
    /// Use an existing fragmentation as-is.
    Prebuilt(Fragmentation),
}

/// Errors from [`SystemBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SystemError {
    /// No graph was supplied (`SystemBuilder::graph` / `network`).
    MissingGraph,
    /// No fragmenter was supplied (`SystemBuilder::fragmenter`).
    MissingFragmenter,
    /// The coordinate table length does not match the node count.
    CoordinateCountMismatch { coords: usize, nodes: usize },
    /// The fragmenter failed on this graph.
    Fragmentation(FragError),
    /// Engine construction failed.
    Closure(ClosureError),
    /// The durable store could not be recovered or attached
    /// (`ds_durability`); the string is the underlying error's display.
    Durability(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::MissingGraph => {
                write!(
                    f,
                    "no graph supplied: call .graph(..) or .network(..) before .build()"
                )
            }
            SystemError::MissingFragmenter => {
                write!(
                    f,
                    "no fragmenter supplied: call .fragmenter(..) before .build()"
                )
            }
            SystemError::CoordinateCountMismatch { coords, nodes } => {
                write!(
                    f,
                    "coordinate table covers {coords} nodes but the graph has {nodes}"
                )
            }
            SystemError::Fragmentation(e) => write!(f, "fragmentation failed: {e}"),
            SystemError::Closure(e) => write!(f, "engine construction failed: {e}"),
            SystemError::Durability(e) => write!(f, "durable store failed: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<FragError> for SystemError {
    fn from(e: FragError) -> Self {
        SystemError::Fragmentation(e)
    }
}

impl From<ClosureError> for SystemError {
    fn from(e: ClosureError) -> Self {
        SystemError::Closure(e)
    }
}

impl From<DurabilityError> for SystemError {
    fn from(e: DurabilityError) -> Self {
        SystemError::Durability(e.to_string())
    }
}

/// Fluent construction of a [`System`]. Obtain via [`System::builder`].
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    nodes: usize,
    connections: Vec<Edge>,
    coords: Option<Vec<Coord>>,
    symmetric: bool,
    has_graph: bool,
    fragmenter: Option<Fragmenter>,
    backend: Backend,
    config: EngineConfig,
    obs: Option<Arc<Observability>>,
    durable: Option<PathBuf>,
}

impl SystemBuilder {
    fn new() -> Self {
        SystemBuilder {
            nodes: 0,
            connections: Vec::new(),
            coords: None,
            symmetric: true,
            has_graph: false,
            fragmenter: None,
            backend: Backend::Inline,
            config: EngineConfig::default(),
            obs: None,
            durable: None,
        }
    }

    /// Use a generated graph (connections, coordinates and symmetry are
    /// taken from it).
    pub fn graph(mut self, g: &GeneratedGraph) -> Self {
        self.nodes = g.nodes;
        self.connections = g.connections.clone();
        self.coords = Some(g.coords.clone());
        self.symmetric = g.symmetric;
        self.has_graph = true;
        self
    }

    /// Use a raw connection relation over nodes `0..nodes` (one tuple per
    /// link; see [`SystemBuilder::symmetric`]). Coordinate-driven
    /// fragmenters ([`Fragmenter::Linear`], distributed centers) need
    /// [`SystemBuilder::coords`] as well.
    pub fn network(mut self, nodes: usize, connections: Vec<Edge>) -> Self {
        self.nodes = nodes;
        self.connections = connections;
        self.has_graph = true;
        self
    }

    /// Attach node coordinates (for coordinate-driven fragmenters).
    pub fn coords(mut self, coords: Vec<Coord>) -> Self {
        self.coords = Some(coords);
        self
    }

    /// Whether each connection tuple stands for both travel directions
    /// (default `true`; transportation networks).
    pub fn symmetric(mut self, symmetric: bool) -> Self {
        self.symmetric = symmetric;
        self
    }

    /// Choose the fragmentation strategy (required).
    pub fn fragmenter(mut self, fragmenter: Fragmenter) -> Self {
        self.fragmenter = Some(fragmenter);
        self
    }

    /// Choose the execution backend (default [`Backend::Inline`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Engine tuning: complementary scope, stored paths, chain caps,
    /// phase-one execution mode, PHE hub.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Arm an observability bundle (`ds_obs`): one shared metrics
    /// registry, request tracer, slow-query log and workload recorder
    /// across every tier this system touches. The machine backend (if
    /// chosen) traces and mirrors immediately; [`System::serve`] /
    /// [`System::serve_with`] and [`System::materialize_with`] inherit
    /// the bundle unless their config carries its own. Read the
    /// aggregate through [`System::observe`]. Disarmed (the default)
    /// costs one `Option` branch per hook.
    pub fn observability(mut self, obs: Arc<Observability>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Make the serve tier durable at `path`: [`System::serve`] /
    /// [`System::serve_with`] write-ahead-log every update and
    /// checkpoint there (unless the serve config carries its own
    /// [`ds_serve::ServeConfig::durability`]), so the served state can
    /// be rebuilt after a process death with [`System::open`].
    pub fn durable(mut self, path: impl Into<PathBuf>) -> Self {
        self.durable = Some(path.into());
        self
    }

    /// Fragment the relation and deploy the chosen backend.
    pub fn build(mut self) -> Result<System, SystemError> {
        if !self.has_graph {
            return Err(SystemError::MissingGraph);
        }
        if let Some(c) = &self.coords {
            if c.len() != self.nodes {
                return Err(SystemError::CoordinateCountMismatch {
                    coords: c.len(),
                    nodes: self.nodes,
                });
            }
        }
        let fragmenter = self
            .fragmenter
            .take()
            .ok_or(SystemError::MissingFragmenter)?;
        let frag = match fragmenter {
            Fragmenter::Linear(cfg) => linear_sweep(&self.edge_list(), &cfg)?.fragmentation,
            Fragmenter::Center(cfg) => center_based(&self.edge_list(), &cfg)?.fragmentation,
            Fragmenter::BondEnergy(cfg) => bond_energy(&self.edge_list(), &cfg)?.fragmentation,
            Fragmenter::ByLabels {
                labels,
                parts,
                policy,
            } => semantic::by_labels(self.nodes, &self.connections, &labels, parts, policy)?,
            Fragmenter::Prebuilt(frag) => frag,
        };
        let graph = self.closure_graph();
        let engine: Box<dyn TcEngine> = match self.backend {
            Backend::Inline => Box::new(DisconnectionSetEngine::build(
                graph,
                frag,
                self.symmetric,
                self.config,
            )?),
            Backend::SiteThreads => Box::new(Machine::deploy_with_options(
                graph,
                frag,
                self.symmetric,
                self.config,
                MachineOptions {
                    obs: self.obs.clone(),
                    ..MachineOptions::default()
                },
            )?),
        };
        Ok(System {
            backend: self.backend,
            symmetric: self.symmetric,
            engine,
            obs: self.obs,
            durable: self.durable,
            serve_epoch: 0,
        })
    }

    fn edge_list(&self) -> EdgeList {
        let el = EdgeList::new(self.nodes, self.connections.clone());
        match &self.coords {
            Some(c) => el.with_coords(c.clone()),
            None => el,
        }
    }

    fn closure_graph(&self) -> CsrGraph {
        let g = CsrGraph::from_edges(
            self.nodes,
            &expand_connections(&self.connections, self.symmetric),
        );
        match &self.coords {
            Some(c) => g
                .with_coords(c.clone())
                .expect("coords validated against node count"),
            None => g,
        }
    }
}

/// A deployed query system: a fragmented relation behind one execution
/// backend, driven through [`TcEngine`].
pub struct System {
    backend: Backend,
    symmetric: bool,
    engine: Box<dyn TcEngine>,
    obs: Option<Arc<Observability>>,
    /// Durable-store directory [`System::serve`] continues logging to.
    durable: Option<PathBuf>,
    /// The epoch the served state corresponds to (0 for fresh builds;
    /// the recovered epoch for [`System::open`]ed systems).
    serve_epoch: u64,
}

impl System {
    /// Start building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    /// Reopen a durable system from disk: rebuild the newest valid
    /// checkpoint under `path`, replay the surviving write-ahead-log
    /// suffix (truncating at the first torn or corrupt record), and
    /// return a ready-to-serve inline system whose [`System::serve`]
    /// continues appending to the same log at the recovered epoch.
    ///
    /// The precompute is rebuilt during recovery — checkpoints store
    /// only the fragmented relation and engine configuration.
    pub fn open(path: impl Into<PathBuf>) -> Result<System, SystemError> {
        let path = path.into();
        let recovered = recover(&path)?;
        let symmetric = recovered.snapshot.is_symmetric();
        Ok(System {
            backend: Backend::Inline,
            symmetric,
            engine: Box::new(DisconnectionSetEngine::from_snapshot(recovered.snapshot)),
            obs: None,
            durable: Some(path),
            serve_epoch: recovered.epoch,
        })
    }

    /// The backend this system deployed.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Borrow the underlying engine.
    pub fn engine(&self) -> &dyn TcEngine {
        &*self.engine
    }

    /// Mutably borrow the underlying engine.
    pub fn engine_mut(&mut self) -> &mut dyn TcEngine {
        &mut *self.engine
    }

    /// Take the engine out of the facade.
    pub fn into_engine(self) -> Box<dyn TcEngine> {
        self.engine
    }

    /// Spawn a concurrent query-serving subsystem over a snapshot of the
    /// current engine state: `workers` reader threads (each with its own
    /// scratch kernel), micro-batching with request coalescing and
    /// fragment-pair grouping, and a single writer thread that applies
    /// updates incrementally and publishes successor snapshots under an
    /// epoch counter. See `ds_serve` (re-exported as `discset::serve`).
    ///
    /// The server is independent of this `System` from the moment it
    /// starts: updates applied through either side do not affect the
    /// other.
    pub fn serve(&self, workers: usize) -> ds_serve::Server {
        self.serve_with(ds_serve::ServeConfig::with_workers(workers))
    }

    /// [`System::serve`] with full control over queue depth and
    /// micro-batch caps.
    ///
    /// If this system was built with [`SystemBuilder::observability`]
    /// and `config.obs` is unset, the server inherits the system's
    /// bundle so serve-tier metrics land in the same registry. If it
    /// was built with [`SystemBuilder::durable`] (or reopened with
    /// [`System::open`]) and `config.durability` is unset, the server
    /// write-ahead-logs every update to the system's durable directory.
    ///
    /// # Panics
    ///
    /// Panics if the durable store cannot be attached (unreadable or
    /// unwritable directory). Use [`System::try_serve_with`] to handle
    /// that case.
    pub fn serve_with(&self, config: ds_serve::ServeConfig) -> ds_serve::Server {
        match self.try_serve_with(config) {
            Ok(server) => server,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`System::serve_with`], but surfacing durable-store attachment
    /// failures as [`SystemError::Durability`] instead of panicking.
    pub fn try_serve_with(
        &self,
        mut config: ds_serve::ServeConfig,
    ) -> Result<ds_serve::Server, SystemError> {
        if config.obs.is_none() {
            config.obs = self.obs.clone();
        }
        if config.durability.is_none() {
            if let Some(dir) = &self.durable {
                config.durability = Some(DurabilityConfig::at(dir.clone()));
            }
        }
        Ok(ds_serve::Server::try_start_at(
            self.engine.snapshot(),
            self.serve_epoch,
            config,
        )?)
    }

    /// Materialize the full transitive closure of this system's
    /// fragmented relation as one bulk operation: per-fragment
    /// semi-naive fixpoint workers in parallel, exchanging
    /// disconnection-set-selected deltas in rounds (see
    /// `ds_relation::bulk`, re-exported as `discset::relation::bulk`).
    ///
    /// The result is tuple-identical to running the sequential
    /// semi-naive closure on the whole relation: every minimum-cost
    /// `(src, dst, cost)` path tuple, sorted.
    ///
    /// Errors with [`MaterializeError::RoundLimit`] if the round safety
    /// valve ([`MaterializeConfig::max_rounds`]) trips before the
    /// fixpoint.
    pub fn materialize(&self) -> Result<(Relation<PathTuple>, MaterializeStats), MaterializeError> {
        self.materialize_with(MaterializeConfig::default())
    }

    /// [`System::materialize`] with control over worker threads, a
    /// source restriction (the paper's keyhole selection) and the
    /// round safety valve.
    pub fn materialize_with(
        &self,
        mut config: MaterializeConfig,
    ) -> Result<(Relation<PathTuple>, MaterializeStats), MaterializeError> {
        if config.obs.is_none() {
            config.obs = self.obs.clone();
        }
        MaterializeEngine::from_fragmentation(self.engine.fragmentation(), self.symmetric, config)
            .materialize()
    }

    /// The observability bundle this system was built with, if any.
    pub fn observability(&self) -> Option<&Arc<Observability>> {
        self.obs.as_ref()
    }

    /// A point-in-time snapshot of every metric the system's
    /// observability bundle has accumulated — machine-tier gauges,
    /// serve-tier counters and the request latency histogram, plus
    /// anything custom registered on the same bundle. Returns an empty
    /// snapshot when the system was built without
    /// [`SystemBuilder::observability`].
    pub fn observe(&self) -> MetricsSnapshot {
        match &self.obs {
            Some(obs) => obs.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("backend", &self.backend)
            .field("sites", &self.engine.site_count())
            .finish()
    }
}

impl TcEngine for System {
    fn backend_name(&self) -> &'static str {
        self.engine.backend_name()
    }

    fn site_count(&self) -> usize {
        self.engine.site_count()
    }

    fn fragmentation(&self) -> &Fragmentation {
        self.engine.fragmentation()
    }

    fn shortest_path(&mut self, x: ds_graph::NodeId, y: ds_graph::NodeId) -> QueryAnswer {
        self.engine.shortest_path(x, y)
    }

    /// Forwarded to the backend rather than the trait default, so the
    /// backend's reachability fast path (SCC/chain index, no Dijkstra
    /// sweep) answers instead of a full shortest-path computation.
    fn connected(&mut self, x: ds_graph::NodeId, y: ds_graph::NodeId) -> bool {
        self.engine.connected(x, y)
    }

    fn route(
        &mut self,
        x: ds_graph::NodeId,
        y: ds_graph::NodeId,
    ) -> Result<Option<Route>, ClosureError> {
        self.engine.route(x, y)
    }

    fn update(&mut self, update: &NetworkUpdate) -> Result<UpdateReport, ClosureError> {
        self.engine.update(update)
    }

    fn precompute_stats(&self) -> PrecomputeStats {
        self.engine.precompute_stats()
    }

    fn snapshot(&self) -> ds_closure::EngineSnapshot {
        self.engine.snapshot()
    }

    fn update_batch(
        &mut self,
        updates: &[NetworkUpdate],
    ) -> Result<UpdateBatchReport, ClosureError> {
        self.engine.update_batch(updates)
    }

    fn query_batch(&mut self, requests: &[QueryRequest]) -> BatchAnswer {
        self.engine.query_batch(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::deterministic::grid;
    use ds_graph::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn linear_system(backend: Backend) -> System {
        System::builder()
            .graph(&grid(10, 3))
            .fragmenter(Fragmenter::Linear(LinearConfig {
                fragments: 3,
                ..Default::default()
            }))
            .backend(backend)
            .build()
            .unwrap()
    }

    #[test]
    fn both_backends_answer_identically() {
        let mut inline = linear_system(Backend::Inline);
        let mut threads = linear_system(Backend::SiteThreads);
        assert_eq!(inline.backend_name(), "inline");
        assert_eq!(threads.backend_name(), "site-threads");
        for (x, y) in [(0u32, 29u32), (5, 17), (12, 12), (29, 0)] {
            assert_eq!(
                inline.shortest_path(n(x), n(y)).cost,
                threads.shortest_path(n(x), n(y)).cost,
                "query {x}->{y}"
            );
        }
    }

    /// The `precompute_threads` knob engages the threaded local-sweep
    /// path through the facade; tables (and therefore answers) are
    /// identical to the sequential build on both backends.
    #[test]
    fn precompute_threads_knob_engages_parallel_build() {
        for backend in [Backend::Inline, Backend::SiteThreads] {
            let mut seq = linear_system(backend);
            let mut par = System::builder()
                .graph(&grid(10, 3))
                .fragmenter(Fragmenter::Linear(LinearConfig {
                    fragments: 3,
                    ..Default::default()
                }))
                .backend(backend)
                .config(EngineConfig {
                    precompute_threads: 4,
                    ..EngineConfig::default()
                })
                .build()
                .unwrap();
            for (x, y) in [(0u32, 29u32), (5, 17), (12, 12), (29, 0)] {
                assert_eq!(
                    par.shortest_path(n(x), n(y)).cost,
                    seq.shortest_path(n(x), n(y)).cost,
                    "{backend:?} query {x}->{y}"
                );
            }
            // The knob also covers maintenance-time full recomputes:
            // updates keep answering exactly.
            let f0 = par.fragmentation().fragment(0).clone();
            let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
            par.update(&NetworkUpdate::Insert {
                edge: ds_graph::Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
            seq.update(&NetworkUpdate::Insert {
                edge: ds_graph::Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
            assert_eq!(
                par.shortest_path(n(0), n(29)).cost,
                seq.shortest_path(n(0), n(29)).cost,
                "{backend:?} after update"
            );
        }
    }

    /// Both backends deploy through the same skeleton precompute and
    /// report where their build time went.
    #[test]
    fn precompute_stats_through_the_facade_on_both_backends() {
        use ds_closure::PrecomputeStrategy;
        for backend in [Backend::Inline, Backend::SiteThreads] {
            let sys = linear_system(backend);
            let stats = sys.precompute_stats();
            assert_eq!(stats.strategy, PrecomputeStrategy::Skeleton, "{backend}");
            assert!(stats.local_sweeps_ns > 0, "{backend}: {stats:?}");
            assert!(stats.total_ns() >= stats.local_sweeps_ns, "{backend}");
        }
    }

    #[test]
    fn batch_through_the_facade() {
        let mut sys = linear_system(Backend::Inline);
        let reqs: Vec<QueryRequest> = (0..6u32)
            .map(|i| QueryRequest::new(n(i), n(29 - i)))
            .collect();
        let batch = sys.query_batch(&reqs);
        assert_eq!(batch.answers.len(), 6);
        assert!(batch.stats.plans_reused > 0);
    }

    #[test]
    fn update_batch_through_the_facade_on_both_backends() {
        use ds_graph::Edge;
        for backend in [Backend::Inline, Backend::SiteThreads] {
            let mut sys = linear_system(backend);
            let f0 = sys.fragmentation().fragment(0).clone();
            let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
            let updates = vec![
                NetworkUpdate::Insert {
                    edge: Edge::new(a, b, 1),
                    owner: 0,
                },
                NetworkUpdate::Remove {
                    src: a,
                    dst: b,
                    owner: 0,
                },
            ];
            let batch = sys.update_batch(&updates).unwrap();
            assert_eq!(batch.reports.len(), 2, "{backend:?}");
            assert!(batch.incremental_fraction() > 0.0, "{backend:?}");
            assert!(sys.connected(n(0), n(29)), "{backend:?} still answers");
        }
    }

    /// Both backends can hand their state to the serve subsystem; the
    /// served answers match the engine's own.
    #[test]
    fn serve_from_both_backends() {
        for backend in [Backend::Inline, Backend::SiteThreads] {
            let mut sys = linear_system(backend);
            let server = sys.serve(2);
            for (x, y) in [(0u32, 29u32), (5, 17), (12, 12)] {
                assert_eq!(
                    server.query(n(x), n(y)).unwrap().answer.cost,
                    sys.shortest_path(n(x), n(y)).cost,
                    "{backend:?} {x}->{y}"
                );
            }
            let stats = server.shutdown();
            assert_eq!(stats.backend, sys.backend_name());
            assert_eq!(stats.requests, 3);
        }
    }

    /// Bulk materialization through the facade agrees with the
    /// per-query engine on every pair it answers.
    #[test]
    fn materialize_matches_engine_answers() {
        let mut sys = linear_system(Backend::Inline);
        let (closure, stats) = sys.materialize().unwrap();
        assert!(stats.fragments >= 2);
        assert!(stats.rounds >= 1);
        assert_eq!(stats.tc.result_tuples, closure.len());
        for (x, y) in [(0u32, 29u32), (5, 17), (29, 0), (3, 28)] {
            assert_eq!(
                closure.cost_of(n(x), n(y)),
                sys.shortest_path(n(x), n(y)).cost,
                "pair {x}->{y}"
            );
        }
        // The keyhole-restricted run is the source-slice of the full one.
        let (slice, _) = sys
            .materialize_with(MaterializeConfig {
                sources: Some(vec![n(4)]),
                ..Default::default()
            })
            .unwrap();
        let expected: Vec<_> = closure
            .rows()
            .iter()
            .filter(|t| t.src == n(4))
            .copied()
            .collect();
        assert_eq!(slice.rows(), expected);
    }

    /// One armed bundle handed to the builder collects metrics from the
    /// machine backend, the serve tier and bulk materialization, all
    /// readable through `System::observe()`. A disarmed system answers
    /// identically and observes nothing.
    #[test]
    fn one_observability_bundle_spans_all_three_tiers() {
        let obs = Observability::armed();
        let mut sys = System::builder()
            .graph(&grid(10, 3))
            .fragmenter(Fragmenter::Linear(LinearConfig {
                fragments: 3,
                ..Default::default()
            }))
            .backend(Backend::SiteThreads)
            .observability(Arc::clone(&obs))
            .build()
            .unwrap();
        let mut plain = linear_system(Backend::SiteThreads);

        // Machine tier: direct engine queries trace and mirror.
        for (x, y) in [(0u32, 29u32), (5, 17)] {
            assert_eq!(
                sys.shortest_path(n(x), n(y)).cost,
                plain.shortest_path(n(x), n(y)).cost,
                "{x}->{y}"
            );
        }
        // Serve tier inherits the bundle through serve_with.
        let server = sys.serve(2);
        server.query(n(0), n(29)).unwrap();
        server.shutdown();
        // Bulk tier inherits through materialize_with.
        sys.materialize().unwrap();

        let snap = sys.observe();
        assert_eq!(snap.gauge("machine_queries"), Some(2), "{snap:?}");
        assert_eq!(snap.counter("serve_requests"), Some(1), "{snap:?}");
        assert!(snap.gauge("materialize_result_tuples").unwrap() > 0);
        assert!(!obs.tracer().recent(16).is_empty());

        // Disarmed facade: empty snapshot, nothing recorded anywhere.
        assert!(plain.observe().counter("serve_requests").is_none());
        assert_eq!(
            plain.observe().to_json(),
            MetricsSnapshot::default().to_json()
        );
    }

    #[test]
    fn coordinate_mismatch_is_an_error_not_a_panic() {
        use ds_graph::{Coord, Edge};
        let err = System::builder()
            .network(5, vec![Edge::unit(NodeId(0), NodeId(1))])
            .coords(vec![Coord::new(0.0, 0.0); 3])
            .fragmenter(Fragmenter::Linear(LinearConfig::default()))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SystemError::CoordinateCountMismatch {
                coords: 3,
                nodes: 5
            }
        );
    }

    #[test]
    fn missing_pieces_are_reported() {
        assert_eq!(
            System::builder().build().unwrap_err(),
            SystemError::MissingGraph
        );
        assert_eq!(
            System::builder().graph(&grid(4, 2)).build().unwrap_err(),
            SystemError::MissingFragmenter
        );
    }

    /// Build a durable system, serve updates through it, kill the
    /// server, and reopen from disk: the reopened system answers
    /// identically and continues at the recovered epoch.
    #[test]
    fn durable_system_reopens_after_restart() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "discset-system-durable-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let sys = System::builder()
            .graph(&grid(10, 3))
            .fragmenter(Fragmenter::Linear(LinearConfig {
                fragments: 3,
                ..Default::default()
            }))
            .durable(&dir)
            .build()
            .unwrap();
        let f0 = sys.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        {
            let server = sys.serve(2);
            server
                .update(&NetworkUpdate::Insert {
                    edge: ds_graph::Edge::new(a, b, 1),
                    owner: 0,
                })
                .unwrap();
            assert_eq!(server.query(a, b).unwrap().answer.cost, Some(1));
            server.shutdown();
        }

        let mut reopened = System::open(&dir).expect("recover");
        assert_eq!(reopened.shortest_path(a, b).cost, Some(1));
        let server = reopened.serve(2);
        assert_eq!(
            server.stats().epoch,
            1,
            "serving resumes at the recovered epoch"
        );
        assert_eq!(server.query(a, b).unwrap().answer.cost, Some(1));
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prebuilt_fragmentation_and_labels() {
        let g = grid(6, 2);
        let labels: Vec<u32> = (0..12u32).map(|i| i / 6).collect();
        let mut sys = System::builder()
            .graph(&g)
            .fragmenter(Fragmenter::ByLabels {
                labels,
                parts: 2,
                policy: CrossingPolicy::LowerBlock,
            })
            .backend(Backend::SiteThreads)
            .build()
            .unwrap();
        assert_eq!(sys.site_count(), 2);
        assert!(sys.connected(n(0), n(11)));
    }
}
