//! Tuple types of the connection and path relations.

use std::fmt;

use ds_graph::{Cost, Edge, NodeId};

/// A tuple of the path relation: "there is a path from `src` to `dst` of
/// total cost `cost`". The base relation `R` uses the same shape (a path
/// of one edge), exactly as the paper's `R` does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PathTuple {
    pub src: NodeId,
    pub dst: NodeId,
    pub cost: Cost,
}

impl PathTuple {
    pub fn new(src: NodeId, dst: NodeId, cost: Cost) -> Self {
        PathTuple { src, dst, cost }
    }

    /// The `(src, dst)` key the min-cost aggregation groups by.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.src, self.dst)
    }
}

impl From<Edge> for PathTuple {
    fn from(e: Edge) -> Self {
        PathTuple {
            src: e.src,
            dst: e.dst,
            cost: e.cost,
        }
    }
}

impl From<PathTuple> for Edge {
    fn from(t: PathTuple) -> Self {
        Edge {
            src: t.src,
            dst: t.dst,
            cost: t.cost,
        }
    }
}

impl fmt::Display for PathTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {} : {})", self.src, self.dst, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_roundtrip() {
        let e = Edge::new(NodeId(1), NodeId(2), 9);
        let t = PathTuple::from(e);
        assert_eq!(t.endpoints(), (NodeId(1), NodeId(2)));
        assert_eq!(Edge::from(t), e);
    }

    #[test]
    fn display() {
        assert_eq!(
            PathTuple::new(NodeId(0), NodeId(3), 7).to_string(),
            "(0 -> 3 : 7)"
        );
    }
}
