//! Transitive closure as an iterated join program.
//!
//! Two classical strategies over the path relation:
//! * **naive** — re-join the whole accumulated result with the base
//!   relation every round;
//! * **semi-naive** — join only the *delta* (tuples that improved last
//!   round), the strategy the disconnection set approach assumes
//!   per-fragment.
//!
//! Both compute the *min-cost* closure (group the discovered paths by
//! endpoint pair, keep the cheapest) and accept an optional source
//! restriction — the "additional selections" that disconnection sets
//! introduce: "they act as intermediate nodes that must be mandatorily
//! traversed" (§2.1), so a fragment subquery only ever starts from its
//! entry border set.
//!
//! Iteration counts are reported in [`TcStats`]; for unit costs the
//! semi-naive fixpoint arrives after (hop-)diameter rounds, which is the
//! quantity the paper's speed-up argument is built on.

use std::collections::HashMap;

use ds_graph::{Cost, NodeId};

use crate::join::{hash_join, JoinIndex};
use crate::relation::Relation;
use crate::stats::TcStats;
use crate::tuple::PathTuple;

/// Semi-naive min-cost transitive closure.
///
/// With `sources = Some(set)`, only paths starting in `set` are derived
/// (the keyhole selection); with `None`, the full closure.
pub fn seminaive_closure(
    edges: &Relation<PathTuple>,
    sources: Option<&[NodeId]>,
) -> (Relation<PathTuple>, TcStats) {
    let mut stats = TcStats::default();
    // best[(s, d)] = cheapest known path cost.
    let mut best: HashMap<(NodeId, NodeId), Cost> = HashMap::new();
    let mut delta: Vec<PathTuple> = Vec::new();

    let seed: Box<dyn Fn(&PathTuple) -> bool> = match sources {
        Some(set) => {
            let set: std::collections::HashSet<NodeId> = set.iter().copied().collect();
            Box::new(move |t: &PathTuple| set.contains(&t.src))
        }
        None => Box::new(|_| true),
    };
    for t in edges.rows().iter().filter(|t| seed(t)) {
        stats.tuples_generated += 1;
        if improves(&mut best, t) {
            delta.push(*t);
        }
    }

    // The build side of the iterated join never changes: index the edge
    // relation once and probe it with each round's delta.
    let index = JoinIndex::build(edges, |r| r.src);
    let mut joined = Vec::new();
    while !delta.is_empty() {
        stats.iterations += 1;
        if stats.iterations > 1 {
            stats.index_reuses += 1;
        }
        joined.clear();
        stats.tuples_generated += index.join_into(
            &delta,
            |l| l.dst,
            |l, r| PathTuple::new(l.src, r.dst, l.cost + r.cost),
            &mut joined,
        );
        let mut next = Vec::new();
        for t in &joined {
            if improves(&mut best, t) {
                next.push(*t);
            }
        }
        stats.delta_sizes.push(next.len());
        delta = next;
    }

    let result = collect(best);
    stats.result_tuples = result.len();
    (result, stats)
}

/// Naive min-cost transitive closure: re-derives everything each round.
/// Kept as the baseline the semi-naive strategy is measured against.
pub fn naive_closure(
    edges: &Relation<PathTuple>,
    sources: Option<&[NodeId]>,
) -> (Relation<PathTuple>, TcStats) {
    let mut stats = TcStats::default();
    let base = match sources {
        Some(set) => {
            let set: std::collections::HashSet<NodeId> = set.iter().copied().collect();
            edges.select(move |t| set.contains(&t.src))
        }
        None => edges.clone(),
    };
    let mut total = base.min_cost();
    stats.tuples_generated += total.len();

    // As in the semi-naive loop, the build side (the base relation) is
    // static: index it once, probe it with the whole accumulated result
    // each round — that re-probing is what makes the strategy "naive".
    let index = JoinIndex::build(edges, |r| r.src);
    loop {
        stats.iterations += 1;
        if stats.iterations > 1 {
            stats.index_reuses += 1;
        }
        let mut joined = Vec::new();
        stats.tuples_generated += index.join_into(
            total.rows(),
            |l| l.dst,
            |l, r| PathTuple::new(l.src, r.dst, l.cost + r.cost),
            &mut joined,
        );
        stats.delta_sizes.push(joined.len());
        let next = total
            .union(&Relation::from_rows("naive", joined))
            .min_cost();
        if next.rows() == total.rows() {
            break;
        }
        total = next;
    }
    stats.result_tuples = total.len();
    (total, stats)
}

/// "Smart" min-cost transitive closure by repeated squaring
/// (the logarithmic strategy of the paper's ref [16], Ioannidis &
/// Ramakrishnan): each round composes the accumulated path relation with
/// *itself*, so path lengths double per round and the fixpoint arrives
/// after ⌈log₂ diameter⌉ + 1 rounds instead of `diameter`.
///
/// The price is fatter intermediate joins (paths ⋈ paths instead of
/// delta ⋈ edges) — the classic iterations-vs-work trade-off, measured in
/// the `kernels` bench.
pub fn smart_closure(edges: &Relation<PathTuple>) -> (Relation<PathTuple>, TcStats) {
    let mut stats = TcStats::default();
    let mut total = edges.min_cost();
    stats.tuples_generated += total.len();
    loop {
        stats.iterations += 1;
        let squared = hash_join(
            &total,
            &total,
            |l| l.dst,
            |r| r.src,
            |l, r| PathTuple::new(l.src, r.dst, l.cost + r.cost),
        );
        stats.tuples_generated += squared.len();
        stats.delta_sizes.push(squared.len());
        let next = total.union(&squared).min_cost();
        if next.rows() == total.rows() {
            break;
        }
        total = next;
    }
    stats.result_tuples = total.len();
    (total, stats)
}

fn improves(best: &mut HashMap<(NodeId, NodeId), Cost>, t: &PathTuple) -> bool {
    match best.entry(t.endpoints()) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            if t.cost < *e.get() {
                e.insert(t.cost);
                true
            } else {
                false
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(t.cost);
            true
        }
    }
}

fn collect(best: HashMap<(NodeId, NodeId), Cost>) -> Relation<PathTuple> {
    let mut rows: Vec<PathTuple> = best
        .into_iter()
        .map(|((s, d), c)| PathTuple::new(s, d, c))
        .collect();
    rows.sort_unstable();
    Relation::from_rows("tc", rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn path_edges(len: u32) -> Relation<PathTuple> {
        Relation::from_rows(
            "edge",
            (0..len)
                .map(|i| PathTuple::new(n(i), n(i + 1), 1))
                .collect(),
        )
    }

    #[test]
    fn seminaive_full_closure_of_path() {
        let (tc, stats) = seminaive_closure(&path_edges(4), None);
        // All ordered pairs i < j: 4+3+2+1 = 10.
        assert_eq!(tc.len(), 10);
        assert_eq!(tc.cost_of(n(0), n(4)), Some(4));
        // Fixpoint after diameter rounds (plus the empty-delta probe).
        assert!(stats.iterations <= 4, "iterations {}", stats.iterations);
        assert_eq!(stats.result_tuples, 10);
    }

    /// The satellite perf fix: the hash-join build table over the edge
    /// relation is built once and probed every following round, and the
    /// per-iteration delta trajectory is recorded.
    #[test]
    fn build_table_is_reused_and_deltas_are_tracked() {
        let (tc, stats) = seminaive_closure(&path_edges(4), None);
        assert_eq!(tc.len(), 10);
        assert_eq!(stats.index_reuses, stats.iterations - 1);
        assert_eq!(stats.delta_sizes.len(), stats.iterations);
        // Path graph: no cost improvements, so seeds + deltas = result.
        assert_eq!(stats.delta_sizes.iter().sum::<usize>(), 10 - 4);
        assert_eq!(*stats.delta_sizes.last().unwrap(), 0, "fixpoint probe");
        let (_, nstats) = naive_closure(&path_edges(4), None);
        assert_eq!(nstats.index_reuses, nstats.iterations - 1);
    }

    #[test]
    fn naive_matches_seminaive() {
        let edges = Relation::from_rows(
            "edge",
            vec![
                PathTuple::new(n(0), n(1), 2),
                PathTuple::new(n(1), n(2), 2),
                PathTuple::new(n(0), n(2), 10), // worse direct route
                PathTuple::new(n(2), n(0), 1),  // cycle back
            ],
        );
        let (a, _) = seminaive_closure(&edges, None);
        let (b, _) = naive_closure(&edges, None);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cost_of(n(0), n(2)), Some(4), "indirect route wins");
        assert_eq!(a.cost_of(n(0), n(0)), Some(5), "round trip via cycle");
    }

    #[test]
    fn naive_generates_more_tuples() {
        let edges = path_edges(6);
        let (_, semi) = seminaive_closure(&edges, None);
        let (_, naive) = naive_closure(&edges, None);
        assert!(
            naive.tuples_generated > semi.tuples_generated,
            "naive {} vs semi-naive {}",
            naive.tuples_generated,
            semi.tuples_generated
        );
    }

    #[test]
    fn source_restriction_is_the_keyhole() {
        let edges = path_edges(5);
        let (tc, _) = seminaive_closure(&edges, Some(&[n(2)]));
        // Only paths from node 2: (2,3), (2,4), (2,5).
        assert_eq!(tc.len(), 3);
        assert!(tc.rows().iter().all(|t| t.src == n(2)));
        let (tc_naive, _) = naive_closure(&edges, Some(&[n(2)]));
        assert_eq!(tc.rows(), tc_naive.rows());
    }

    #[test]
    fn smart_matches_seminaive_with_fewer_iterations() {
        let edges = path_edges(16);
        let (semi, semi_stats) = seminaive_closure(&edges, None);
        let (smart, smart_stats) = smart_closure(&edges);
        assert_eq!(semi.rows(), smart.rows());
        // 16-hop diameter: semi-naive needs ~16 rounds, squaring ~5.
        assert!(
            smart_stats.iterations < semi_stats.iterations / 2,
            "smart {} vs semi-naive {}",
            smart_stats.iterations,
            semi_stats.iterations
        );
    }

    #[test]
    fn smart_handles_cycles_and_costs() {
        let edges = Relation::from_rows(
            "edge",
            vec![
                PathTuple::new(n(0), n(1), 2),
                PathTuple::new(n(1), n(2), 2),
                PathTuple::new(n(2), n(0), 1),
                PathTuple::new(n(0), n(2), 10),
            ],
        );
        let (smart, _) = smart_closure(&edges);
        let (semi, _) = seminaive_closure(&edges, None);
        assert_eq!(smart.rows(), semi.rows());
        assert_eq!(smart.cost_of(n(0), n(2)), Some(4));
    }

    #[test]
    fn cycles_terminate() {
        let edges = Relation::from_rows(
            "edge",
            vec![
                PathTuple::new(n(0), n(1), 1),
                PathTuple::new(n(1), n(2), 1),
                PathTuple::new(n(2), n(0), 1),
            ],
        );
        let (tc, stats) = seminaive_closure(&edges, None);
        assert_eq!(
            tc.len(),
            9,
            "all ordered pairs incl. self-loops via the cycle"
        );
        assert_eq!(tc.cost_of(n(0), n(0)), Some(3));
        assert!(stats.iterations < 10, "must converge quickly");
    }

    #[test]
    fn empty_edges() {
        let e: Relation<PathTuple> = Relation::empty("edge");
        let (tc, stats) = seminaive_closure(&e, None);
        assert!(tc.is_empty());
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn iterations_track_hop_diameter() {
        // A path of length 8 needs ~8 rounds; split in two halves of 4,
        // each fragment needs ~4 — the §2.1 speed-up source.
        let (_, whole) = seminaive_closure(&path_edges(8), None);
        let half1 = Relation::from_rows(
            "h1",
            (0..4).map(|i| PathTuple::new(n(i), n(i + 1), 1)).collect(),
        );
        let (_, frag) = seminaive_closure(&half1, None);
        assert!(frag.iterations < whole.iterations);
    }
}
