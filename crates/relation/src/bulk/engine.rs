//! The parallel fragmented materialization engine.
//!
//! One semi-naive fixpoint worker per fragment, rounds of delta exchange
//! between them, a final cross-fragment assembly:
//!
//! 1. **Seed.** Every fragment seeds its own edge relation (optionally
//!    source-restricted — the paper's keyhole selection).
//! 2. **Local fixpoint.** Each active worker drains its inbox and runs
//!    semi-naive iteration over its *local* edges (a prebuilt adjacency
//!    index, probed every inner round) until no local delta remains.
//! 3. **Exchange.** Newly improved tuples whose endpoint lies on the
//!    fragment's border are shipped — via the disconnection-set
//!    selection of [`super::exchange::ExchangeRouter`] — exactly to the
//!    fragments that share that endpoint; interior tuples never leave.
//! 4. Repeat from 2 until no inbox holds anything: the global fixpoint.
//! 5. **Assembly.** Per-fragment result maps are merged with min-cost
//!    aggregation — "effectively a sequence of binary joins between a
//!    number of very small relations" (§2.1).
//!
//! Workers run on a std-only pool (jobs queue + result channel, the
//! `ds_serve` queue/worker idiom); with one thread the same rounds run
//! inline, so the algorithm — and its output, tuple-identical to
//! [`crate::tc::seminaive_closure`] — is independent of the thread
//! count.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ds_fault::{lock_unpoisoned, wait_unpoisoned, FaultPlan, FaultPoint};
use ds_fragment::Fragmentation;
use ds_graph::{BitSet, Cost, NodeId, INFINITE_COST};

use super::exchange::ExchangeRouter;
use super::partition::FragmentPartition;
use crate::relation::Relation;
use crate::stats::TcStats;
use crate::tuple::PathTuple;

/// Default for [`MaterializeConfig::dense_limit`]: up to 2 MiB of
/// distance table per fragment.
pub const DEFAULT_DENSE_LIMIT: usize = 512;

/// Tuning knobs for one materialization run.
#[derive(Clone, Debug)]
pub struct MaterializeConfig {
    /// Worker threads. `0` (the default) sizes the pool to
    /// `min(fragments, available_parallelism)`; `1` runs the identical
    /// round structure inline, without spawning.
    pub threads: usize,
    /// Restrict the closure to paths starting in this set (the §2.1
    /// keyhole selection). `None` materializes the full closure.
    pub sources: Option<Vec<NodeId>>,
    /// Safety valve on exchange rounds; `0` means unbounded (the
    /// fixpoint is guaranteed to terminate on finite relations).
    pub max_rounds: usize,
    /// Up to this many graph nodes, each worker keeps its result in a
    /// dense n×n distance matrix (one array slot per pair — no hashing
    /// on the hottest operation) at n² × 8 bytes per fragment; above
    /// it, a hash map keyed by packed pairs. `0` forces the sparse map.
    pub dense_limit: usize,
    /// Deterministic fault plan fired once per fragment round
    /// ([`FaultPoint::BulkWorker`]). `None` (the default) reduces the
    /// hook to a single branch.
    pub fault: Option<Arc<FaultPlan>>,
    /// Observability bundle (`ds_obs`): after a successful run the
    /// resulting [`MaterializeStats`] are mirrored into the metrics
    /// registry as `materialize_*` gauges
    /// ([`MaterializeStats::mirror_into`]). `None` (the default) skips
    /// the mirror entirely.
    pub obs: Option<Arc<ds_obs::Observability>>,
}

impl Default for MaterializeConfig {
    fn default() -> Self {
        MaterializeConfig {
            threads: 0,
            sources: None,
            max_rounds: 0,
            dense_limit: DEFAULT_DENSE_LIMIT,
            fault: None,
            obs: None,
        }
    }
}

impl MaterializeConfig {
    /// Full closure on `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        MaterializeConfig {
            threads,
            ..Default::default()
        }
    }
}

/// Errors of one materialization run.
///
/// Returned, never panicked: in pool mode a panic would unwind the
/// coordinator inside `std::thread::scope` while workers block on the
/// job-queue condvar — the error path instead closes the queue first, so
/// every worker observes the shutdown and joins cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaterializeError {
    /// The exchange rounds hit [`MaterializeConfig::max_rounds`] without
    /// reaching the global fixpoint.
    RoundLimit {
        /// The configured round budget that was exhausted.
        max_rounds: usize,
    },
    /// A worker panicked (or an injected fault killed it) while running
    /// this fragment's round. The run is aborted, the queue closed, and
    /// every surviving worker joined — the panic never crosses into the
    /// caller, and the engine stays usable for a fresh run.
    WorkerPanicked {
        /// The fragment whose round was being evaluated.
        fragment: usize,
    },
}

impl fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterializeError::RoundLimit { max_rounds } => write!(
                f,
                "materialization exceeded max_rounds = {max_rounds} without reaching the fixpoint"
            ),
            MaterializeError::WorkerPanicked { fragment } => write!(
                f,
                "materialization worker panicked on fragment {fragment}; the run was aborted"
            ),
        }
    }
}

impl std::error::Error for MaterializeError {}

/// Per-exchange-round accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Fragments with a non-empty inbox this round.
    pub active_fragments: usize,
    /// Delta tuples admitted (new or improved) across all fragments.
    pub improved: usize,
    /// Tuple copies shipped to other fragments after the round.
    pub exchanged: usize,
}

/// What one materialization run did: rounds, exchange volume, selection
/// effectiveness, per-fragment load and the aggregate [`TcStats`].
#[derive(Clone, Debug, Default)]
pub struct MaterializeStats {
    /// Fragments in the partition.
    pub fragments: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// Exchange rounds until the global fixpoint.
    pub rounds: usize,
    /// Per-round delta sizes and exchange tuple volume.
    pub per_round: Vec<RoundStats>,
    /// Total tuple copies shipped between fragments.
    pub exchanged_tuples: usize,
    /// Improved tuples the disconnection-set selection kept local
    /// (interior endpoint — never offered to the exchange).
    pub kept_local: usize,
    /// Busy time per fragment worker.
    pub busy: Vec<Duration>,
    /// Aggregate closure counters (max per-fragment fixpoint depth,
    /// generated tuples, per-round deltas, exchange totals).
    pub tc: TcStats,
}

impl MaterializeStats {
    /// Mirror the run's headline numbers into `registry` as
    /// `materialize_*` gauges — the registry-backed view of this
    /// struct, same convention as `MachineStats::mirror_into`. Gauges
    /// (not counters) because the struct owns the truth: a later run
    /// overwrites, never accumulates.
    pub fn mirror_into(&self, registry: &ds_obs::MetricsRegistry) {
        registry
            .gauge("materialize_fragments")
            .set(self.fragments as u64);
        registry
            .gauge("materialize_threads")
            .set(self.threads as u64);
        registry.gauge("materialize_rounds").set(self.rounds as u64);
        registry
            .gauge("materialize_exchanged_tuples")
            .set(self.exchanged_tuples as u64);
        registry
            .gauge("materialize_kept_local")
            .set(self.kept_local as u64);
        registry
            .gauge("materialize_result_tuples")
            .set(self.tc.result_tuples as u64);
        registry
            .gauge("materialize_generated_tuples")
            .set(self.tc.tuples_generated as u64);
    }

    /// Max over mean per-fragment busy time — 1.0 is a perfectly
    /// balanced run (same measure as the machine/serve stats).
    pub fn balance_ratio(&self) -> f64 {
        let total: f64 = self.busy.iter().map(Duration::as_secs_f64).sum();
        if self.busy.is_empty() || total == 0.0 {
            return 1.0;
        }
        let max = self
            .busy
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0, f64::max);
        max / (total / self.busy.len() as f64)
    }
}

impl fmt::Display for MaterializeStats {
    /// One-line summary, e.g. `4 fragments / 2 threads: 3 rounds, 87
    /// exchanged (412 kept local), balance 1.31; 9 iters, ...`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fragments / {} threads: {} rounds, {} exchanged ({} kept local), balance {:.2}; {}",
            self.fragments,
            self.threads,
            self.rounds,
            self.exchanged_tuples,
            self.kept_local,
            self.balance_ratio(),
            self.tc
        )
    }
}

/// Multiply-shift hasher for packed `(src, dst)` keys — the maps on the
/// materialization hot path hash one `u64` per operation, so the default
/// hasher's keyed stream setup is pure overhead here.
#[derive(Clone, Copy, Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback (FNV-style) for non-u64 keys; unused on the hot path.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type PairMap = HashMap<u64, Cost, BuildHasherDefault<PairHasher>>;

#[inline]
fn pair_key(src: NodeId, dst: NodeId) -> u64 {
    (u64::from(src.0) << 32) | u64::from(dst.0)
}

#[inline]
fn improves(best: &mut PairMap, key: u64, cost: Cost) -> bool {
    match best.entry(key) {
        Entry::Occupied(mut e) => {
            if cost < *e.get() {
                e.insert(cost);
                true
            } else {
                false
            }
        }
        Entry::Vacant(e) => {
            e.insert(cost);
            true
        }
    }
}

/// Prebuilt CSR adjacency over one fragment's edge relation — the
/// reusable build table every inner semi-naive iteration probes.
struct Adjacency {
    offsets: Vec<u32>,
    targets: Vec<(NodeId, Cost)>,
}

impl Adjacency {
    fn build(rel: &Relation<PathTuple>, node_count: usize) -> Self {
        let mut counts = vec![0u32; node_count + 1];
        for t in rel.rows() {
            counts[t.src.index() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![(NodeId(0), 0); rel.len()];
        for t in rel.rows() {
            let slot = cursor[t.src.index()] as usize;
            targets[slot] = (t.dst, t.cost);
            cursor[t.src.index()] += 1;
        }
        Adjacency { offsets, targets }
    }

    #[inline]
    fn out(&self, v: NodeId) -> &[(NodeId, Cost)] {
        &self.targets[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }
}

/// One worker's accumulated result: the best known cost per (src, dst)
/// pair. The representation is the engine's hottest data structure —
/// every candidate tuple does one `improves` check against it.
enum BestTable {
    /// n×n distance matrix, `INFINITE_COST` = absent: one array slot
    /// per check. Used when the graph is small enough
    /// ([`MaterializeConfig::dense_limit`]).
    Dense { n: usize, costs: Vec<Cost> },
    /// Hash map on packed pair keys for large graphs.
    Sparse(PairMap),
}

impl BestTable {
    fn new(node_count: usize, dense_limit: usize) -> Self {
        if node_count <= dense_limit {
            BestTable::Dense {
                n: node_count,
                costs: vec![INFINITE_COST; node_count * node_count],
            }
        } else {
            BestTable::Sparse(PairMap::default())
        }
    }

    #[inline]
    fn improves(&mut self, src: NodeId, dst: NodeId, cost: Cost) -> bool {
        match self {
            BestTable::Dense { n, costs } => {
                let slot = &mut costs[src.index() * *n + dst.index()];
                if cost < *slot {
                    *slot = cost;
                    true
                } else {
                    false
                }
            }
            BestTable::Sparse(map) => improves(map, pair_key(src, dst), cost),
        }
    }

    /// Visit every stored pair. The dense walk is src-major, dst-minor —
    /// i.e. already in [`PathTuple`] sort order.
    fn for_each(&self, mut f: impl FnMut(NodeId, NodeId, Cost)) {
        match self {
            BestTable::Dense { n, costs } => {
                for (i, &c) in costs.iter().enumerate() {
                    if c < INFINITE_COST {
                        f(NodeId((i / n) as u32), NodeId((i % n) as u32), c);
                    }
                }
            }
            BestTable::Sparse(map) => {
                for (&k, &c) in map.iter() {
                    f(NodeId((k >> 32) as u32), NodeId(k as u32), c);
                }
            }
        }
    }
}

/// Mutable per-fragment run state, moved through the job queue.
struct FragmentRun {
    best: BestTable,
}

/// Counters one worker reports per round.
#[derive(Default)]
struct RoundCounters {
    generated: usize,
    improved: usize,
    kept_local: usize,
    inner_iters: usize,
    busy: Duration,
}

struct Job {
    fid: usize,
    state: FragmentRun,
    inbox: Vec<PathTuple>,
    seed_round: bool,
}

struct RoundResult {
    fid: usize,
    state: FragmentRun,
    outgoing: Vec<PathTuple>,
    counters: RoundCounters,
}

/// Unbounded FIFO job queue (`Mutex` + `Condvar`, the `ds_serve` worker
/// idiom): `pop` blocks until a job arrives or the queue closes.
struct JobQueue {
    inner: Mutex<(VecDeque<Job>, bool)>,
    not_empty: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.0.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(job) = inner.0.pop_front() {
                return Some(job);
            }
            if inner.1 {
                return None;
            }
            inner = wait_unpoisoned(&self.not_empty, inner);
        }
    }

    fn close(&self) {
        lock_unpoisoned(&self.inner).1 = true;
        self.not_empty.notify_all();
    }
}

/// Bulk materialization of the transitive closure over a fragmented
/// relation: per-fragment semi-naive fixpoints in parallel, with
/// disconnection-set-selected delta exchange. Reusable: each
/// [`MaterializeEngine::materialize`] call is an independent run over
/// the same prebuilt partition and adjacency indexes.
pub struct MaterializeEngine {
    partition: FragmentPartition,
    router: ExchangeRouter,
    adjacency: Vec<Adjacency>,
    border_mask: Vec<BitSet>,
    config: MaterializeConfig,
}

impl MaterializeEngine {
    /// Build from an already-partitioned relation.
    pub fn new(partition: FragmentPartition, config: MaterializeConfig) -> Self {
        let router = ExchangeRouter::new(&partition);
        let adjacency = partition
            .relations()
            .iter()
            .map(|rel| Adjacency::build(rel, partition.node_count()))
            .collect();
        let border_mask = (0..partition.fragment_count())
            .map(|fid| {
                let mut bs = BitSet::new(partition.node_count());
                for &v in partition.borders(fid) {
                    bs.insert(v.index());
                }
                bs
            })
            .collect();
        MaterializeEngine {
            partition,
            router,
            adjacency,
            border_mask,
            config,
        }
    }

    /// Partition the fragmentation's edge relation (symmetric expansion
    /// per `symmetric`) and build the engine over it.
    pub fn from_fragmentation(
        frag: &Fragmentation,
        symmetric: bool,
        config: MaterializeConfig,
    ) -> Self {
        MaterializeEngine::new(FragmentPartition::new(frag, symmetric), config)
    }

    /// The partition this engine runs over.
    pub fn partition(&self) -> &FragmentPartition {
        &self.partition
    }

    /// The run configuration.
    pub fn config(&self) -> &MaterializeConfig {
        &self.config
    }

    fn effective_threads(&self) -> usize {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let requested = if self.config.threads == 0 {
            hw
        } else {
            self.config.threads
        };
        requested.clamp(1, self.partition.fragment_count().max(1))
    }

    /// Materialize the closure: the min-cost path relation (sorted,
    /// tuple-identical to [`crate::tc::seminaive_closure`] over the
    /// union relation) plus run statistics.
    ///
    /// Errors with [`MaterializeError::RoundLimit`] when
    /// [`MaterializeConfig::max_rounds`] trips before the global
    /// fixpoint; in pool mode all worker threads have joined by then.
    pub fn materialize(&self) -> Result<(Relation<PathTuple>, MaterializeStats), MaterializeError> {
        let fragments = self.partition.fragment_count();
        let threads = self.effective_threads();
        let mut stats = MaterializeStats {
            fragments,
            threads,
            busy: vec![Duration::ZERO; fragments],
            ..Default::default()
        };
        if fragments == 0 {
            return Ok((Relation::empty("tc"), stats));
        }

        // Seed every fragment's inbox with its own (source-restricted)
        // edge tuples.
        let source_set: Option<HashSet<NodeId>> = self
            .config
            .sources
            .as_ref()
            .map(|s| s.iter().copied().collect());
        let mut inboxes: Vec<Vec<PathTuple>> = self
            .partition
            .relations()
            .iter()
            .map(|rel| match &source_set {
                Some(set) => rel
                    .rows()
                    .iter()
                    .filter(|t| set.contains(&t.src))
                    .copied()
                    .collect(),
                None => rel.rows().to_vec(),
            })
            .collect();

        let mut states: Vec<FragmentRun> = (0..fragments)
            .map(|_| FragmentRun {
                best: BestTable::new(self.partition.node_count(), self.config.dense_limit),
            })
            .collect();
        let mut inner_totals = vec![0usize; fragments];

        if threads <= 1 {
            self.drive_inline(&mut states, &mut inboxes, &mut inner_totals, &mut stats)?;
        } else {
            self.drive_pool(
                threads,
                &mut states,
                &mut inboxes,
                &mut inner_totals,
                &mut stats,
            )?;
        }

        // Final assembly: merge the per-fragment result tables with
        // min-cost aggregation.
        let n = self.partition.node_count();
        let rows: Vec<PathTuple> = if n <= self.config.dense_limit {
            let mut global = vec![INFINITE_COST; n * n];
            for state in &states {
                state.best.for_each(|src, dst, c| {
                    let slot = &mut global[src.index() * n + dst.index()];
                    if c < *slot {
                        *slot = c;
                    }
                });
            }
            // Src-major, dst-minor walk: already in sort order.
            let mut rows = Vec::new();
            for (i, &c) in global.iter().enumerate() {
                if c < INFINITE_COST {
                    rows.push(PathTuple::new(
                        NodeId((i / n) as u32),
                        NodeId((i % n) as u32),
                        c,
                    ));
                }
            }
            rows
        } else {
            let mut global: PairMap = PairMap::default();
            for state in &states {
                state
                    .best
                    .for_each(|src, dst, c| match global.entry(pair_key(src, dst)) {
                        Entry::Occupied(mut e) => {
                            if c < *e.get() {
                                e.insert(c);
                            }
                        }
                        Entry::Vacant(e) => {
                            e.insert(c);
                        }
                    });
            }
            let mut rows: Vec<PathTuple> = global
                .into_iter()
                .map(|(k, c)| PathTuple::new(NodeId((k >> 32) as u32), NodeId(k as u32), c))
                .collect();
            rows.sort_unstable();
            rows
        };

        stats.tc.iterations = inner_totals.iter().copied().max().unwrap_or(0);
        stats.tc.result_tuples = rows.len();
        stats.tc.exchange_rounds = stats.rounds;
        stats.tc.exchanged_tuples = stats.exchanged_tuples;
        if let Some(obs) = &self.config.obs {
            stats.mirror_into(obs.registry());
        }
        Ok((Relation::from_rows("tc", rows), stats))
    }

    /// Round loop without threads — identical structure to the pool
    /// (outgoing deltas are routed only after every active fragment has
    /// finished the round).
    fn drive_inline(
        &self,
        states: &mut [FragmentRun],
        inboxes: &mut [Vec<PathTuple>],
        inner_totals: &mut [usize],
        stats: &mut MaterializeStats,
    ) -> Result<(), MaterializeError> {
        loop {
            let active: Vec<usize> = (0..states.len())
                .filter(|&i| !inboxes[i].is_empty())
                .collect();
            if active.is_empty() {
                break;
            }
            self.check_round_guard(stats.rounds)?;
            let seed_round = stats.rounds == 0;
            let mut round = RoundStats {
                active_fragments: active.len(),
                ..Default::default()
            };
            let mut pending: Vec<(usize, Vec<PathTuple>)> = Vec::with_capacity(active.len());
            for &fid in &active {
                let inbox = std::mem::take(&mut inboxes[fid]);
                // Same isolation as the pool: a panic (real or injected)
                // aborts the run as a typed error instead of unwinding
                // through the caller.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let injected = ds_fault::fire(
                        &self.config.fault,
                        FaultPoint::BulkWorker { fragment: fid },
                    );
                    (!injected).then(|| self.run_round(fid, &mut states[fid], inbox, seed_round))
                }));
                match outcome {
                    Ok(Some((outgoing, counters))) => {
                        self.absorb_counters(fid, &counters, inner_totals, stats, &mut round);
                        pending.push((fid, outgoing));
                    }
                    Ok(None) | Err(_) => {
                        return Err(MaterializeError::WorkerPanicked { fragment: fid });
                    }
                }
            }
            for (fid, outgoing) in pending {
                round.exchanged += self.router.route(fid, &outgoing, inboxes);
            }
            self.finish_round(round, stats);
        }
        Ok(())
    }

    /// Round loop over the worker pool: per-fragment state moves through
    /// the job queue, results come back over a channel, and the
    /// coordinator routes each fragment's outgoing deltas as they
    /// arrive (deliveries always land in the *next* round's inbox).
    fn drive_pool(
        &self,
        threads: usize,
        states: &mut Vec<FragmentRun>,
        inboxes: &mut [Vec<PathTuple>],
        inner_totals: &mut [usize],
        stats: &mut MaterializeStats,
    ) -> Result<(), MaterializeError> {
        let queue = JobQueue::new();
        // `Err(fid)` is the panic marker: the worker caught an unwind (or
        // an injected kill) while evaluating fragment `fid` and stays
        // alive for the next job; the coordinator aborts the run.
        let (tx, rx) = mpsc::channel::<Result<RoundResult, usize>>();
        let mut slots: Vec<Option<FragmentRun>> = states.drain(..).map(Some).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || {
                    while let Some(mut job) = queue.pop() {
                        let fid = job.fid;
                        let inbox = std::mem::take(&mut job.inbox);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let injected = ds_fault::fire(
                                &self.config.fault,
                                FaultPoint::BulkWorker { fragment: fid },
                            );
                            (!injected)
                                .then(|| self.run_round(fid, &mut job.state, inbox, job.seed_round))
                        }));
                        let msg = match outcome {
                            Ok(Some((outgoing, counters))) => Ok(RoundResult {
                                fid,
                                state: job.state,
                                outgoing,
                                counters,
                            }),
                            Ok(None) | Err(_) => Err(fid),
                        };
                        if tx.send(msg).is_err() {
                            break;
                        }
                    }
                });
            }

            let outcome = loop {
                let active: Vec<usize> = (0..slots.len())
                    .filter(|&i| !inboxes[i].is_empty())
                    .collect();
                if active.is_empty() {
                    break Ok(());
                }
                // The guard must *return* through the queue shutdown
                // below, never panic: unwinding here would leave the
                // workers blocked on the queue condvar and the scope
                // join would hang.
                if let Err(e) = self.check_round_guard(stats.rounds) {
                    break Err(e);
                }
                let seed_round = stats.rounds == 0;
                let mut round = RoundStats {
                    active_fragments: active.len(),
                    ..Default::default()
                };
                for &fid in &active {
                    queue.push(Job {
                        fid,
                        state: slots[fid].take().expect("state checked in"),
                        inbox: std::mem::take(&mut inboxes[fid]),
                        seed_round,
                    });
                }
                let mut failure = None;
                for _ in 0..active.len() {
                    // The coordinator retains a sender clone, so the
                    // channel cannot disconnect while it still expects
                    // results.
                    let msg = match rx.recv() {
                        Ok(m) => m,
                        Err(_) => unreachable!("coordinator holds a sender"),
                    };
                    match msg {
                        Ok(result) => {
                            self.absorb_counters(
                                result.fid,
                                &result.counters,
                                inner_totals,
                                stats,
                                &mut round,
                            );
                            round.exchanged +=
                                self.router.route(result.fid, &result.outgoing, inboxes);
                            slots[result.fid] = Some(result.state);
                        }
                        Err(fragment) => {
                            failure = Some(MaterializeError::WorkerPanicked { fragment });
                            break;
                        }
                    }
                }
                if let Some(e) = failure {
                    break Err(e);
                }
                self.finish_round(round, stats);
            };
            // Wake every parked worker; leaving the scope then joins
            // them — on the fixpoint and the round-limit path alike.
            queue.close();
            outcome
        })?;

        states.extend(slots.into_iter().map(|s| s.expect("all rounds completed")));
        Ok(())
    }

    fn check_round_guard(&self, rounds: usize) -> Result<(), MaterializeError> {
        if self.config.max_rounds != 0 && rounds >= self.config.max_rounds {
            return Err(MaterializeError::RoundLimit {
                max_rounds: self.config.max_rounds,
            });
        }
        Ok(())
    }

    fn absorb_counters(
        &self,
        fid: usize,
        counters: &RoundCounters,
        inner_totals: &mut [usize],
        stats: &mut MaterializeStats,
        round: &mut RoundStats,
    ) {
        inner_totals[fid] += counters.inner_iters;
        stats.busy[fid] += counters.busy;
        stats.kept_local += counters.kept_local;
        stats.tc.tuples_generated += counters.generated;
        // Every inner iteration probes the prebuilt adjacency index
        // instead of rebuilding a join table.
        stats.tc.index_reuses += counters.inner_iters;
        round.improved += counters.improved;
    }

    fn finish_round(&self, round: RoundStats, stats: &mut MaterializeStats) {
        stats.rounds += 1;
        stats.exchanged_tuples += round.exchanged;
        stats.tc.delta_sizes.push(round.improved);
        stats.per_round.push(round);
    }

    /// One fragment's round: drain the inbox, run the local semi-naive
    /// fixpoint, collect border-crossing improvements (deduplicated to
    /// the cheapest per endpoint pair). On the seed round the inbox
    /// holds the fragment's own edges, so admitted border-ending seeds
    /// are offered to the exchange too; on later rounds inbox tuples
    /// were already shipped to every fragment sharing their endpoint by
    /// the sender, so only locally *derived* tuples are offered.
    fn run_round(
        &self,
        fid: usize,
        state: &mut FragmentRun,
        inbox: Vec<PathTuple>,
        seed_round: bool,
    ) -> (Vec<PathTuple>, RoundCounters) {
        let start = Instant::now();
        let adjacency = &self.adjacency[fid];
        let border = &self.border_mask[fid];
        let mut counters = RoundCounters::default();
        let mut outgoing: PairMap = PairMap::default();

        let offer = |outgoing: &mut PairMap, key: u64, dst: NodeId, cost: Cost| {
            if border.contains(dst.index()) {
                match outgoing.entry(key) {
                    Entry::Occupied(mut e) => {
                        if cost < *e.get() {
                            e.insert(cost);
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(cost);
                    }
                }
                true
            } else {
                false
            }
        };

        if seed_round {
            counters.generated += inbox.len();
        }
        let mut delta: Vec<PathTuple> = Vec::with_capacity(inbox.len());
        for t in inbox {
            if state.best.improves(t.src, t.dst, t.cost) {
                counters.improved += 1;
                if seed_round && !offer(&mut outgoing, pair_key(t.src, t.dst), t.dst, t.cost) {
                    counters.kept_local += 1;
                }
                delta.push(t);
            }
        }

        while !delta.is_empty() {
            counters.inner_iters += 1;
            let mut next = Vec::new();
            for t in &delta {
                for &(dst, cost) in adjacency.out(t.dst) {
                    counters.generated += 1;
                    let total = t.cost + cost;
                    if state.best.improves(t.src, dst, total) {
                        counters.improved += 1;
                        let key = pair_key(t.src, dst);
                        if !offer(&mut outgoing, key, dst, total) {
                            counters.kept_local += 1;
                        }
                        next.push(PathTuple::new(t.src, dst, total));
                    }
                }
            }
            delta = next;
        }

        let outgoing: Vec<PathTuple> = outgoing
            .into_iter()
            .map(|(k, c)| PathTuple::new(NodeId((k >> 32) as u32), NodeId(k as u32), c))
            .collect();
        counters.busy = start.elapsed();
        (outgoing, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc;
    use ds_graph::Edge;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn edges(tuples: &[(u32, u32, u64)]) -> Vec<Edge> {
        tuples
            .iter()
            .map(|&(a, b, c)| Edge::new(n(a), n(b), c))
            .collect()
    }

    /// Path 0-1-2-3-4 split at node 2.
    fn path_split() -> Fragmentation {
        Fragmentation::new(
            5,
            vec![
                edges(&[(0, 1, 1), (1, 2, 1)]),
                edges(&[(2, 3, 1), (3, 4, 1)]),
            ],
            vec![vec![], vec![]],
        )
    }

    fn assert_matches_seminaive(
        frag: &Fragmentation,
        symmetric: bool,
        config: MaterializeConfig,
    ) -> MaterializeStats {
        let engine = MaterializeEngine::from_fragmentation(frag, symmetric, config);
        let (bulk, stats) = engine.materialize().unwrap();
        let (seq, _) = tc::seminaive_closure(
            &engine.partition().union_relation(),
            engine.config().sources.as_deref(),
        );
        assert_eq!(bulk.rows(), seq.rows());
        assert_eq!(stats.tc.result_tuples, seq.len());
        stats
    }

    #[test]
    fn split_path_matches_sequential_seminaive() {
        let stats = assert_matches_seminaive(&path_split(), true, MaterializeConfig::default());
        assert!(stats.rounds >= 2, "cross-fragment paths need an exchange");
        assert!(stats.exchanged_tuples > 0);
        assert_eq!(stats.per_round.len(), stats.rounds);
        assert_eq!(stats.tc.delta_sizes.len(), stats.rounds);
        assert!(stats.kept_local > 0, "interior tuples stay local");
    }

    #[test]
    fn directed_relation_matches_sequential_seminaive() {
        assert_matches_seminaive(&path_split(), false, MaterializeConfig::default());
    }

    #[test]
    fn cross_fragment_detour_improves_a_local_path() {
        // Direct edge 0-1 costs 10 inside fragment 0; the detour through
        // fragment 1 (0-2-1) costs 2, so the exchange must improve an
        // already-derived local tuple.
        let frag = Fragmentation::new(
            3,
            vec![edges(&[(0, 1, 10)]), edges(&[(0, 2, 1), (2, 1, 1)])],
            vec![vec![], vec![]],
        );
        let stats = assert_matches_seminaive(&frag, true, MaterializeConfig::default());
        assert!(stats.exchanged_tuples > 0);
        let engine =
            MaterializeEngine::from_fragmentation(&frag, true, MaterializeConfig::default());
        let (closure, _) = engine.materialize().unwrap();
        assert_eq!(closure.cost_of(n(0), n(1)), Some(2), "detour wins");
    }

    #[test]
    fn source_restriction_is_the_keyhole() {
        let config = MaterializeConfig {
            sources: Some(vec![n(0)]),
            ..Default::default()
        };
        let stats = assert_matches_seminaive(&path_split(), true, config);
        assert!(stats.tc.result_tuples > 0);
        let engine = MaterializeEngine::from_fragmentation(
            &path_split(),
            true,
            MaterializeConfig {
                sources: Some(vec![n(0)]),
                ..Default::default()
            },
        );
        let (closure, _) = engine.materialize().unwrap();
        assert!(closure.rows().iter().all(|t| t.src == n(0)));
    }

    #[test]
    fn single_fragment_needs_no_exchange() {
        let frag = Fragmentation::new(3, vec![edges(&[(0, 1, 1), (1, 2, 1)])], vec![vec![]]);
        let stats = assert_matches_seminaive(&frag, true, MaterializeConfig::default());
        assert_eq!(stats.exchanged_tuples, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let frag = Fragmentation::new(
            7,
            vec![
                edges(&[(0, 1, 2), (1, 2, 3)]),
                edges(&[(2, 3, 1), (3, 4, 4)]),
                edges(&[(4, 5, 2), (5, 6, 1), (6, 0, 5)]),
            ],
            vec![vec![], vec![], vec![]],
        );
        let single = assert_matches_seminaive(&frag, true, MaterializeConfig::with_threads(1));
        let pooled = assert_matches_seminaive(&frag, true, MaterializeConfig::with_threads(3));
        assert_eq!(single.threads, 1);
        assert_eq!(pooled.threads, 3);
        assert_eq!(single.tc.result_tuples, pooled.tc.result_tuples);
    }

    #[test]
    fn sparse_table_matches_dense_table() {
        let frag = Fragmentation::new(
            6,
            vec![
                edges(&[(0, 1, 2), (1, 2, 7), (0, 2, 4)]),
                edges(&[(2, 3, 1), (3, 4, 3)]),
                edges(&[(4, 5, 2), (5, 0, 9)]),
            ],
            vec![vec![], vec![], vec![]],
        );
        let sparse = MaterializeConfig {
            dense_limit: 0,
            ..Default::default()
        };
        let stats = assert_matches_seminaive(&frag, true, sparse);
        assert!(stats.exchanged_tuples > 0);
        let dense = assert_matches_seminaive(&frag, true, MaterializeConfig::default());
        assert_eq!(stats.tc.result_tuples, dense.tc.result_tuples);
    }

    #[test]
    fn empty_partition_is_an_empty_relation() {
        let frag = Fragmentation::new(0, vec![], vec![]);
        let engine =
            MaterializeEngine::from_fragmentation(&frag, true, MaterializeConfig::default());
        let (closure, stats) = engine.materialize().unwrap();
        assert!(closure.is_empty());
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn stats_display_is_a_one_liner() {
        let engine = MaterializeEngine::from_fragmentation(
            &path_split(),
            true,
            MaterializeConfig::default(),
        );
        let (_, stats) = engine.materialize().unwrap();
        let line = stats.to_string();
        assert!(line.contains("rounds"), "{line}");
        assert!(line.contains("exchanged"), "{line}");
        assert!(!line.contains('\n'));
        assert!(stats.balance_ratio() >= 1.0);
    }

    #[test]
    fn round_guard_trips_as_an_error() {
        let engine = MaterializeEngine::from_fragmentation(
            &path_split(),
            true,
            MaterializeConfig {
                max_rounds: 1,
                ..Default::default()
            },
        );
        let err = engine.materialize().unwrap_err();
        assert_eq!(err, MaterializeError::RoundLimit { max_rounds: 1 });
        assert!(err.to_string().contains("max_rounds = 1"), "{err}");
    }

    /// Pool mode: the round limit must come back as an error with every
    /// worker joined — a panicking guard used to unwind the coordinator
    /// inside `thread::scope` while workers stayed parked on the queue
    /// condvar. `materialize` returning at all (rather than hanging on
    /// the scope join) plus a clean re-run proves the shutdown.
    #[test]
    fn round_guard_joins_pool_workers_cleanly() {
        let engine = MaterializeEngine::from_fragmentation(
            &path_split(),
            true,
            MaterializeConfig {
                threads: 2,
                max_rounds: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            engine.materialize().unwrap_err(),
            MaterializeError::RoundLimit { max_rounds: 1 }
        );
        // The engine stays usable: a fresh run with an adequate budget
        // converges on the same pool configuration.
        let engine = MaterializeEngine::from_fragmentation(
            &path_split(),
            true,
            MaterializeConfig {
                threads: 2,
                ..Default::default()
            },
        );
        let (closure, stats) = engine.materialize().unwrap();
        assert!(!closure.is_empty());
        assert!(stats.rounds >= 2);
    }

    /// Pool mode: a worker panic mid-round must come back as a typed
    /// error with every thread joined (returning at all proves the scope
    /// join did not hang), and a fault-free run on a fresh engine over
    /// the same partition still converges.
    #[test]
    fn pool_worker_panic_is_a_typed_error_with_clean_joins() {
        let plan = FaultPlan::new().panic_at(FaultPoint::BulkWorker { fragment: 0 }, 1);
        let engine = MaterializeEngine::from_fragmentation(
            &path_split(),
            true,
            MaterializeConfig {
                threads: 2,
                fault: Some(Arc::new(plan)),
                ..Default::default()
            },
        );
        assert_eq!(
            engine.materialize().unwrap_err(),
            MaterializeError::WorkerPanicked { fragment: 0 }
        );
        assert_matches_seminaive(&path_split(), true, MaterializeConfig::with_threads(2));
    }

    /// Inline mode gives the identical typed error — the isolation is
    /// mode-independent. `Fail` (silent death) behaves like a panic.
    #[test]
    fn inline_worker_fault_is_a_typed_error() {
        let plan = FaultPlan::new().fail_at(FaultPoint::BulkWorker { fragment: 1 }, 1);
        let engine = MaterializeEngine::from_fragmentation(
            &path_split(),
            true,
            MaterializeConfig {
                threads: 1,
                fault: Some(Arc::new(plan)),
                ..Default::default()
            },
        );
        let err = engine.materialize().unwrap_err();
        assert_eq!(err, MaterializeError::WorkerPanicked { fragment: 1 });
        assert!(err.to_string().contains("fragment 1"), "{err}");
        // The rule is one-shot: a retry on the same engine converges.
        let (closure, _) = engine.materialize().unwrap();
        assert!(!closure.is_empty());
    }
}
