//! Bulk materialization of the transitive closure over a *fragmented*
//! relation — the parallel strategy of the source paper, run as a
//! subsystem instead of a per-query engine.
//!
//! The paper's §2.1 observation is that fragmenting `R` by a
//! disconnection-set partition turns one big recursive query into many
//! small ones: each fragment can compute its local closure almost
//! independently, and only tuples ending on a *shared* node (a
//! disconnection-set member) ever need to travel. This module family
//! implements exactly that pipeline:
//!
//! - [`partition`] — split the edge relation by a
//!   [`ds_fragment::Fragmentation`] and precompute the border structure
//!   ([`FragmentPartition`]).
//! - [`exchange`] — route border-crossing delta tuples to the fragments
//!   that can extend them, and only those ([`ExchangeRouter`]).
//! - [`engine`] — per-fragment semi-naive fixpoint workers on a
//!   std-only thread pool, synchronized in exchange rounds until the
//!   global fixpoint, then a final min-cost assembly
//!   ([`MaterializeEngine`]).
//!
//! The result is **tuple-identical** to running
//! [`crate::tc::seminaive_closure`] on the union of all fragments — the
//! property tests enforce this across every generator × fragmenter
//! combination — while doing fragment-local work that parallelizes and,
//! even single-threaded, probes prebuilt per-fragment adjacency indexes
//! instead of rebuilding join tables.
//!
//! ```
//! use ds_fragment::Fragmentation;
//! use ds_graph::{Edge, NodeId};
//! use ds_relation::bulk::{MaterializeConfig, MaterializeEngine};
//!
//! // Path 0-1-2-3 split at node 2 (DS = {2}).
//! let frag = Fragmentation::new(
//!     4,
//!     vec![
//!         vec![Edge::unit(NodeId(0), NodeId(1)), Edge::unit(NodeId(1), NodeId(2))],
//!         vec![Edge::unit(NodeId(2), NodeId(3))],
//!     ],
//!     vec![vec![], vec![]],
//! );
//! let engine = MaterializeEngine::from_fragmentation(&frag, true, MaterializeConfig::default());
//! let (closure, stats) = engine.materialize().unwrap();
//! assert_eq!(closure.cost_of(NodeId(0), NodeId(3)), Some(3));
//! assert!(stats.exchanged_tuples > 0);
//! ```

pub mod engine;
pub mod exchange;
pub mod partition;

pub use engine::{
    MaterializeConfig, MaterializeEngine, MaterializeError, MaterializeStats, RoundStats,
};
pub use exchange::ExchangeRouter;
pub use partition::FragmentPartition;
