//! Partitioning the edge relation by a [`Fragmentation`].
//!
//! §2.1: "R is partitioned into n fragments R_i, each stored at a
//! different computer or processor." The fragmentation already owns the
//! edge partition; this module lifts it into per-fragment *relations*
//! (symmetric expansion included, both directions staying with the owner
//! fragment so the partition property is preserved on the expanded
//! relation) and precomputes the border structure the exchange needs:
//! which fragments contain each node, and each fragment's border node
//! set (the union of its disconnection sets with every neighbour).

use ds_fragment::{FragmentId, Fragmentation};
use ds_graph::NodeId;

use crate::relation::Relation;
use crate::tuple::PathTuple;

/// The edge relation split per fragment, plus the shared-node structure
/// driving the delta exchange.
#[derive(Clone, Debug)]
pub struct FragmentPartition {
    node_count: usize,
    relations: Vec<Relation<PathTuple>>,
    /// Sorted border nodes per fragment (nodes shared with ≥ 1 other
    /// fragment — the union of the fragment's disconnection sets).
    borders: Vec<Vec<NodeId>>,
    /// Fragments containing each node (≥ 2 entries ⇔ border node).
    members: Vec<Vec<FragmentId>>,
}

impl FragmentPartition {
    /// Partition by `frag`'s edge ownership. With `symmetric`, each
    /// connection tuple also contributes its reverse direction (to the
    /// same fragment), mirroring how the closure graph is built.
    pub fn new(frag: &Fragmentation, symmetric: bool) -> Self {
        let relations = frag
            .fragments()
            .iter()
            .map(|f| {
                let mut rows: Vec<PathTuple> =
                    Vec::with_capacity(f.edge_count() * if symmetric { 2 } else { 1 });
                for e in f.edges() {
                    rows.push(PathTuple::from(*e));
                    if symmetric && !e.is_loop() {
                        rows.push(PathTuple::from(e.reversed()));
                    }
                }
                Relation::from_rows(format!("R{}", f.id()), rows)
            })
            .collect();

        let mut members: Vec<Vec<FragmentId>> = vec![Vec::new(); frag.node_count()];
        for f in frag.fragments() {
            for &v in f.nodes() {
                members[v.index()].push(f.id());
            }
        }
        let borders = frag
            .fragments()
            .iter()
            .map(|f| {
                f.nodes()
                    .iter()
                    .copied()
                    .filter(|v| members[v.index()].len() >= 2)
                    .collect()
            })
            .collect();

        FragmentPartition {
            node_count: frag.node_count(),
            relations,
            borders,
            members,
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.relations.len()
    }

    /// One fragment's edge relation.
    pub fn relation(&self, id: FragmentId) -> &Relation<PathTuple> {
        &self.relations[id]
    }

    /// All per-fragment edge relations.
    pub fn relations(&self) -> &[Relation<PathTuple>] {
        &self.relations
    }

    /// Sorted border nodes of fragment `id`.
    pub fn borders(&self, id: FragmentId) -> &[NodeId] {
        &self.borders[id]
    }

    /// Fragments containing `v` (≥ 2 entries means `v` is shared).
    pub fn fragments_of(&self, v: NodeId) -> &[FragmentId] {
        &self.members[v.index()]
    }

    /// Whether `v` sits on fragment `id`'s border (shared with another
    /// fragment) — the test behind the disconnection-set selection.
    pub fn is_border(&self, id: FragmentId, v: NodeId) -> bool {
        self.borders[id].binary_search(&v).is_ok()
    }

    /// The whole (expanded) edge relation as one union — the input the
    /// sequential baselines run on, guaranteed tuple-equal to what the
    /// fragmented engine sees.
    pub fn union_relation(&self) -> Relation<PathTuple> {
        let mut rows = Vec::with_capacity(self.relations.iter().map(Relation::len).sum());
        for rel in &self.relations {
            rows.extend_from_slice(rel.rows());
        }
        Relation::from_rows("R", rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::Edge;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
            .collect()
    }

    /// Path 0-1-2-3-4 split into [0-1, 1-2] and [2-3, 3-4]: DS = {2}.
    fn path_split() -> Fragmentation {
        Fragmentation::new(
            5,
            vec![edges(&[(0, 1), (1, 2)]), edges(&[(2, 3), (3, 4)])],
            vec![vec![], vec![]],
        )
    }

    #[test]
    fn symmetric_expansion_stays_with_the_owner() {
        let p = FragmentPartition::new(&path_split(), true);
        assert_eq!(p.fragment_count(), 2);
        assert_eq!(p.relation(0).len(), 4, "2 connections x 2 directions");
        assert_eq!(p.relation(1).len(), 4);
        assert_eq!(p.union_relation().len(), 8);
        let directed = FragmentPartition::new(&path_split(), false);
        assert_eq!(directed.relation(0).len(), 2);
    }

    #[test]
    fn borders_are_the_shared_nodes() {
        let p = FragmentPartition::new(&path_split(), true);
        assert_eq!(p.borders(0), &[NodeId(2)]);
        assert_eq!(p.borders(1), &[NodeId(2)]);
        assert!(p.is_border(0, NodeId(2)) && p.is_border(1, NodeId(2)));
        assert!(!p.is_border(0, NodeId(1)));
        assert_eq!(p.fragments_of(NodeId(2)), &[0, 1]);
        assert_eq!(p.fragments_of(NodeId(0)), &[0]);
    }

    #[test]
    fn three_way_shared_node() {
        // Star: node 0 shared by three fragments.
        let frag = Fragmentation::new(
            4,
            vec![edges(&[(0, 1)]), edges(&[(0, 2)]), edges(&[(0, 3)])],
            vec![vec![], vec![], vec![]],
        );
        let p = FragmentPartition::new(&frag, true);
        assert_eq!(p.fragments_of(NodeId(0)), &[0, 1, 2]);
        for id in 0..3 {
            assert_eq!(p.borders(id), &[NodeId(0)]);
        }
    }
}
