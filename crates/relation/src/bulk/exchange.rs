//! The cross-fragment delta exchange and its disconnection-set selection.
//!
//! A delta tuple derived in fragment `i` can only be extended by another
//! fragment `j` if its endpoint is a node both fragments share — a node
//! of `DS_ij`. This is the paper's "additional selections in the
//! processing of the recursive query" (§2.1): instead of broadcasting
//! every delta everywhere, the exchange ships a tuple `(s, d, c)` exactly
//! to the fragments that contain `d` (other than the sender). Tuples
//! whose endpoint is interior to the sender never leave it.

use ds_fragment::FragmentId;
use ds_graph::NodeId;

use super::partition::FragmentPartition;
use crate::tuple::PathTuple;

/// Routes border-crossing delta tuples to the fragments that can extend
/// them.
#[derive(Clone, Debug)]
pub struct ExchangeRouter {
    /// Fragments containing each node; only nodes with ≥ 2 entries ever
    /// route anywhere.
    members: Vec<Vec<FragmentId>>,
}

impl ExchangeRouter {
    /// Build the routing table from a partition.
    pub fn new(partition: &FragmentPartition) -> Self {
        ExchangeRouter {
            members: (0..partition.node_count())
                .map(|v| partition.fragments_of(NodeId::from_index(v)).to_vec())
                .collect(),
        }
    }

    /// The fragments that can extend a delta ending at `v` (every
    /// fragment containing `v`). The sender filters itself out in
    /// [`ExchangeRouter::route`].
    pub fn targets_of(&self, v: NodeId) -> &[FragmentId] {
        &self.members[v.index()]
    }

    /// Deliver `outgoing` (fragment `from`'s border-crossing deltas) into
    /// the per-fragment `inboxes`, applying the disconnection-set
    /// selection; returns the number of tuple copies shipped.
    pub fn route(
        &self,
        from: FragmentId,
        outgoing: &[PathTuple],
        inboxes: &mut [Vec<PathTuple>],
    ) -> usize {
        let mut shipped = 0;
        for t in outgoing {
            for &target in self.targets_of(t.dst) {
                if target != from {
                    inboxes[target].push(*t);
                    shipped += 1;
                }
            }
        }
        shipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_fragment::Fragmentation;
    use ds_graph::Edge;

    fn star_partition() -> FragmentPartition {
        // Node 0 shared by fragments {0, 1, 2}; nodes 1..=3 interior.
        let frag = Fragmentation::new(
            4,
            vec![
                vec![Edge::unit(NodeId(0), NodeId(1))],
                vec![Edge::unit(NodeId(0), NodeId(2))],
                vec![Edge::unit(NodeId(0), NodeId(3))],
            ],
            vec![vec![], vec![], vec![]],
        );
        FragmentPartition::new(&frag, true)
    }

    #[test]
    fn routes_to_every_other_fragment_sharing_the_endpoint() {
        let router = ExchangeRouter::new(&star_partition());
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        let t = PathTuple::new(NodeId(1), NodeId(0), 1);
        let shipped = router.route(0, &[t], &mut inboxes);
        assert_eq!(shipped, 2, "to fragments 1 and 2, not back to 0");
        assert!(inboxes[0].is_empty());
        assert_eq!(inboxes[1], vec![t]);
        assert_eq!(inboxes[2], vec![t]);
    }

    #[test]
    fn interior_endpoints_ship_nowhere() {
        let router = ExchangeRouter::new(&star_partition());
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        // dst 1 is interior to fragment 0: the selection keeps it local.
        let shipped = router.route(0, &[PathTuple::new(NodeId(0), NodeId(1), 1)], &mut inboxes);
        assert_eq!(shipped, 0);
        assert!(inboxes.iter().all(Vec::is_empty));
        assert_eq!(router.targets_of(NodeId(0)), &[0, 1, 2]);
        assert_eq!(router.targets_of(NodeId(1)), &[0]);
    }
}
