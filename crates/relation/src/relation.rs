//! Typed in-memory relations with the classical unary operators.

use std::collections::HashMap;

use ds_graph::NodeId;

use crate::tuple::PathTuple;

/// A named, typed, in-memory relation (a bag of rows).
#[derive(Clone, Debug, PartialEq)]
pub struct Relation<T> {
    name: String,
    rows: Vec<T>,
}

impl<T> Relation<T> {
    /// An empty relation.
    pub fn empty(name: impl Into<String>) -> Self {
        Relation {
            name: name.into(),
            rows: Vec::new(),
        }
    }

    /// Build from rows.
    pub fn from_rows(name: impl Into<String>, rows: Vec<T>) -> Self {
        Relation {
            name: name.into(),
            rows,
        }
    }

    /// Relation name (for plan displays).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rows.
    pub fn rows(&self) -> &[T] {
        &self.rows
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// σ — keep rows satisfying the predicate.
    pub fn select(&self, pred: impl Fn(&T) -> bool) -> Relation<T>
    where
        T: Clone,
    {
        Relation {
            name: format!("σ({})", self.name),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// π — map each row through a projection function.
    pub fn project<U>(&self, f: impl Fn(&T) -> U) -> Relation<U> {
        Relation {
            name: format!("π({})", self.name),
            rows: self.rows.iter().map(f).collect(),
        }
    }

    /// ∪ — bag union (no dedup; call a dedup op when set semantics are
    /// needed).
    pub fn union(&self, other: &Relation<T>) -> Relation<T>
    where
        T: Clone,
    {
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Relation {
            name: format!("({}∪{})", self.name, other.name),
            rows,
        }
    }

    /// Append rows in place.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = T>) {
        self.rows.extend(rows);
    }
}

impl Relation<PathTuple> {
    /// Group by `(src, dst)` and keep the cheapest tuple — the aggregation
    /// that turns a bag of discovered paths into the shortest-path
    /// relation. Output order is deterministic (sorted by key).
    pub fn min_cost(&self) -> Relation<PathTuple> {
        let mut best: HashMap<(NodeId, NodeId), u64> = HashMap::with_capacity(self.rows.len());
        for t in &self.rows {
            let e = best.entry(t.endpoints()).or_insert(t.cost);
            if t.cost < *e {
                *e = t.cost;
            }
        }
        let mut rows: Vec<PathTuple> = best
            .into_iter()
            .map(|((s, d), c)| PathTuple::new(s, d, c))
            .collect();
        rows.sort_unstable();
        Relation {
            name: format!("min({})", self.name),
            rows,
        }
    }

    /// Set-semantics dedup ignoring cost (reachability view).
    pub fn distinct_pairs(&self) -> Relation<PathTuple> {
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for t in &self.rows {
            if seen.insert(t.endpoints()) {
                rows.push(*t);
            }
        }
        rows.sort_unstable();
        Relation {
            name: format!("δ({})", self.name),
            rows,
        }
    }

    /// Look up the cheapest cost for an exact `(src, dst)` pair.
    pub fn cost_of(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        self.rows
            .iter()
            .filter(|t| t.src == src && t.dst == dst)
            .map(|t| t.cost)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation<PathTuple> {
        Relation::from_rows(
            "r",
            vec![
                PathTuple::new(NodeId(0), NodeId(1), 5),
                PathTuple::new(NodeId(0), NodeId(1), 3),
                PathTuple::new(NodeId(1), NodeId(2), 7),
            ],
        )
    }

    #[test]
    fn select_filters() {
        let r = rel().select(|t| t.cost < 6);
        assert_eq!(r.len(), 2);
        assert!(r.name().contains('σ'));
    }

    #[test]
    fn project_maps() {
        let srcs = rel().project(|t| t.src);
        assert_eq!(srcs.rows(), &[NodeId(0), NodeId(0), NodeId(1)]);
    }

    #[test]
    fn union_is_bag_semantics() {
        let r = rel();
        let u = r.union(&r);
        assert_eq!(u.len(), 6);
    }

    #[test]
    fn min_cost_groups_pairs() {
        let m = rel().min_cost();
        assert_eq!(m.len(), 2);
        assert_eq!(m.cost_of(NodeId(0), NodeId(1)), Some(3));
        assert_eq!(m.cost_of(NodeId(1), NodeId(2)), Some(7));
        assert_eq!(m.cost_of(NodeId(2), NodeId(0)), None);
    }

    #[test]
    fn distinct_pairs_keeps_first() {
        let d = rel().distinct_pairs();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn empty_relation() {
        let e: Relation<PathTuple> = Relation::empty("e");
        assert!(e.is_empty());
        assert_eq!(e.min_cost().len(), 0);
    }
}
