//! # ds-relation — a minimal relational algebra substrate
//!
//! The paper frames everything relationally: the graph is a relation
//! `R(src, dst, cost)`, transitive closure is an iterated join, the
//! disconnection sets "introduce additional selections in the processing
//! of the recursive query", and the final assembly "is effectively a
//! sequence of binary joins between a number of very small relations"
//! (§2.1). This crate provides exactly those operators:
//!
//! * [`Relation`] — a typed, in-memory relation with selection,
//!   projection, union and deduplication;
//! * [`join`] — hash joins, including the min-plus path composition the
//!   closure engine's final assembly uses;
//! * [`tc`] — naive and semi-naive transitive closure as join programs,
//!   with iteration and tuple statistics (the measures behind the paper's
//!   speed-up arguments);
//! * [`bulk`] — the parallel fragmented materialization subsystem:
//!   per-fragment semi-naive fixpoint workers exchanging
//!   disconnection-set-selected deltas in rounds until the global
//!   fixpoint.
//!
//! ```
//! use ds_relation::tuple::PathTuple;
//! use ds_relation::{Relation, tc};
//! use ds_graph::NodeId;
//!
//! let edges = Relation::from_rows("edge", vec![
//!     PathTuple::new(NodeId(0), NodeId(1), 3),
//!     PathTuple::new(NodeId(1), NodeId(2), 4),
//! ]);
//! let (closure, stats) = tc::seminaive_closure(&edges, None);
//! assert_eq!(closure.rows().len(), 3); // (0,1), (1,2), (0,2)
//! assert!(stats.iterations <= 2);
//! ```

pub mod bulk;
pub mod join;
pub mod relation;
pub mod stats;
pub mod tc;
pub mod tuple;

pub use bulk::{MaterializeConfig, MaterializeEngine, MaterializeError, MaterializeStats};
pub use relation::Relation;
pub use stats::TcStats;
pub use tuple::PathTuple;
