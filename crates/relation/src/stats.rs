//! Execution statistics of the closure operators.
//!
//! The paper's performance arguments are about exactly these quantities:
//! the number of iterations to the fixpoint ("given by the maximum
//! diameter of the graph", §2.1) and the size of intermediate results
//! ("the size of intermediate results depends on the connectivity",
//! §2.2).

/// Counters collected by one transitive-closure evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcStats {
    /// Join-and-merge rounds until the fixpoint.
    pub iterations: usize,
    /// Total tuples produced by joins (before dedup/min aggregation).
    pub tuples_generated: usize,
    /// Tuples in the final result.
    pub result_tuples: usize,
}

impl TcStats {
    /// Merge counters from another evaluation (e.g. across fragments).
    pub fn absorb(&mut self, other: &TcStats) {
        self.iterations = self.iterations.max(other.iterations);
        self.tuples_generated += other.tuples_generated;
        self.result_tuples += other.result_tuples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_takes_max_iterations_and_sums_tuples() {
        let mut a = TcStats {
            iterations: 3,
            tuples_generated: 10,
            result_tuples: 5,
        };
        let b = TcStats {
            iterations: 7,
            tuples_generated: 1,
            result_tuples: 2,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            TcStats {
                iterations: 7,
                tuples_generated: 11,
                result_tuples: 7
            }
        );
    }
}
