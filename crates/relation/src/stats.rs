//! Execution statistics of the closure operators.
//!
//! The paper's performance arguments are about exactly these quantities:
//! the number of iterations to the fixpoint ("given by the maximum
//! diameter of the graph", §2.1) and the size of intermediate results
//! ("the size of intermediate results depends on the connectivity",
//! §2.2). The delta-size trajectory and the exchange counters added for
//! the bulk engine extend the same measurement frame to the fragmented
//! parallel strategy.

use std::fmt;

/// Counters collected by one transitive-closure evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TcStats {
    /// Join-and-merge rounds until the fixpoint.
    pub iterations: usize,
    /// Total tuples produced by joins (before dedup/min aggregation).
    pub tuples_generated: usize,
    /// Tuples in the final result.
    pub result_tuples: usize,
    /// Tuples admitted per iteration — the Δ trajectory for the
    /// delta-driven strategies (semi-naive, bulk), the join-output sizes
    /// for naive/smart. `delta_sizes.len() == iterations`.
    pub delta_sizes: Vec<usize>,
    /// Times a prebuilt hash-join build table was probed again instead of
    /// being rebuilt from the full relation (see
    /// [`crate::join::JoinIndex`]).
    pub index_reuses: usize,
    /// Bulk engine only: delta-exchange barriers until the global
    /// fixpoint (zero for the single-relation strategies).
    pub exchange_rounds: usize,
    /// Bulk engine only: border-crossing delta tuples shipped between
    /// fragments, after the disconnection-set selection.
    pub exchanged_tuples: usize,
}

impl TcStats {
    /// Merge counters from another evaluation (e.g. across fragments):
    /// iteration-like counters take the max, volume counters add, and
    /// delta trajectories add element-wise (iteration `k` of each side
    /// happens concurrently in the fragmented reading).
    pub fn absorb(&mut self, other: &TcStats) {
        self.iterations = self.iterations.max(other.iterations);
        self.tuples_generated += other.tuples_generated;
        self.result_tuples += other.result_tuples;
        if self.delta_sizes.len() < other.delta_sizes.len() {
            self.delta_sizes.resize(other.delta_sizes.len(), 0);
        }
        for (mine, theirs) in self.delta_sizes.iter_mut().zip(&other.delta_sizes) {
            *mine += *theirs;
        }
        self.index_reuses += other.index_reuses;
        self.exchange_rounds = self.exchange_rounds.max(other.exchange_rounds);
        self.exchanged_tuples += other.exchanged_tuples;
    }
}

impl fmt::Display for TcStats {
    /// One-line summary for examples and benches, e.g.
    /// `7 iters, 1532 generated -> 420 tuples, 6 index reuses, 3 rounds /
    /// 87 tuples exchanged`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iters, {} generated -> {} tuples",
            self.iterations, self.tuples_generated, self.result_tuples
        )?;
        if self.index_reuses > 0 {
            write!(f, ", {} index reuses", self.index_reuses)?;
        }
        if self.exchange_rounds > 0 {
            write!(
                f,
                ", {} rounds / {} tuples exchanged",
                self.exchange_rounds, self.exchanged_tuples
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_takes_max_iterations_and_sums_tuples() {
        let mut a = TcStats {
            iterations: 3,
            tuples_generated: 10,
            result_tuples: 5,
            delta_sizes: vec![4, 1],
            index_reuses: 2,
            ..TcStats::default()
        };
        let b = TcStats {
            iterations: 7,
            tuples_generated: 1,
            result_tuples: 2,
            delta_sizes: vec![1, 1, 1],
            index_reuses: 6,
            exchange_rounds: 2,
            exchanged_tuples: 9,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            TcStats {
                iterations: 7,
                tuples_generated: 11,
                result_tuples: 7,
                delta_sizes: vec![5, 2, 1],
                index_reuses: 8,
                exchange_rounds: 2,
                exchanged_tuples: 9,
            }
        );
    }

    #[test]
    fn display_is_a_one_liner() {
        let plain = TcStats {
            iterations: 2,
            tuples_generated: 12,
            result_tuples: 6,
            ..TcStats::default()
        };
        assert_eq!(plain.to_string(), "2 iters, 12 generated -> 6 tuples");
        let bulk = TcStats {
            iterations: 4,
            tuples_generated: 40,
            result_tuples: 20,
            delta_sizes: vec![10, 6, 3, 1],
            index_reuses: 3,
            exchange_rounds: 2,
            exchanged_tuples: 7,
        };
        let line = bulk.to_string();
        assert!(line.contains("3 index reuses"), "{line}");
        assert!(line.contains("2 rounds / 7 tuples exchanged"), "{line}");
        assert!(!line.contains('\n'));
    }
}
