//! Hash joins, including the min-plus path composition used by the
//! closure engine's final assembly ("a sequence of binary joins between a
//! number of very small relations", §2.1).

use std::collections::HashMap;
use std::hash::Hash;

use crate::relation::Relation;
use crate::tuple::PathTuple;

/// Generic hash equi-join: builds on the smaller-looking side (`right`),
/// probes with `left`. For each matching pair, `merge` produces an output
/// row.
pub fn hash_join<L, R, K, O>(
    left: &Relation<L>,
    right: &Relation<R>,
    left_key: impl Fn(&L) -> K,
    right_key: impl Fn(&R) -> K,
    merge: impl Fn(&L, &R) -> O,
) -> Relation<O>
where
    K: Eq + Hash,
{
    let mut index: HashMap<K, Vec<&R>> = HashMap::with_capacity(right.len());
    for r in right.rows() {
        index.entry(right_key(r)).or_default().push(r);
    }
    let mut out = Vec::new();
    for l in left.rows() {
        if let Some(matches) = index.get(&left_key(l)) {
            for r in matches {
                out.push(merge(l, r));
            }
        }
    }
    Relation::from_rows(format!("({}⋈{})", left.name(), right.name()), out)
}

/// Min-plus composition of two path relations:
/// `out(a, c) = min over b of left(a, b) + right(b, c)`.
///
/// This is the join `left ⋈_{left.dst = right.src} right` followed by the
/// min-cost aggregation — one step of the final assembly along a chain of
/// fragments.
pub fn compose_min_plus(
    left: &Relation<PathTuple>,
    right: &Relation<PathTuple>,
) -> Relation<PathTuple> {
    hash_join(
        left,
        right,
        |l| l.dst,
        |r| r.src,
        |l, r| PathTuple::new(l.src, r.dst, l.cost + r.cost),
    )
    .min_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn hash_join_matches_pairs() {
        let l = Relation::from_rows("l", vec![(1u32, "a"), (2, "b")]);
        let r = Relation::from_rows("r", vec![(1u32, 10i64), (1, 20), (3, 30)]);
        let j = hash_join(&l, &r, |x| x.0, |y| y.0, |x, y| (x.1, y.1));
        assert_eq!(j.rows(), &[("a", 10), ("a", 20)]);
        assert!(j.name().contains('⋈'));
    }

    #[test]
    fn compose_takes_minimum_over_midpoints() {
        // Two routes from 0 to 2: via 1 (3+4=7) and via 3 (2+9=11).
        let left = Relation::from_rows(
            "l",
            vec![PathTuple::new(n(0), n(1), 3), PathTuple::new(n(0), n(3), 2)],
        );
        let right = Relation::from_rows(
            "r",
            vec![PathTuple::new(n(1), n(2), 4), PathTuple::new(n(3), n(2), 9)],
        );
        let out = compose_min_plus(&left, &right);
        assert_eq!(out.rows(), &[PathTuple::new(n(0), n(2), 7)]);
    }

    #[test]
    fn compose_is_associative_on_chains() {
        // (A∘B)∘C == A∘(B∘C) for a 4-hop chain with branches.
        let a = Relation::from_rows(
            "a",
            vec![PathTuple::new(n(0), n(1), 1), PathTuple::new(n(0), n(2), 5)],
        );
        let b = Relation::from_rows(
            "b",
            vec![PathTuple::new(n(1), n(3), 2), PathTuple::new(n(2), n(3), 1)],
        );
        let c = Relation::from_rows("c", vec![PathTuple::new(n(3), n(4), 4)]);
        let left_assoc = compose_min_plus(&compose_min_plus(&a, &b), &c);
        let right_assoc = compose_min_plus(&a, &compose_min_plus(&b, &c));
        assert_eq!(left_assoc.rows(), right_assoc.rows());
        assert_eq!(left_assoc.cost_of(n(0), n(4)), Some(7));
    }

    #[test]
    fn compose_with_empty_is_empty() {
        let a = Relation::from_rows("a", vec![PathTuple::new(n(0), n(1), 1)]);
        let e: Relation<PathTuple> = Relation::empty("e");
        assert!(compose_min_plus(&a, &e).is_empty());
        assert!(compose_min_plus(&e, &a).is_empty());
    }
}
