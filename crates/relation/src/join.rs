//! Hash joins, including the min-plus path composition used by the
//! closure engine's final assembly ("a sequence of binary joins between a
//! number of very small relations", §2.1).

use std::collections::HashMap;
use std::hash::Hash;

use crate::relation::Relation;
use crate::tuple::PathTuple;

/// Generic hash equi-join: builds on the smaller-looking side (`right`),
/// probes with `left`. For each matching pair, `merge` produces an output
/// row.
pub fn hash_join<L, R, K, O>(
    left: &Relation<L>,
    right: &Relation<R>,
    left_key: impl Fn(&L) -> K,
    right_key: impl Fn(&R) -> K,
    merge: impl Fn(&L, &R) -> O,
) -> Relation<O>
where
    K: Eq + Hash,
{
    let mut index: HashMap<K, Vec<&R>> = HashMap::with_capacity(right.len());
    for r in right.rows() {
        index.entry(right_key(r)).or_default().push(r);
    }
    let mut out = Vec::new();
    for l in left.rows() {
        if let Some(matches) = index.get(&left_key(l)) {
            for r in matches {
                out.push(merge(l, r));
            }
        }
    }
    Relation::from_rows(format!("({}⋈{})", left.name(), right.name()), out)
}

/// A reusable hash-join build table.
///
/// [`hash_join`] rebuilds its build-side index on every call, which is
/// wasteful for iterated joins whose build side never changes — exactly
/// the semi-naive loop, where every round joins the current delta against
/// the *same* base relation. `JoinIndex` separates the build phase from
/// the probe phase: build (or incrementally [`extend`](JoinIndex::extend))
/// once, probe every round. [`crate::TcStats::index_reuses`] counts how
/// often the rebuild was avoided.
pub struct JoinIndex<K, R> {
    map: HashMap<K, Vec<R>>,
    rows: usize,
}

impl<K: Eq + Hash, R: Clone> JoinIndex<K, R> {
    /// Index `rel` by `key` (the build phase of a hash join).
    pub fn build(rel: &Relation<R>, key: impl Fn(&R) -> K) -> Self {
        let mut index = JoinIndex {
            map: HashMap::with_capacity(rel.len()),
            rows: 0,
        };
        index.extend(rel.rows(), key);
        index
    }

    /// Incrementally index more rows (e.g. each round's delta of a
    /// growing accumulated relation) without touching what is already
    /// indexed.
    pub fn extend(&mut self, rows: &[R], key: impl Fn(&R) -> K) {
        for r in rows {
            self.map.entry(key(r)).or_default().push(r.clone());
        }
        self.rows += rows.len();
    }

    /// All indexed rows matching `key` (the probe phase).
    pub fn matches(&self, key: &K) -> &[R] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Probe with every row of `left`, appending `merge(l, r)` for each
    /// match to `out`; returns how many output rows were produced.
    pub fn join_into<L, O>(
        &self,
        left: &[L],
        left_key: impl Fn(&L) -> K,
        merge: impl Fn(&L, &R) -> O,
        out: &mut Vec<O>,
    ) -> usize {
        let before = out.len();
        for l in left {
            for r in self.matches(&left_key(l)) {
                out.push(merge(l, r));
            }
        }
        out.len() - before
    }
}

/// Min-plus composition of two path relations:
/// `out(a, c) = min over b of left(a, b) + right(b, c)`.
///
/// This is the join `left ⋈_{left.dst = right.src} right` followed by the
/// min-cost aggregation — one step of the final assembly along a chain of
/// fragments.
pub fn compose_min_plus(
    left: &Relation<PathTuple>,
    right: &Relation<PathTuple>,
) -> Relation<PathTuple> {
    hash_join(
        left,
        right,
        |l| l.dst,
        |r| r.src,
        |l, r| PathTuple::new(l.src, r.dst, l.cost + r.cost),
    )
    .min_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn hash_join_matches_pairs() {
        let l = Relation::from_rows("l", vec![(1u32, "a"), (2, "b")]);
        let r = Relation::from_rows("r", vec![(1u32, 10i64), (1, 20), (3, 30)]);
        let j = hash_join(&l, &r, |x| x.0, |y| y.0, |x, y| (x.1, y.1));
        assert_eq!(j.rows(), &[("a", 10), ("a", 20)]);
        assert!(j.name().contains('⋈'));
    }

    #[test]
    fn join_index_probes_match_hash_join() {
        let l = Relation::from_rows("l", vec![(1u32, "a"), (2, "b")]);
        let r = Relation::from_rows("r", vec![(1u32, 10i64), (1, 20), (3, 30)]);
        let index = JoinIndex::build(&r, |y| y.0);
        assert_eq!(index.len(), 3);
        assert!(!index.is_empty());
        let mut out = Vec::new();
        let produced = index.join_into(l.rows(), |x| x.0, |x, y| (x.1, y.1), &mut out);
        assert_eq!(produced, 2);
        assert_eq!(out, vec![("a", 10), ("a", 20)]);
        let via_hash_join = hash_join(&l, &r, |x| x.0, |y| y.0, |x, y| (x.1, y.1));
        assert_eq!(out, via_hash_join.rows());
    }

    #[test]
    fn join_index_extends_incrementally() {
        let base = Relation::from_rows("b", vec![(1u32, 'x')]);
        let mut index = JoinIndex::build(&base, |t| t.0);
        index.extend(&[(1u32, 'y'), (2, 'z')], |t| t.0);
        assert_eq!(index.len(), 3);
        assert_eq!(index.matches(&1), &[(1, 'x'), (1, 'y')]);
        assert_eq!(index.matches(&2), &[(2, 'z')]);
        assert_eq!(index.matches(&9), &[] as &[(u32, char)]);
    }

    #[test]
    fn compose_takes_minimum_over_midpoints() {
        // Two routes from 0 to 2: via 1 (3+4=7) and via 3 (2+9=11).
        let left = Relation::from_rows(
            "l",
            vec![PathTuple::new(n(0), n(1), 3), PathTuple::new(n(0), n(3), 2)],
        );
        let right = Relation::from_rows(
            "r",
            vec![PathTuple::new(n(1), n(2), 4), PathTuple::new(n(3), n(2), 9)],
        );
        let out = compose_min_plus(&left, &right);
        assert_eq!(out.rows(), &[PathTuple::new(n(0), n(2), 7)]);
    }

    #[test]
    fn compose_is_associative_on_chains() {
        // (A∘B)∘C == A∘(B∘C) for a 4-hop chain with branches.
        let a = Relation::from_rows(
            "a",
            vec![PathTuple::new(n(0), n(1), 1), PathTuple::new(n(0), n(2), 5)],
        );
        let b = Relation::from_rows(
            "b",
            vec![PathTuple::new(n(1), n(3), 2), PathTuple::new(n(2), n(3), 1)],
        );
        let c = Relation::from_rows("c", vec![PathTuple::new(n(3), n(4), 4)]);
        let left_assoc = compose_min_plus(&compose_min_plus(&a, &b), &c);
        let right_assoc = compose_min_plus(&a, &compose_min_plus(&b, &c));
        assert_eq!(left_assoc.rows(), right_assoc.rows());
        assert_eq!(left_assoc.cost_of(n(0), n(4)), Some(7));
    }

    #[test]
    fn compose_with_empty_is_empty() {
        let a = Relation::from_rows("a", vec![PathTuple::new(n(0), n(1), 1)]);
        let e: Relation<PathTuple> = Relation::empty("e");
        assert!(compose_min_plus(&a, &e).is_empty());
        assert!(compose_min_plus(&e, &a).is_empty());
    }
}
