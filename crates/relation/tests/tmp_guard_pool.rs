use ds_fragment::Fragmentation;
use ds_graph::{Edge, NodeId};
use ds_relation::{MaterializeConfig, MaterializeEngine};

#[test]
#[should_panic(expected = "max_rounds")]
fn guard_trips_in_pool_mode() {
    let frag = Fragmentation::new(
        5,
        vec![
            vec![Edge::unit(NodeId(0), NodeId(1)), Edge::unit(NodeId(1), NodeId(2))],
            vec![Edge::unit(NodeId(2), NodeId(3)), Edge::unit(NodeId(3), NodeId(4))],
        ],
        vec![vec![], vec![]],
    );
    let engine = MaterializeEngine::from_fragmentation(
        &frag,
        true,
        MaterializeConfig { threads: 2, max_rounds: 1, ..Default::default() },
    );
    engine.materialize();
}
