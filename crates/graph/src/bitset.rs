//! A fixed-capacity bit set over `u64` words.
//!
//! Used for adjacency-matrix rows (bond-energy algorithm, Warshall
//! closure) and visited sets in traversals. The operations the closure
//! kernels need — `union_with`, `count_ones`, word-level access — are kept
//! branch-light because Warshall runs them in an O(n²) inner loop.

/// A fixed-size set of bits, indexable by `usize`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BitSet {
    bits: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty bit set with capacity for `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        BitSet {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the capacity is zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to one. Panics if out of range.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.bits[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self |= other`. Returns `true` if any bit of `self` changed — the
    /// semi-naive kernels use this to detect a fixpoint.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let before = *a;
            *a |= *b;
            changed |= *a != before;
        }
        changed
    }

    /// Popcount of the intersection — the "inner product" of two 0/1
    /// columns used by the bond-energy algorithm (§3.2).
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Set every bit to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a bit set sized to the maximum index + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut bs = BitSet::new(len);
        for i in items {
            bs.insert(i);
        }
        bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bs = BitSet::new(130);
        assert!(!bs.contains(0));
        bs.insert(0);
        bs.insert(63);
        bs.insert(64);
        bs.insert(129);
        assert!(bs.contains(0) && bs.contains(63) && bs.contains(64) && bs.contains(129));
        assert_eq!(bs.count_ones(), 4);
        bs.remove(64);
        assert!(!bs.contains(64));
        assert_eq!(bs.count_ones(), 3);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let bs = BitSet::new(10);
        assert!(!bs.contains(10));
        assert!(!bs.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut bs = BitSet::new(10);
        bs.insert(10);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(69));
    }

    #[test]
    fn intersection_count_is_inner_product() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1, 5, 64, 99] {
            a.insert(i);
        }
        for i in [5, 64, 98] {
            b.insert(i);
        }
        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn iter_ones_ascending() {
        let bs: BitSet = [3usize, 64, 65, 127].into_iter().collect();
        let ones: Vec<usize> = bs.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 127]);
    }

    #[test]
    fn clear_resets_all() {
        let mut bs: BitSet = [1usize, 2, 3].into_iter().collect();
        bs.clear();
        assert_eq!(bs.count_ones(), 0);
    }

    #[test]
    fn from_iter_empty() {
        let bs: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(bs.len(), 0);
        assert!(bs.is_empty());
    }
}
