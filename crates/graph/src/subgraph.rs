//! Induced-subgraph views with a dense local id space.
//!
//! Fragment-local computations (the skeleton precompute's border sweeps,
//! per-fragment measures) want to run over the fragment's node set only,
//! with scratch arrays sized to the fragment rather than the whole
//! network. A [`SubgraphView`] relabels a node subset to `0..k` and keeps
//! the induced edges in CSR form, plus the global↔local id mapping.

use crate::types::{Edge, NodeId};
use crate::CsrGraph;

/// The subgraph of a [`CsrGraph`] induced by a node subset, relabeled to
/// a dense local id space (`0..len()`); locals are assigned in ascending
/// global order.
#[derive(Clone, Debug)]
pub struct SubgraphView {
    graph: CsrGraph,
    /// Sorted, deduplicated global ids; index = local id.
    globals: Vec<NodeId>,
}

impl SubgraphView {
    /// Build the induced subgraph of `g` on `nodes`: every edge of `g`
    /// with both endpoints in the set, relabeled.
    pub fn induced(g: &CsrGraph, nodes: &[NodeId]) -> Self {
        let mut globals: Vec<NodeId> = nodes.to_vec();
        globals.sort_unstable();
        globals.dedup();
        let mut edges = Vec::new();
        for (li, &v) in globals.iter().enumerate() {
            for (t, c) in g.neighbors(v) {
                if let Ok(lt) = globals.binary_search(&t) {
                    edges.push(Edge::new(NodeId::from_index(li), NodeId::from_index(lt), c));
                }
            }
        }
        SubgraphView {
            graph: CsrGraph::from_edges(globals.len(), &edges),
            globals,
        }
    }

    /// The relabeled graph (node ids are local).
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of nodes in the view.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Global id of a local node.
    pub fn global_of(&self, local: NodeId) -> NodeId {
        self.globals[local.index()]
    }

    /// Local id of a global node, if it is in the view.
    pub fn local_of(&self, global: NodeId) -> Option<NodeId> {
        self.globals
            .binary_search(&global)
            .ok()
            .map(NodeId::from_index)
    }

    /// The sorted global node ids backing the view.
    pub fn globals(&self) -> &[NodeId] {
        &self.globals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Path 0-1-2-3-4 (directed both ways) over 5 nodes.
    fn path5() -> CsrGraph {
        let mut edges = Vec::new();
        for i in 0..4u32 {
            edges.push(Edge::unit(n(i), n(i + 1)));
            edges.push(Edge::unit(n(i + 1), n(i)));
        }
        CsrGraph::from_edges(5, &edges)
    }

    #[test]
    fn induced_keeps_only_inner_edges() {
        let g = path5();
        let view = SubgraphView::induced(&g, &[n(1), n(2), n(3)]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.graph().node_count(), 3);
        // Edges 1-2 and 2-3 in both directions; 0-1 and 3-4 are cut.
        assert_eq!(view.graph().edge_count(), 4);
        assert_eq!(view.global_of(n(0)), n(1));
        assert_eq!(view.local_of(n(3)), Some(n(2)));
        assert_eq!(view.local_of(n(4)), None);
    }

    #[test]
    fn local_distances_match_global_within_the_set() {
        let g = path5();
        let view = SubgraphView::induced(&g, &[n(1), n(2), n(3)]);
        let local_src = view.local_of(n(1)).unwrap();
        let sp = dijkstra::single_source(view.graph(), local_src);
        assert_eq!(sp.cost(view.local_of(n(3)).unwrap()), Some(2));
    }

    #[test]
    fn unsorted_and_duplicated_input_is_normalized() {
        let g = path5();
        let view = SubgraphView::induced(&g, &[n(3), n(1), n(3), n(2)]);
        assert_eq!(view.globals(), &[n(1), n(2), n(3)]);
    }

    #[test]
    fn empty_view_is_fine() {
        let g = path5();
        let view = SubgraphView::induced(&g, &[]);
        assert!(view.is_empty());
        assert_eq!(view.graph().edge_count(), 0);
    }
}
