//! Disjoint-set union (union–find) with path halving and union by size.
//!
//! Used to detect cycles in the fragmentation graph (the paper's "loosely
//! connected" test, §2.1) and to find connected components.

/// A union–find structure over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Merge the sets containing `a` and `b`.
    /// Returns `false` if they were already in the same set — which is
    /// exactly the "this edge closes a cycle" signal.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(3), 1);
    }

    #[test]
    fn union_merges_and_detects_cycles() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 2));
        assert_eq!(uf.component_count(), 1);
        // Any further union closes a cycle.
        assert!(!uf.union(0, 3));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.component_size(0), 4);
    }

    #[test]
    fn find_is_idempotent() {
        let mut uf = UnionFind::new(10);
        for i in 1..10 {
            uf.union(0, i);
        }
        let r = uf.find(7);
        assert_eq!(uf.find(7), r);
        assert_eq!(uf.find(0), r);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
