//! The edge-list ("relation") view of a graph.
//!
//! The fragmentation algorithms of §3 are specified as manipulations of an
//! edge set `E` — edges are repeatedly removed from `E` and added to
//! fragments `E_k`. [`EdgeList`] is that working set, with the incidence
//! index the inner loops need.

use std::collections::BTreeSet;

use crate::types::{Coord, Cost, Edge, NodeId};
use crate::CsrGraph;

/// A mutable multiset of directed edges over nodes `0..node_count`, with
/// optional coordinates, supporting the operations Fig. 4 and Fig. 7 of
/// the paper perform on `E`.
#[derive(Clone, Debug)]
pub struct EdgeList {
    node_count: usize,
    edges: Vec<Edge>,
    /// `alive[i]` — whether `edges[i]` is still in the working set.
    alive: Vec<bool>,
    /// For each node, indices into `edges` of incident (in- or out-) edges.
    incidence: Vec<Vec<u32>>,
    alive_count: usize,
    coords: Option<Vec<Coord>>,
}

impl EdgeList {
    /// Build a working edge set.
    pub fn new(node_count: usize, edges: Vec<Edge>) -> Self {
        let mut incidence = vec![Vec::new(); node_count];
        for (i, e) in edges.iter().enumerate() {
            assert!(e.src.index() < node_count, "edge {e} out of range");
            assert!(e.dst.index() < node_count, "edge {e} out of range");
            incidence[e.src.index()].push(i as u32);
            if e.src != e.dst {
                incidence[e.dst.index()].push(i as u32);
            }
        }
        let alive_count = edges.len();
        EdgeList {
            node_count,
            alive: vec![true; edges.len()],
            edges,
            incidence,
            alive_count,
            coords: None,
        }
    }

    /// Build from a CSR graph (copies edges; carries coordinates over).
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut el = EdgeList::new(g.node_count(), g.edges().collect());
        el.coords = g.coords().map(|c| c.to_vec());
        el
    }

    /// Attach coordinates (must match node count).
    pub fn with_coords(mut self, coords: Vec<Coord>) -> Self {
        assert_eq!(
            coords.len(),
            self.node_count,
            "coordinate table length mismatch"
        );
        self.coords = Some(coords);
        self
    }

    /// Total nodes (alive or not — node set is fixed).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges still in the working set.
    pub fn remaining(&self) -> usize {
        self.alive_count
    }

    /// True if no edges remain (`E = ∅`, the outer-loop exit of Figs. 4/7).
    pub fn is_exhausted(&self) -> bool {
        self.alive_count == 0
    }

    /// Node coordinates, if present.
    pub fn coords(&self) -> Option<&[Coord]> {
        self.coords.as_deref()
    }

    /// The edge with internal index `i` (alive or not).
    pub fn edge(&self, i: u32) -> Edge {
        self.edges[i as usize]
    }

    /// Whether working-set entry `i` is still alive.
    pub fn is_alive(&self, i: u32) -> bool {
        self.alive[i as usize]
    }

    /// Indices of alive edges incident to `v` (either direction).
    pub fn alive_incident(&self, v: NodeId) -> impl Iterator<Item = u32> + '_ {
        self.incidence[v.index()]
            .iter()
            .copied()
            .filter(move |&i| self.alive[i as usize])
    }

    /// Remove edge `i` from the working set. Returns the edge.
    /// Panics if already removed — the partition invariant ("each tuple is
    /// computed at exactly one processor") depends on single assignment.
    pub fn take(&mut self, i: u32) -> Edge {
        assert!(self.alive[i as usize], "edge {i} taken twice");
        self.alive[i as usize] = false;
        self.alive_count -= 1;
        self.edges[i as usize]
    }

    /// Take all alive edges incident to any node in `frontier`; returns
    /// their indices. This is the `new_e` step of the linear algorithm
    /// (Fig. 7) and the expansion step of the center-based one (Fig. 4).
    pub fn take_incident_to(&mut self, frontier: impl IntoIterator<Item = NodeId>) -> Vec<u32> {
        let mut taken = Vec::new();
        for v in frontier {
            // Collect first: take() mutates `alive` which the filter reads.
            let ids: Vec<u32> = self.alive_incident(v).collect();
            for i in ids {
                if self.alive[i as usize] {
                    self.take(i);
                    taken.push(i);
                }
            }
        }
        taken
    }

    /// Iterate over the alive edges.
    pub fn alive_edges(&self) -> impl Iterator<Item = (u32, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.alive[*i])
            .map(|(i, e)| (i as u32, *e))
    }

    /// Endpoints of all alive edges (each node once, sorted).
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        let mut set = BTreeSet::new();
        for (_, e) in self.alive_edges() {
            set.insert(e.src);
            set.insert(e.dst);
        }
        set.into_iter().collect()
    }

    /// The alive node with the smallest key under `key` — used to re-seed
    /// the linear sweep on disconnected graphs (documented deviation #1 in
    /// DESIGN.md).
    pub fn min_alive_node_by<K: PartialOrd>(&self, key: impl Fn(NodeId) -> K) -> Option<NodeId> {
        let mut best: Option<(NodeId, K)> = None;
        for (_, e) in self.alive_edges() {
            for v in [e.src, e.dst] {
                let k = key(v);
                match &best {
                    Some((_, bk)) if *bk <= k => {}
                    _ => best = Some((v, k)),
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Degree of `v` counting only alive edges.
    pub fn alive_degree(&self, v: NodeId) -> usize {
        self.alive_incident(v).count()
    }
}

/// Deduplicate edges that represent the same symmetric connection: keeps
/// one `(u, v)` and one `(v, u)` per undirected pair, choosing the cheapest
/// cost seen. Useful when generators emit duplicates.
pub fn dedup_symmetric(edges: &[Edge]) -> Vec<Edge> {
    use std::collections::HashMap;
    let mut best: HashMap<(NodeId, NodeId), Cost> = HashMap::new();
    for e in edges {
        let entry = best.entry((e.src, e.dst)).or_insert(e.cost);
        if e.cost < *entry {
            *entry = e.cost;
        }
    }
    let mut out: Vec<Edge> = best
        .into_iter()
        .map(|((s, d), c)| Edge::new(s, d, c))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeList {
        EdgeList::new(
            3,
            vec![
                Edge::unit(NodeId(0), NodeId(1)),
                Edge::unit(NodeId(1), NodeId(2)),
                Edge::unit(NodeId(2), NodeId(0)),
            ],
        )
    }

    #[test]
    fn take_removes_once() {
        let mut el = triangle();
        assert_eq!(el.remaining(), 3);
        let e = el.take(0);
        assert_eq!(e.src, NodeId(0));
        assert_eq!(el.remaining(), 2);
        assert!(!el.is_alive(0));
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut el = triangle();
        el.take(1);
        el.take(1);
    }

    #[test]
    fn take_incident_consumes_frontier_edges() {
        let mut el = triangle();
        let taken = el.take_incident_to([NodeId(0)]);
        // Node 0 touches edges 0 (0->1) and 2 (2->0).
        assert_eq!(taken.len(), 2);
        assert_eq!(el.remaining(), 1);
        let (_, last) = el.alive_edges().next().unwrap();
        assert_eq!(last, Edge::unit(NodeId(1), NodeId(2)));
    }

    #[test]
    fn take_incident_handles_overlapping_frontier() {
        let mut el = triangle();
        // Both endpoints of every edge are in the frontier; each edge must
        // still be taken exactly once.
        let taken = el.take_incident_to([NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(taken.len(), 3);
        assert!(el.is_exhausted());
    }

    #[test]
    fn alive_nodes_shrinks() {
        let mut el = triangle();
        el.take_incident_to([NodeId(0)]);
        assert_eq!(el.alive_nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn min_alive_node_by_key() {
        let el = triangle();
        let min = el.min_alive_node_by(|v| v.0).unwrap();
        assert_eq!(min, NodeId(0));
        let max = el.min_alive_node_by(|v| std::cmp::Reverse(v.0)).unwrap();
        assert_eq!(max, NodeId(2));
    }

    #[test]
    fn from_graph_roundtrip() {
        let g = CsrGraph::from_edges(
            3,
            &[
                Edge::unit(NodeId(0), NodeId(1)),
                Edge::unit(NodeId(1), NodeId(2)),
            ],
        );
        let el = EdgeList::from_graph(&g);
        assert_eq!(el.remaining(), 2);
        assert_eq!(el.node_count(), 3);
    }

    #[test]
    fn self_loop_incidence_not_doubled() {
        let el = EdgeList::new(2, vec![Edge::unit(NodeId(0), NodeId(0))]);
        assert_eq!(el.alive_degree(NodeId(0)), 1);
    }

    #[test]
    fn dedup_symmetric_keeps_cheapest() {
        let edges = vec![
            Edge::new(NodeId(0), NodeId(1), 5),
            Edge::new(NodeId(0), NodeId(1), 3),
            Edge::new(NodeId(1), NodeId(0), 4),
        ];
        let out = dedup_symmetric(&edges);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Edge::new(NodeId(0), NodeId(1), 3)));
        assert!(out.contains(&Edge::new(NodeId(1), NodeId(0), 4)));
    }
}
