//! Compressed sparse row (CSR) directed graph.
//!
//! The indexed, read-optimized form of the connection relation. All query
//! kernels (Dijkstra, BFS, semi-naive closure) run on this; the
//! fragmentation algorithms mostly work on [`crate::EdgeList`]s and convert
//! when they need traversals.

use crate::error::GraphError;
use crate::types::{Coord, Cost, Edge, NodeId};

/// A directed graph in CSR form, with optional node coordinates.
///
/// Parallel edges and self-loops are allowed (the relation may contain
/// them); algorithms that care filter them out.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`costs` for node `v`.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    costs: Vec<Cost>,
    /// Optional node coordinates (required by the linear sweep and the
    /// distributed-centers refinement).
    coords: Option<Vec<Coord>>,
}

impl CsrGraph {
    /// Build from an edge list over nodes `0..node_count`.
    ///
    /// # Panics
    /// Panics if an edge references a node outside `0..node_count`; use
    /// [`CsrGraph::try_from_edges`] for a fallible build.
    pub fn from_edges(node_count: usize, edges: &[Edge]) -> Self {
        Self::try_from_edges(node_count, edges).expect("edge references out-of-range node")
    }

    /// Fallible CSR construction; counting sort by source node, O(V + E).
    pub fn try_from_edges(node_count: usize, edges: &[Edge]) -> Result<Self, GraphError> {
        for e in edges {
            if e.src.index() >= node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: e.src,
                    node_count,
                });
            }
            if e.dst.index() >= node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: e.dst,
                    node_count,
                });
            }
        }
        let mut offsets = vec![0u32; node_count + 1];
        for e in edges {
            offsets[e.src.index() + 1] += 1;
        }
        for i in 0..node_count {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); edges.len()];
        let mut costs = vec![0 as Cost; edges.len()];
        for e in edges {
            let slot = cursor[e.src.index()] as usize;
            targets[slot] = e.dst;
            costs[slot] = e.cost;
            cursor[e.src.index()] += 1;
        }
        Ok(CsrGraph {
            offsets,
            targets,
            costs,
            coords: None,
        })
    }

    /// Build a unit-cost graph from raw `(src, dst)` pairs — the
    /// memory-lean path for very large synthetic graphs (no 16-byte
    /// [`Edge`] intermediary; a million-node, multi-million-edge graph
    /// stays within a few flat u32/u64 vectors). Same counting-sort
    /// construction as [`CsrGraph::try_from_edges`].
    ///
    /// # Panics
    /// Panics if a pair references a node outside `0..node_count`.
    pub fn from_unit_pairs(node_count: usize, pairs: &[(u32, u32)]) -> Self {
        let n = node_count as u32;
        assert!(
            pairs.iter().all(|&(s, d)| s < n && d < n),
            "pair references out-of-range node"
        );
        let mut offsets = vec![0u32; node_count + 1];
        for &(s, _) in pairs {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..node_count {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); pairs.len()];
        for &(s, d) in pairs {
            let slot = cursor[s as usize] as usize;
            targets[slot] = NodeId(d);
            cursor[s as usize] += 1;
        }
        CsrGraph {
            offsets,
            targets,
            costs: vec![1; pairs.len()],
            coords: None,
        }
    }

    /// Attach node coordinates. Fails if the table length differs from the
    /// node count.
    pub fn with_coords(mut self, coords: Vec<Coord>) -> Result<Self, GraphError> {
        if coords.len() != self.node_count() {
            return Err(GraphError::CoordLengthMismatch {
                coords: coords.len(),
                node_count: self.node_count(),
            });
        }
        self.coords = Some(coords);
        Ok(self)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (relation cardinality).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v` — the paper's `grade(v)` for symmetric graphs.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Outgoing `(target, cost)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Cost)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.costs[lo..hi].iter().copied())
    }

    /// Outgoing target nodes of `v` (no costs).
    #[inline]
    pub fn out_targets(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// All nodes, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// All edges, grouped by source.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |v| {
            self.neighbors(v)
                .map(move |(dst, cost)| Edge { src: v, dst, cost })
        })
    }

    /// The graph with every edge reversed (same coordinates).
    pub fn reversed(&self) -> CsrGraph {
        let edges: Vec<Edge> = self.edges().map(|e| e.reversed()).collect();
        let mut g = CsrGraph::from_edges(self.node_count(), &edges);
        g.coords = self.coords.clone();
        g
    }

    /// Node coordinates, if attached.
    pub fn coords(&self) -> Option<&[Coord]> {
        self.coords.as_deref()
    }

    /// Coordinate of one node, if coordinates are attached.
    pub fn coord(&self, v: NodeId) -> Option<Coord> {
        self.coords.as_ref().map(|c| c[v.index()])
    }

    /// True if for every edge `(u, v, c)` the edge `(v, u, c)` also exists —
    /// the transportation graphs of the paper are symmetric in this sense.
    pub fn is_symmetric(&self) -> bool {
        use std::collections::HashMap;
        let mut want: HashMap<(NodeId, NodeId, Cost), i64> = HashMap::new();
        for e in self.edges() {
            if e.is_loop() {
                continue;
            }
            *want.entry((e.src, e.dst, e.cost)).or_insert(0) += 1;
            *want.entry((e.dst, e.src, e.cost)).or_insert(0) -= 1;
        }
        want.values().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3, plus a parallel edge 0 -> 1.
        CsrGraph::from_edges(
            4,
            &[
                Edge::new(NodeId(0), NodeId(1), 1),
                Edge::new(NodeId(1), NodeId(2), 2),
                Edge::new(NodeId(2), NodeId(3), 3),
                Edge::new(NodeId(0), NodeId(1), 10),
            ],
        )
    }

    #[test]
    fn counts_and_degrees() {
        let g = path_graph();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn neighbors_and_edges_roundtrip() {
        let g = path_graph();
        let nbrs: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.contains(&(NodeId(1), 1)));
        assert!(nbrs.contains(&(NodeId(1), 10)));
        assert_eq!(g.edges().count(), 4);
        // Rebuilding from edges() yields an equal graph.
        let edges: Vec<Edge> = g.edges().collect();
        let g2 = CsrGraph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = CsrGraph::try_from_edges(2, &[Edge::unit(NodeId(0), NodeId(2))]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId(2),
                node_count: 2
            }
        );
    }

    #[test]
    fn reversed_flips_all_edges() {
        let g = path_graph();
        let r = g.reversed();
        assert_eq!(r.edge_count(), g.edge_count());
        assert_eq!(r.out_degree(NodeId(1)), 2); // two reversed parallel edges
        assert_eq!(r.reversed().edges().count(), g.edges().count());
    }

    #[test]
    fn coords_attach_and_validate() {
        let g = path_graph();
        let coords = vec![Coord::new(0.0, 0.0); 4];
        let g = g.with_coords(coords).unwrap();
        assert!(g.coords().is_some());
        assert_eq!(g.coord(NodeId(2)), Some(Coord::new(0.0, 0.0)));
        let g2 = path_graph();
        assert!(matches!(
            g2.with_coords(vec![Coord::default(); 3]),
            Err(GraphError::CoordLengthMismatch { .. })
        ));
    }

    #[test]
    fn symmetry_detection() {
        let asym = path_graph();
        assert!(!asym.is_symmetric());
        let sym = CsrGraph::from_edges(
            2,
            &[
                Edge::new(NodeId(0), NodeId(1), 4),
                Edge::new(NodeId(1), NodeId(0), 4),
            ],
        );
        assert!(sym.is_symmetric());
        // Symmetry requires matching costs.
        let cost_mismatch = CsrGraph::from_edges(
            2,
            &[
                Edge::new(NodeId(0), NodeId(1), 4),
                Edge::new(NodeId(1), NodeId(0), 5),
            ],
        );
        assert!(!cost_mismatch.is_symmetric());
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn self_loops_allowed() {
        let g = CsrGraph::from_edges(1, &[Edge::unit(NodeId(0), NodeId(0))]);
        assert_eq!(g.edge_count(), 1);
        assert!(g.is_symmetric(), "self-loops are ignored by symmetry check");
    }

    #[test]
    fn unit_pairs_match_edge_construction() {
        let pairs = [(0u32, 1u32), (1, 2), (0, 2), (2, 0)];
        let via_pairs = CsrGraph::from_unit_pairs(3, &pairs);
        let edges: Vec<Edge> = pairs
            .iter()
            .map(|&(s, d)| Edge::unit(NodeId(s), NodeId(d)))
            .collect();
        assert_eq!(via_pairs, CsrGraph::from_edges(3, &edges));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn unit_pairs_reject_out_of_range() {
        CsrGraph::from_unit_pairs(2, &[(0, 5)]);
    }
}
