//! Articulation points ("relevant nodes") of the undirected view.
//!
//! The paper's first, abandoned idea for fragmenting transportation graphs
//! was graph-theoretical: mark nodes "whose removal would increase the
//! k-connectivity of the graph … as 'relevant' nodes" from which
//! disconnection sets could be drawn (§3). Full k-connectivity analysis
//! was rejected as too expensive; the k = 1 case — articulation points —
//! is cheap (Tarjan's algorithm, O(V+E)) and is kept here both as the
//! historical reference point and as a useful diagnostic: every candidate
//! single-node disconnection set must be an articulation point.

use crate::types::NodeId;
use crate::CsrGraph;

/// Articulation points of the graph viewed as undirected.
///
/// A node is an articulation point if removing it increases the number of
/// connected components. Returned sorted by id.
pub fn articulation_points(g: &CsrGraph) -> Vec<NodeId> {
    let n = g.node_count();
    // Build an undirected adjacency once; Tarjan needs both directions.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in g.edges() {
        if e.src != e.dst {
            adj[e.src.index()].push(e.dst.0);
            adj[e.dst.index()].push(e.src.0);
        }
    }

    let mut disc = vec![0u32; n]; // discovery time, 0 = unvisited
    let mut low = vec![0u32; n];
    let mut is_ap = vec![false; n];
    let mut timer = 1u32;

    // Iterative DFS to avoid recursion depth limits on long paths.
    // Stack frames: (node, parent, next neighbor index).
    let mut stack: Vec<(u32, u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if disc[root as usize] != 0 {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        let mut root_children = 0u32;
        stack.push((root, u32::MAX, 0));
        while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
            if *idx < adj[v as usize].len() {
                let w = adj[v as usize][*idx];
                *idx += 1;
                if disc[w as usize] == 0 {
                    if v == root {
                        root_children += 1;
                    }
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, v, 0));
                } else if w != parent {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if p != root && low[v as usize] >= disc[p as usize] {
                        is_ap[p as usize] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_ap[root as usize] = true;
        }
    }

    (0..n)
        .filter(|&i| is_ap[i])
        .map(NodeId::from_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn sym(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for &(a, b) in pairs {
            edges.push(Edge::unit(NodeId(a), NodeId(b)));
            edges.push(Edge::unit(NodeId(b), NodeId(a)));
        }
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn path_interior_nodes_are_articulation_points() {
        let g = sym(&[(0, 1), (1, 2), (2, 3)], 4);
        assert_eq!(articulation_points(&g), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn cycle_has_no_articulation_points() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn two_clusters_bridged_by_one_node() {
        // Clusters {0,1,2} and {4,5,6} joined through node 3: the
        // transportation-graph archetype. Node 3 and its neighbours on
        // each side are the cut nodes.
        let g = sym(
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
            ],
            7,
        );
        let aps = articulation_points(&g);
        assert!(aps.contains(&NodeId(3)), "bridge node is relevant");
        assert!(aps.contains(&NodeId(2)));
        assert!(aps.contains(&NodeId(4)));
        assert!(!aps.contains(&NodeId(0)));
    }

    #[test]
    fn star_center_is_articulation_point() {
        let g = sym(&[(0, 1), (0, 2), (0, 3)], 4);
        assert_eq!(articulation_points(&g), vec![NodeId(0)]);
    }

    #[test]
    fn disconnected_components_handled_independently() {
        let g = sym(&[(0, 1), (1, 2), (3, 4), (4, 5)], 6);
        assert_eq!(articulation_points(&g), vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn empty_and_single_node() {
        assert!(articulation_points(&CsrGraph::from_edges(0, &[])).is_empty());
        assert!(articulation_points(&CsrGraph::from_edges(1, &[])).is_empty());
    }
}
