//! # ds-graph — graph substrate for the disconnection set approach
//!
//! This crate provides the graph machinery every other crate in the
//! workspace builds on: compact node/edge types, a CSR (compressed sparse
//! row) directed graph, plain edge lists (the "relation" view used by the
//! fragmentation algorithms), traversals, shortest paths, a bit-matrix
//! representation with Warshall-style closure, union–find, and the
//! structural measures the paper relies on (diameter, eccentricity,
//! articulation points).
//!
//! The paper models a connection network as a relation `R(src, dst, cost)`
//! whose tuples are directed edges, possibly weighted (§2.1 of Houtsma,
//! Apers & Schipper, ICDE 1993). [`Edge`] is exactly that tuple;
//! [`EdgeList`] is the relation; [`CsrGraph`] is the indexed form used by
//! the algorithms.
//!
//! ## Quick example
//!
//! ```
//! use ds_graph::{CsrGraph, Edge, NodeId};
//!
//! let edges = vec![
//!     Edge::new(NodeId(0), NodeId(1), 2),
//!     Edge::new(NodeId(1), NodeId(2), 3),
//! ];
//! let g = CsrGraph::from_edges(3, &edges);
//! let dist = ds_graph::dijkstra::single_source(&g, NodeId(0));
//! assert_eq!(dist.cost(NodeId(2)), Some(5));
//! ```

pub mod articulation;
pub mod bitset;
pub mod csr;
pub mod dijkstra;
pub mod edgelist;
pub mod error;
pub mod matrix;
pub mod reach;
pub mod scc;
pub mod subgraph;
pub mod traverse;
pub mod types;
pub mod unionfind;

pub use bitset::BitSet;
pub use csr::CsrGraph;
pub use dijkstra::{ScratchDijkstra, ScratchStats};
pub use edgelist::EdgeList;
pub use error::GraphError;
pub use matrix::AdjacencyMatrix;
pub use reach::ReachIndex;
pub use scc::Condensation;
pub use subgraph::SubgraphView;
pub use types::{Coord, Cost, Edge, NodeId, INFINITE_COST};
pub use unionfind::UnionFind;
