//! Dijkstra shortest paths (binary heap, non-negative integer costs).
//!
//! Used as: the per-fragment local evaluator (any "suitable
//! single-processor algorithm" may be chosen per §2.1), the global
//! baseline the disconnection set engine is validated against, and the
//! precomputation kernel for complementary information.
//!
//! Two forms are provided:
//!
//! * the one-shot functions [`single_source`] / [`multi_source`] /
//!   [`point_to_point`], which return an owned [`ShortestPaths`] tree —
//!   convenient, but each call allocates O(V);
//! * the reusable [`ScratchDijkstra`] kernel, whose generation-stamped
//!   arrays and heap persist across sweeps. Hot paths (per-query site
//!   subqueries, batch evaluation, update repair sweeps, the skeleton
//!   precompute) hold one scratch and run allocation-free in the steady
//!   state; [`ScratchStats`] counts reuse so tests can assert it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::types::{Cost, NodeId, INFINITE_COST};
use crate::CsrGraph;

/// Result of a single-source shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Cost>,
    /// `parent[v]` is the predecessor of `v` on a shortest path from the
    /// source, or `u32::MAX` if `v` is a seed / unreachable.
    parent: Vec<u32>,
}

impl ShortestPaths {
    /// A representative source node of this tree (for multi-seed sweeps,
    /// the last seed; every seed is a root of the forest).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost to `v`, or `None` if unreachable.
    pub fn cost(&self, v: NodeId) -> Option<Cost> {
        let d = self.dist[v.index()];
        (d < INFINITE_COST).then_some(d)
    }

    /// Raw distance array (`INFINITE_COST` marks unreachable).
    pub fn costs(&self) -> &[Cost] {
        &self.dist
    }

    /// The shortest path from the nearest seed to `v` as a node sequence
    /// (inclusive of both endpoints), or `None` if unreachable.
    ///
    /// For multi-seed sweeps the walk stops at whichever seed reached `v`
    /// cheapest — seeds are the parentless roots of the forest — not at
    /// the representative [`ShortestPaths::source`].
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[v.index()] >= INFINITE_COST {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        loop {
            let p = self.parent[cur.index()];
            if p == u32::MAX {
                break; // reached a seed
            }
            cur = NodeId(p);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Reuse accounting for a [`ScratchDijkstra`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Sweeps run on this scratch.
    pub sweeps: u64,
    /// Times the stamped arrays had to grow (0 growths between two
    /// readings = every sweep in between ran allocation-free).
    pub grows: u64,
}

impl ScratchStats {
    /// Accumulate another scratch's counters — aggregating a pool of
    /// per-worker kernels into one report.
    pub fn merge(&mut self, other: ScratchStats) {
        self.sweeps += other.sweeps;
        self.grows += other.grows;
    }
}

/// A reusable Dijkstra kernel: generation-stamped `dist`/`parent` arrays
/// plus a persistent binary heap.
///
/// Resetting between sweeps costs O(1) — the generation counter is bumped
/// and stale entries are simply ignored — so a scratch held across many
/// sweeps performs zero heap allocations once its arrays have grown to
/// the largest graph seen. [`ScratchDijkstra::sweep_to_targets`] adds a
/// target-set early exit: the sweep stops as soon as every target node is
/// settled, which is what fragment-local border sweeps and site
/// subqueries need.
#[derive(Clone, Debug, Default)]
pub struct ScratchDijkstra {
    dist: Vec<Cost>,
    parent: Vec<u32>,
    /// `dist[v]`/`parent[v]` are valid iff `stamp[v] == generation`.
    stamp: Vec<u32>,
    /// Target membership for the current sweep (same stamping scheme;
    /// cleared to 0 as each target settles).
    target_stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Reverse<(Cost, u32)>>,
    stats: ScratchStats,
}

impl ScratchDijkstra {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse accounting (sweeps run, array growths).
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Grow the arrays to cover `n` nodes and start a new generation.
    fn prepare(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.parent.resize(n, u32::MAX);
            self.stamp.resize(n, 0);
            self.target_stamp.resize(n, 0);
            self.stats.grows += 1;
        }
        if self.generation == u32::MAX {
            // Generation wrap: clear the stamps once, then restart.
            self.stamp.fill(0);
            self.target_stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
        self.stats.sweeps += 1;
    }

    /// Full sweep from the `(node, initial_cost)` seed frontier.
    pub fn sweep(&mut self, g: &CsrGraph, seeds: &[(NodeId, Cost)]) {
        self.sweep_inner(g, seeds, &[], false);
    }

    /// Sweep with early exit: stops as soon as every node of `targets`
    /// is settled (or the reachable set is exhausted). Costs and paths of
    /// the targets are final; other nodes may be left half-relaxed.
    pub fn sweep_to_targets(&mut self, g: &CsrGraph, seeds: &[(NodeId, Cost)], targets: &[NodeId]) {
        self.sweep_inner(g, seeds, targets, false);
    }

    /// Like [`ScratchDijkstra::sweep_to_targets`], but targets are
    /// *absorbing*: when one settles, its outgoing edges are not relaxed.
    /// The resulting target costs are the shortest distances over paths
    /// whose interior avoids every target — the building block of
    /// skeleton/overlay constructions, where paths *through* another
    /// border node are recovered by composition instead. Seeds must not
    /// appear in `targets` (a seed's own edges must expand).
    pub fn sweep_to_targets_absorbing(
        &mut self,
        g: &CsrGraph,
        seeds: &[(NodeId, Cost)],
        targets: &[NodeId],
    ) {
        self.sweep_inner(g, seeds, targets, true);
    }

    fn sweep_inner(
        &mut self,
        g: &CsrGraph,
        seeds: &[(NodeId, Cost)],
        targets: &[NodeId],
        absorbing: bool,
    ) {
        self.prepare(g.node_count());
        let gen = self.generation;
        let early_exit = !targets.is_empty();
        let mut remaining = 0usize;
        for &t in targets {
            let ti = t.index();
            if self.target_stamp[ti] != gen {
                self.target_stamp[ti] = gen;
                remaining += 1;
            }
        }
        for &(s, c) in seeds {
            let si = s.index();
            if self.stamp[si] != gen || c < self.dist[si] {
                self.stamp[si] = gen;
                self.dist[si] = c;
                self.parent[si] = u32::MAX;
                self.heap.push(Reverse((c, s.0)));
            }
        }
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let vi = v as usize;
            if d > self.dist[vi] {
                continue; // stale heap entry
            }
            if early_exit && self.target_stamp[vi] == gen {
                self.target_stamp[vi] = 0;
                remaining -= 1;
                if remaining == 0 {
                    break; // all targets settled; their entries are final
                }
                if absorbing {
                    continue; // settle the target but do not expand it
                }
            }
            for (t, w) in g.neighbors(NodeId(v)) {
                let ti = t.index();
                let nd = d + w;
                if self.stamp[ti] != gen || nd < self.dist[ti] {
                    self.stamp[ti] = gen;
                    self.dist[ti] = nd;
                    self.parent[ti] = v;
                    self.heap.push(Reverse((nd, t.0)));
                }
            }
        }
    }

    /// Cost to `v` in the latest sweep, or `None` if unreached.
    pub fn cost(&self, v: NodeId) -> Option<Cost> {
        let i = v.index();
        (i < self.dist.len() && self.stamp[i] == self.generation && self.dist[i] < INFINITE_COST)
            .then(|| self.dist[i])
    }

    /// Path from the nearest seed to `v` in the latest sweep. Only valid
    /// for nodes whose cost is final (any node after a full sweep; the
    /// targets after [`ScratchDijkstra::sweep_to_targets`]).
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.cost(v)?;
        let mut path = vec![v];
        let mut cur = v;
        loop {
            let p = self.parent[cur.index()];
            if p == u32::MAX {
                break;
            }
            cur = NodeId(p);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Snapshot the parent pointers of the latest sweep over nodes
    /// `0..n` (`u32::MAX` for seeds and unreached nodes). Parent chains
    /// of settled nodes are final even after an early-exited sweep —
    /// every parent points at a node settled earlier.
    pub fn snapshot_parents(&self, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| {
                if i < self.stamp.len() && self.stamp[i] == self.generation {
                    self.parent[i]
                } else {
                    u32::MAX
                }
            })
            .collect()
    }
}

/// Dijkstra from a single source over the whole graph.
pub fn single_source(g: &CsrGraph, src: NodeId) -> ShortestPaths {
    multi_source(g, &[(src, 0)])
}

/// Dijkstra seeded with several `(node, initial_cost)` pairs.
///
/// This is what a fragment subquery runs: the entry disconnection set is
/// the seed frontier, each border node carrying the best cost found so far
/// upstream ("disconnection sets act as some sort of keyhole", §2.2).
///
/// Deliberately a direct implementation rather than a throwaway
/// [`ScratchDijkstra`]: the one-shot form allocates exactly the two
/// arrays the returned tree owns.
pub fn multi_source(g: &CsrGraph, seeds: &[(NodeId, Cost)]) -> ShortestPaths {
    let n = g.node_count();
    let mut dist = vec![INFINITE_COST; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    let mut source = NodeId(0);
    for &(s, c) in seeds {
        if c < dist[s.index()] {
            dist[s.index()] = c;
            heap.push(Reverse((c, s.0)));
        }
        source = s; // representative source
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        let v = NodeId(v);
        if d > dist[v.index()] {
            continue; // stale heap entry
        }
        for (t, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                parent[t.index()] = v.0;
                heap.push(Reverse((nd, t.0)));
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Dijkstra with early exit: stops as soon as `dst` is settled.
/// Returns the cost, or `None` if unreachable.
pub fn point_to_point(g: &CsrGraph, src: NodeId, dst: NodeId) -> Option<Cost> {
    let n = g.node_count();
    let mut dist = vec![INFINITE_COST; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d, v))) = heap.pop() {
        let v = NodeId(v);
        if v == dst {
            return Some(d);
        }
        if d > dist[v.index()] {
            continue;
        }
        for (t, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                heap.push(Reverse((nd, t.0)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    /// Classic diamond: 0->1 (1), 0->2 (4), 1->2 (2), 1->3 (7), 2->3 (1).
    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(
            4,
            &[
                Edge::new(NodeId(0), NodeId(1), 1),
                Edge::new(NodeId(0), NodeId(2), 4),
                Edge::new(NodeId(1), NodeId(2), 2),
                Edge::new(NodeId(1), NodeId(3), 7),
                Edge::new(NodeId(2), NodeId(3), 1),
            ],
        )
    }

    #[test]
    fn single_source_costs() {
        let sp = single_source(&diamond(), NodeId(0));
        assert_eq!(sp.cost(NodeId(0)), Some(0));
        assert_eq!(sp.cost(NodeId(1)), Some(1));
        assert_eq!(sp.cost(NodeId(2)), Some(3)); // via 1, not direct 4
        assert_eq!(sp.cost(NodeId(3)), Some(4)); // 0-1-2-3
    }

    #[test]
    fn path_reconstruction() {
        let sp = single_source(&diamond(), NodeId(0));
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(sp.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn unreachable_is_none() {
        let g = CsrGraph::from_edges(3, &[Edge::new(NodeId(0), NodeId(1), 1)]);
        let sp = single_source(&g, NodeId(0));
        assert_eq!(sp.cost(NodeId(2)), None);
        assert_eq!(sp.path_to(NodeId(2)), None);
        assert_eq!(point_to_point(&g, NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn point_to_point_matches_single_source() {
        let g = diamond();
        for dst in 0..4u32 {
            assert_eq!(
                point_to_point(&g, NodeId(0), NodeId(dst)),
                single_source(&g, NodeId(0)).cost(NodeId(dst))
            );
        }
    }

    #[test]
    fn multi_source_takes_best_seed() {
        let g = diamond();
        // Seed node 1 with cost 10 and node 2 with cost 0: node 3 should be
        // reached via node 2 at cost 1.
        let sp = multi_source(&g, &[(NodeId(1), 10), (NodeId(2), 0)]);
        assert_eq!(sp.cost(NodeId(3)), Some(1));
        assert_eq!(sp.cost(NodeId(1)), Some(10));
    }

    #[test]
    fn multi_source_duplicate_seeds_keep_min() {
        let g = diamond();
        let sp = multi_source(&g, &[(NodeId(0), 5), (NodeId(0), 2)]);
        assert_eq!(sp.cost(NodeId(0)), Some(2));
        assert_eq!(sp.cost(NodeId(3)), Some(6));
    }

    /// Regression: `path_to` for a node reached from a seed other than
    /// the representative source must stop at *that* seed instead of
    /// walking past a `u32::MAX` parent.
    #[test]
    fn multi_source_path_stops_at_nearest_seed() {
        let g = diamond();
        // Representative source is the last seed (node 1, cost 10), but
        // node 3 is reached from seed 2 at cost 1.
        let sp = multi_source(&g, &[(NodeId(2), 0), (NodeId(1), 10)]);
        assert_eq!(sp.source(), NodeId(1));
        assert_eq!(sp.cost(NodeId(3)), Some(1));
        assert_eq!(sp.path_to(NodeId(3)).unwrap(), vec![NodeId(2), NodeId(3)]);
        // A seed is its own (single-node) path.
        assert_eq!(sp.path_to(NodeId(2)).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let g = CsrGraph::from_edges(
            3,
            &[
                Edge::new(NodeId(0), NodeId(1), 0),
                Edge::new(NodeId(1), NodeId(2), 0),
            ],
        );
        let sp = single_source(&g, NodeId(0));
        assert_eq!(sp.cost(NodeId(2)), Some(0));
    }

    #[test]
    fn scratch_matches_one_shot_across_reuses() {
        let g = diamond();
        let mut scratch = ScratchDijkstra::new();
        for src in 0..4u32 {
            scratch.sweep(&g, &[(NodeId(src), 0)]);
            let sp = single_source(&g, NodeId(src));
            for v in 0..4u32 {
                assert_eq!(scratch.cost(NodeId(v)), sp.cost(NodeId(v)), "{src}->{v}");
                assert_eq!(
                    scratch.path_to(NodeId(v)),
                    sp.path_to(NodeId(v)),
                    "{src}->{v}"
                );
            }
        }
        let stats = scratch.stats();
        assert_eq!(stats.sweeps, 4);
        assert_eq!(stats.grows, 1, "arrays grow once, then are reused");
    }

    #[test]
    fn scratch_early_exit_settles_targets() {
        let g = diamond();
        let mut scratch = ScratchDijkstra::new();
        scratch.sweep_to_targets(&g, &[(NodeId(0), 0)], &[NodeId(1), NodeId(2)]);
        assert_eq!(scratch.cost(NodeId(1)), Some(1));
        assert_eq!(scratch.cost(NodeId(2)), Some(3));
        assert_eq!(
            scratch.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        // Unreachable target: the sweep exhausts and reports None.
        let h = CsrGraph::from_edges(3, &[Edge::unit(NodeId(0), NodeId(1))]);
        scratch.sweep_to_targets(&h, &[(NodeId(0), 0)], &[NodeId(2)]);
        assert_eq!(scratch.cost(NodeId(2)), None);
        // The previous generation's entries are invisible now.
        assert_eq!(scratch.cost(NodeId(1)), Some(1));
    }

    #[test]
    fn scratch_shrinking_graphs_reuse_arrays() {
        let big = diamond();
        let small = CsrGraph::from_edges(2, &[Edge::unit(NodeId(0), NodeId(1))]);
        let mut scratch = ScratchDijkstra::new();
        scratch.sweep(&big, &[(NodeId(0), 0)]);
        scratch.sweep(&small, &[(NodeId(0), 0)]);
        assert_eq!(scratch.cost(NodeId(1)), Some(1));
        assert_eq!(scratch.stats().grows, 1, "smaller graph reuses arrays");
        // Entries of the bigger graph's generation are invisible now.
        assert_eq!(scratch.cost(NodeId(3)), None);
        assert_eq!(scratch.snapshot_parents(2), vec![u32::MAX, 0]);
    }
}
