//! Dijkstra shortest paths (binary heap, non-negative integer costs).
//!
//! Used as: the per-fragment local evaluator (any "suitable
//! single-processor algorithm" may be chosen per §2.1), the global
//! baseline the disconnection set engine is validated against, and the
//! precomputation kernel for complementary information.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::types::{Cost, NodeId, INFINITE_COST};
use crate::CsrGraph;

/// Result of a single-source shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Cost>,
    /// `parent[v]` is the predecessor of `v` on a shortest path from the
    /// source, or `u32::MAX` if `v` is the source / unreachable.
    parent: Vec<u32>,
}

impl ShortestPaths {
    /// The source node this tree is rooted at.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost to `v`, or `None` if unreachable.
    pub fn cost(&self, v: NodeId) -> Option<Cost> {
        let d = self.dist[v.index()];
        (d < INFINITE_COST).then_some(d)
    }

    /// Raw distance array (`INFINITE_COST` marks unreachable).
    pub fn costs(&self) -> &[Cost] {
        &self.dist
    }

    /// The shortest path from the source to `v` as a node sequence
    /// (inclusive of both endpoints), or `None` if unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[v.index()] >= INFINITE_COST {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            let p = self.parent[cur.index()];
            debug_assert_ne!(p, u32::MAX, "reachable node must have a parent");
            cur = NodeId(p);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra from a single source over the whole graph.
pub fn single_source(g: &CsrGraph, src: NodeId) -> ShortestPaths {
    multi_source(g, &[(src, 0)])
}

/// Dijkstra seeded with several `(node, initial_cost)` pairs.
///
/// This is what a fragment subquery runs: the entry disconnection set is
/// the seed frontier, each border node carrying the best cost found so far
/// upstream ("disconnection sets act as some sort of keyhole", §2.2).
pub fn multi_source(g: &CsrGraph, seeds: &[(NodeId, Cost)]) -> ShortestPaths {
    let n = g.node_count();
    let mut dist = vec![INFINITE_COST; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    let mut source = NodeId(0);
    for &(s, c) in seeds {
        if c < dist[s.index()] {
            dist[s.index()] = c;
            heap.push(Reverse((c, s.0)));
        }
        source = s; // representative source for path reconstruction roots
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        let v = NodeId(v);
        if d > dist[v.index()] {
            continue; // stale heap entry
        }
        for (t, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                parent[t.index()] = v.0;
                heap.push(Reverse((nd, t.0)));
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Dijkstra with early exit: stops as soon as `dst` is settled.
/// Returns the cost, or `None` if unreachable.
pub fn point_to_point(g: &CsrGraph, src: NodeId, dst: NodeId) -> Option<Cost> {
    let n = g.node_count();
    let mut dist = vec![INFINITE_COST; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d, v))) = heap.pop() {
        let v = NodeId(v);
        if v == dst {
            return Some(d);
        }
        if d > dist[v.index()] {
            continue;
        }
        for (t, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                heap.push(Reverse((nd, t.0)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    /// Classic diamond: 0->1 (1), 0->2 (4), 1->2 (2), 1->3 (7), 2->3 (1).
    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(
            4,
            &[
                Edge::new(NodeId(0), NodeId(1), 1),
                Edge::new(NodeId(0), NodeId(2), 4),
                Edge::new(NodeId(1), NodeId(2), 2),
                Edge::new(NodeId(1), NodeId(3), 7),
                Edge::new(NodeId(2), NodeId(3), 1),
            ],
        )
    }

    #[test]
    fn single_source_costs() {
        let sp = single_source(&diamond(), NodeId(0));
        assert_eq!(sp.cost(NodeId(0)), Some(0));
        assert_eq!(sp.cost(NodeId(1)), Some(1));
        assert_eq!(sp.cost(NodeId(2)), Some(3)); // via 1, not direct 4
        assert_eq!(sp.cost(NodeId(3)), Some(4)); // 0-1-2-3
    }

    #[test]
    fn path_reconstruction() {
        let sp = single_source(&diamond(), NodeId(0));
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(sp.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn unreachable_is_none() {
        let g = CsrGraph::from_edges(3, &[Edge::new(NodeId(0), NodeId(1), 1)]);
        let sp = single_source(&g, NodeId(0));
        assert_eq!(sp.cost(NodeId(2)), None);
        assert_eq!(sp.path_to(NodeId(2)), None);
        assert_eq!(point_to_point(&g, NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn point_to_point_matches_single_source() {
        let g = diamond();
        for dst in 0..4u32 {
            assert_eq!(
                point_to_point(&g, NodeId(0), NodeId(dst)),
                single_source(&g, NodeId(0)).cost(NodeId(dst))
            );
        }
    }

    #[test]
    fn multi_source_takes_best_seed() {
        let g = diamond();
        // Seed node 1 with cost 10 and node 2 with cost 0: node 3 should be
        // reached via node 2 at cost 1.
        let sp = multi_source(&g, &[(NodeId(1), 10), (NodeId(2), 0)]);
        assert_eq!(sp.cost(NodeId(3)), Some(1));
        assert_eq!(sp.cost(NodeId(1)), Some(10));
    }

    #[test]
    fn multi_source_duplicate_seeds_keep_min() {
        let g = diamond();
        let sp = multi_source(&g, &[(NodeId(0), 5), (NodeId(0), 2)]);
        assert_eq!(sp.cost(NodeId(0)), Some(2));
        assert_eq!(sp.cost(NodeId(3)), Some(6));
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let g = CsrGraph::from_edges(
            3,
            &[
                Edge::new(NodeId(0), NodeId(1), 0),
                Edge::new(NodeId(1), NodeId(2), 0),
            ],
        );
        let sp = single_source(&g, NodeId(0));
        assert_eq!(sp.cost(NodeId(2)), Some(0));
    }
}
