//! Breadth-first traversals and the structural measures built on them:
//! hop distances, reachability, connected components, eccentricity and
//! diameter.
//!
//! The paper uses the *diameter* as the iteration bound of semi-naive
//! transitive closure ("the number of iterations required before reaching
//! a fixpoint is given by the maximum diameter of the graph", §2.1) and as
//! the workload proxy of the center-based algorithm (§3.1).

use std::collections::VecDeque;

use crate::bitset::BitSet;
use crate::types::NodeId;
use crate::unionfind::UnionFind;
use crate::CsrGraph;

/// Hop distance (unweighted BFS) from `src` to every node.
/// `u32::MAX` marks unreachable nodes.
pub fn hop_distances(g: &CsrGraph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &t in g.out_targets(v) {
            if dist[t.index()] == u32::MAX {
                dist[t.index()] = dv + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// The set of nodes reachable from `src` (including `src` itself).
pub fn reachable_set(g: &CsrGraph, src: NodeId) -> BitSet {
    let mut seen = BitSet::new(g.node_count());
    let mut stack = vec![src];
    seen.insert(src.index());
    while let Some(v) = stack.pop() {
        for &t in g.out_targets(v) {
            if !seen.contains(t.index()) {
                seen.insert(t.index());
                stack.push(t);
            }
        }
    }
    seen
}

/// Whether `dst` can be reached from `src` by directed edges.
pub fn is_reachable(g: &CsrGraph, src: NodeId, dst: NodeId) -> bool {
    if src == dst {
        return true;
    }
    let mut seen = BitSet::new(g.node_count());
    let mut stack = vec![src];
    seen.insert(src.index());
    while let Some(v) = stack.pop() {
        for &t in g.out_targets(v) {
            if t == dst {
                return true;
            }
            if !seen.contains(t.index()) {
                seen.insert(t.index());
                stack.push(t);
            }
        }
    }
    false
}

/// Weakly connected components (edges treated as undirected).
/// Returns `(component_id_per_node, component_count)`.
pub fn weak_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let mut uf = UnionFind::new(g.node_count());
    for e in g.edges() {
        uf.union(e.src.index(), e.dst.index());
    }
    let mut label = vec![u32::MAX; g.node_count()];
    let mut next = 0u32;
    for v in 0..g.node_count() {
        let root = uf.find(v);
        if label[root] == u32::MAX {
            label[root] = next;
            next += 1;
        }
        label[v] = label[root];
    }
    (label, next as usize)
}

/// Eccentricity of `src`: the maximum finite hop distance from it.
/// Unreachable nodes are ignored (so this is the eccentricity within the
/// reachable component).
pub fn eccentricity(g: &CsrGraph, src: NodeId) -> u32 {
    hop_distances(g, src)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Exact diameter in hops: max over all nodes of [`eccentricity`].
///
/// O(V·(V+E)) — acceptable for the paper's graph sizes (≤ a few hundred
/// nodes). The paper uses the diameter both as the fixpoint iteration
/// bound and as a fragment workload measure.
pub fn diameter(g: &CsrGraph) -> u32 {
    g.nodes().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Double-sweep lower bound on the diameter: BFS from `seed`, then BFS
/// from the farthest node found. Exact on trees; a fast, good lower bound
/// in general. Used where the exact diameter would dominate runtime.
pub fn diameter_double_sweep(g: &CsrGraph, seed: NodeId) -> u32 {
    let d1 = hop_distances(g, seed);
    let far = d1
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| NodeId::from_index(i))
        .unwrap_or(seed);
    eccentricity(g, far)
}

/// Sum of grades of nodes at exactly `d` hops from `i`, for d = 1..=depth:
/// the Σ nb(j, d) terms of the center-based status score (§3.1).
pub fn grade_sums_by_distance(g: &CsrGraph, i: NodeId, depth: u32) -> Vec<u64> {
    let dist = hop_distances(g, i);
    let mut sums = vec![0u64; depth as usize];
    for v in g.nodes() {
        let d = dist[v.index()];
        if d >= 1 && d <= depth {
            sums[(d - 1) as usize] += g.out_degree(v) as u64;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    /// 0 - 1 - 2 - 3 path (symmetric), plus isolated node 4.
    fn path4() -> CsrGraph {
        let mut edges = Vec::new();
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3)] {
            edges.push(Edge::unit(NodeId(a), NodeId(b)));
            edges.push(Edge::unit(NodeId(b), NodeId(a)));
        }
        CsrGraph::from_edges(5, &edges)
    }

    #[test]
    fn hop_distances_on_path() {
        let g = path4();
        let d = hop_distances(&g, NodeId(0));
        assert_eq!(&d[..4], &[0, 1, 2, 3]);
        assert_eq!(d[4], u32::MAX, "isolated node unreachable");
    }

    #[test]
    fn reachability() {
        let g = path4();
        assert!(is_reachable(&g, NodeId(0), NodeId(3)));
        assert!(is_reachable(&g, NodeId(3), NodeId(0)));
        assert!(!is_reachable(&g, NodeId(0), NodeId(4)));
        assert!(
            is_reachable(&g, NodeId(4), NodeId(4)),
            "trivially reachable from self"
        );
        let set = reachable_set(&g, NodeId(1));
        assert_eq!(set.count_ones(), 4);
        assert!(!set.contains(4));
    }

    #[test]
    fn directed_reachability_is_one_way() {
        let g = CsrGraph::from_edges(2, &[Edge::unit(NodeId(0), NodeId(1))]);
        assert!(is_reachable(&g, NodeId(0), NodeId(1)));
        assert!(!is_reachable(&g, NodeId(1), NodeId(0)));
    }

    #[test]
    fn components() {
        let g = path4();
        let (labels, count) = weak_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn diameter_of_path_is_length() {
        let g = path4();
        assert_eq!(diameter(&g), 3);
        assert_eq!(eccentricity(&g, NodeId(1)), 2);
        assert_eq!(
            diameter_double_sweep(&g, NodeId(1)),
            3,
            "double sweep exact on trees"
        );
    }

    #[test]
    fn diameter_of_empty_and_singleton() {
        assert_eq!(diameter(&CsrGraph::from_edges(0, &[])), 0);
        assert_eq!(diameter(&CsrGraph::from_edges(1, &[])), 0);
    }

    #[test]
    fn grade_sums_match_hand_computation() {
        let g = path4();
        // From node 0: d=1 -> node 1 (grade 2); d=2 -> node 2 (grade 2);
        // d=3 -> node 3 (grade 1).
        let sums = grade_sums_by_distance(&g, NodeId(0), 3);
        assert_eq!(sums, vec![2, 2, 1]);
    }
}
