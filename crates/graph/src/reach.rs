//! Near-constant-time reachability over the SCC condensation.
//!
//! A `connected(x, y)` query only wants a boolean, but the shortest-path
//! machinery answers it at Dijkstra-grade cost. [`ReachIndex`] answers it
//! from a **chain-decomposition index** over the condensation DAG, per
//! Kritikakis & Tollis ("Parameterized Linear Time Transitive Closure"):
//!
//! 1. condense to the SCC DAG ([`crate::scc`]) — inside one component,
//!    everything reaches everything, so a query between two nodes of the
//!    same component is a single u32 comparison;
//! 2. decompose the DAG's *edge-incident* components into greedy chains
//!    (paths in the DAG, walked in topological order) — components with
//!    no incident DAG edge (the dominant case for symmetric graphs, where
//!    every connected component is one SCC) need no chain at all;
//! 3. a reverse-topological DP gives each component a sparse row of
//!    `(chain, min-position)` pairs: the component reaches exactly the
//!    members of `chain` at positions `>= min-position` (sound because a
//!    chain is a DAG path — each element reaches all later ones).
//!
//! A query is then one comparison plus at most one binary search in a row
//! whose length is bounded by the chain count. Everything is u32-packed:
//! the index for a million-node graph is a handful of flat `Vec<u32>`s
//! ([`ReachIndex::memory_bytes`] reports the exact footprint).
//!
//! The index describes one immutable graph. Callers that maintain graphs
//! incrementally keep it across updates that provably cannot change
//! reachability — [`ReachIndex::edge_is_redundant`] decides that for
//! insertions (an edge inside the already-reachable relation adds no
//! pairs); removals keep it only when a parallel connection survives —
//! and rebuild (linear time) otherwise.

use crate::csr::CsrGraph;
use crate::scc::{condense, Condensation};
use crate::types::NodeId;

/// Sentinel chain id for components with no incident DAG edge.
const NO_CHAIN: u32 = u32::MAX;

/// Chain-decomposition reachability index over the SCC condensation of
/// one [`CsrGraph`]. Immutable after [`ReachIndex::build`]; all queries
/// are `&self` and allocation-free.
#[derive(Clone, Debug)]
pub struct ReachIndex {
    /// Node → component id (topological: DAG edges go low → high).
    comp_of: Vec<u32>,
    /// Component → chain id (`NO_CHAIN` for edge-free components).
    chain_of: Vec<u32>,
    /// Component → position on its chain.
    pos_of: Vec<u32>,
    /// Component → start of its reachability row in the flat pools.
    row_start: Vec<u32>,
    /// Component → length of its reachability row.
    row_len: Vec<u32>,
    /// Flat row pool: chain ids, sorted ascending within each row.
    row_chains: Vec<u32>,
    /// Flat row pool: minimal reached position per chain (parallel to
    /// `row_chains`).
    row_pos: Vec<u32>,
    chain_count: u32,
}

impl ReachIndex {
    /// Build the index for `graph`: condensation, chain decomposition,
    /// and the reverse-topological row DP. O(V + E + chains · DAG edges).
    pub fn build(graph: &CsrGraph) -> ReachIndex {
        Self::from_condensation(condense(graph))
    }

    fn from_condensation(cond: Condensation) -> ReachIndex {
        let k = cond.comp_count();

        // A component matters to the chain machinery only if some DAG
        // edge touches it; everything else answers by component equality.
        let mut active = vec![false; k];
        for c in 0..k as u32 {
            for &d in cond.dag_successors(c) {
                active[c as usize] = true;
                active[d as usize] = true;
            }
        }

        // Greedy path decomposition in topological order: start a chain
        // at the first unassigned active component, extend through any
        // unassigned DAG successor. Each chain is a path in the DAG.
        let mut chain_of = vec![NO_CHAIN; k];
        let mut pos_of = vec![0u32; k];
        let mut chain_count = 0u32;
        for c in 0..k {
            if !active[c] || chain_of[c] != NO_CHAIN {
                continue;
            }
            let mut cur = c as u32;
            let mut pos = 0u32;
            chain_of[c] = chain_count;
            while let Some(&next) = cond
                .dag_successors(cur)
                .iter()
                .find(|&&d| chain_of[d as usize] == NO_CHAIN)
            {
                pos += 1;
                chain_of[next as usize] = chain_count;
                pos_of[next as usize] = pos;
                cur = next;
            }
            chain_count += 1;
        }

        // Reverse-topological DP: a component's row is the min-merge of
        // each successor's own (chain, pos) plus that successor's row.
        let mut row_start = vec![0u32; k];
        let mut row_len = vec![0u32; k];
        let mut row_chains: Vec<u32> = Vec::new();
        let mut row_pos: Vec<u32> = Vec::new();
        let mut tmp: Vec<(u32, u32)> = Vec::new();
        for c in (0..k).rev() {
            tmp.clear();
            for &d in cond.dag_successors(c as u32) {
                let d = d as usize;
                tmp.push((chain_of[d], pos_of[d]));
                let (s, l) = (row_start[d] as usize, row_len[d] as usize);
                for i in s..s + l {
                    tmp.push((row_chains[i], row_pos[i]));
                }
            }
            if tmp.is_empty() {
                continue;
            }
            // Ascending sort puts the minimal position first per chain.
            tmp.sort_unstable();
            let start = row_chains.len();
            let mut last = NO_CHAIN;
            for &(ch, p) in tmp.iter() {
                if ch != last {
                    row_chains.push(ch);
                    row_pos.push(p);
                    last = ch;
                }
            }
            row_start[c] = start as u32;
            row_len[c] = (row_chains.len() - start) as u32;
        }

        ReachIndex {
            comp_of: cond.comp_of().to_vec(),
            chain_of,
            pos_of,
            row_start,
            row_len,
            row_chains,
            row_pos,
            chain_count,
        }
    }

    /// True iff a path `x -> y` exists in the indexed graph. `x == y` is
    /// always reachable (zero-length path), matching `connected`.
    #[inline]
    pub fn reaches(&self, x: NodeId, y: NodeId) -> bool {
        let cx = self.comp_of[x.index()];
        let cy = self.comp_of[y.index()];
        if cx == cy {
            return true;
        }
        let target_chain = self.chain_of[cy as usize];
        if target_chain == NO_CHAIN {
            // `y`'s component has no incoming DAG edge at all.
            return false;
        }
        let (s, l) = (
            self.row_start[cx as usize] as usize,
            self.row_len[cx as usize] as usize,
        );
        match self.row_chains[s..s + l].binary_search(&target_chain) {
            Ok(i) => self.row_pos[s + i] <= self.pos_of[cy as usize],
            Err(_) => false,
        }
    }

    /// True iff `x` and `y` are in the same strongly connected component.
    #[inline]
    pub fn same_component(&self, x: NodeId, y: NodeId) -> bool {
        self.comp_of[x.index()] == self.comp_of[y.index()]
    }

    /// True iff inserting an edge `src -> dst` cannot change the
    /// reachability relation — i.e. the index already answers `src`
    /// reaches `dst` (for a symmetric insertion, check both directions).
    #[inline]
    pub fn edge_is_redundant(&self, src: NodeId, dst: NodeId) -> bool {
        self.reaches(src, dst)
    }

    /// Number of nodes the index was built over.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.comp_of.len()
    }

    /// Number of strongly connected components.
    #[inline]
    pub fn comp_count(&self) -> usize {
        self.chain_of.len()
    }

    /// Number of chains in the decomposition (0 for an edge-free DAG —
    /// e.g. any symmetric graph, whose components are all mutually
    /// unreachable).
    #[inline]
    pub fn chain_count(&self) -> usize {
        self.chain_count as usize
    }

    /// Total `(chain, position)` entries across all rows.
    #[inline]
    pub fn row_entries(&self) -> usize {
        self.row_chains.len()
    }

    /// Exact heap footprint of the index's flat pools, in bytes.
    pub fn memory_bytes(&self) -> usize {
        4 * (self.comp_of.len()
            + self.chain_of.len()
            + self.pos_of.len()
            + self.row_start.len()
            + self.row_len.len()
            + self.row_chains.len()
            + self.row_pos.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn graph(nodes: usize, edges: &[(u32, u32)]) -> CsrGraph {
        let e: Vec<Edge> = edges.iter().map(|&(a, b)| Edge::unit(n(a), n(b))).collect();
        CsrGraph::from_edges(nodes, &e)
    }

    /// Plain DFS reachability oracle.
    fn oracle(g: &CsrGraph, x: NodeId, y: NodeId) -> bool {
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![x];
        seen[x.index()] = true;
        while let Some(v) = stack.pop() {
            if v == y {
                return true;
            }
            for &w in g.out_targets(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    fn check_all_pairs(g: &CsrGraph) {
        let idx = ReachIndex::build(g);
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    idx.reaches(x, y),
                    oracle(g, x, y),
                    "reaches({x}, {y}) disagrees with DFS"
                );
            }
        }
    }

    #[test]
    fn path_cycle_and_diamond() {
        check_all_pairs(&graph(4, &[(0, 1), (1, 2), (2, 3)]));
        check_all_pairs(&graph(3, &[(0, 1), (1, 2), (2, 0)]));
        check_all_pairs(&graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
    }

    #[test]
    fn sccs_with_cross_edges_and_stragglers() {
        check_all_pairs(&graph(
            8,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (5, 2),
                (6, 6),
                // 7 isolated
            ],
        ));
    }

    #[test]
    fn symmetric_graph_needs_no_chains() {
        // Two undirected components: {0,1,2} and {3,4}.
        let g = graph(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]);
        let idx = ReachIndex::build(&g);
        assert_eq!(idx.chain_count(), 0, "edge-free DAG: no chains");
        assert_eq!(idx.row_entries(), 0);
        assert!(idx.reaches(n(0), n(2)));
        assert!(!idx.reaches(n(0), n(3)));
        assert!(idx.same_component(n(3), n(4)));
    }

    #[test]
    fn randomized_against_dfs_oracle() {
        // Deterministic xorshift sweep over sparse random digraphs.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let nodes = 6 + (trial % 14);
            let edges: Vec<(u32, u32)> = (0..nodes * 2)
                .map(|_| {
                    (
                        (next() % nodes as u64) as u32,
                        (next() % nodes as u64) as u32,
                    )
                })
                .collect();
            check_all_pairs(&graph(nodes, &edges));
        }
    }

    #[test]
    fn redundant_edge_detection() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let idx = ReachIndex::build(&g);
        assert!(idx.edge_is_redundant(n(0), n(3)), "0 already reaches 3");
        assert!(
            !idx.edge_is_redundant(n(3), n(0)),
            "3 -> 0 would close a cycle"
        );
    }

    #[test]
    fn memory_is_u32_lean() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let idx = ReachIndex::build(&g);
        // 4 nodes, 4 comps: comp_of + chain_of + pos_of + start + len
        // = 5 * 4 u32s, plus the row pools.
        assert_eq!(
            idx.memory_bytes(),
            4 * (5 * 4 + 2 * idx.row_entries()),
            "footprint formula drifted"
        );
        assert!(idx.memory_bytes() < 256);
    }

    #[test]
    fn empty_and_single_node() {
        let g = graph(0, &[]);
        let idx = ReachIndex::build(&g);
        assert_eq!(idx.comp_count(), 0);
        let g = graph(1, &[]);
        let idx = ReachIndex::build(&g);
        assert!(idx.reaches(n(0), n(0)), "self-reachability");
    }
}
