//! Error type shared by graph construction and validation.

use std::fmt;

use crate::types::NodeId;

/// Errors raised by graph construction and validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An edge references a node id `>= node_count`.
    NodeOutOfRange { node: NodeId, node_count: usize },
    /// A coordinate table was supplied whose length differs from the
    /// graph's node count.
    CoordLengthMismatch { coords: usize, node_count: usize },
    /// An operation that requires coordinates was called on a graph
    /// without them (e.g. the linear fragmentation sweep, §3.3).
    MissingCoordinates,
    /// An empty graph was supplied where at least one node is required.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "edge references node {node} but the graph has {node_count} nodes"
                )
            }
            GraphError::CoordLengthMismatch { coords, node_count } => {
                write!(
                    f,
                    "coordinate table has {coords} entries for {node_count} nodes"
                )
            }
            GraphError::MissingCoordinates => {
                write!(
                    f,
                    "operation requires node coordinates but the graph has none"
                )
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("node 9"));
        assert!(e.to_string().contains("5 nodes"));
        let e = GraphError::CoordLengthMismatch {
            coords: 3,
            node_count: 5,
        };
        assert!(e.to_string().contains("3 entries"));
        assert!(GraphError::MissingCoordinates
            .to_string()
            .contains("coordinates"));
        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
    }
}
