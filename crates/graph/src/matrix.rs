//! Adjacency-matrix representations and matrix-based closure kernels.
//!
//! The bond-energy algorithm (§3.2) "uses an adjacency-matrix to denote
//! the graph being fragmented"; [`AdjacencyMatrix`] is that structure,
//! with rows stored as bit sets so column inner products are popcounts.
//! The same representation gives a word-parallel Warshall transitive
//! closure and a Floyd–Warshall all-pairs cost matrix, both used as exact
//! baselines.

use crate::bitset::BitSet;
use crate::types::{Cost, NodeId, INFINITE_COST};
use crate::CsrGraph;

/// A square 0/1 adjacency matrix with bitset rows.
///
/// As in the paper, `M[i][j] = 1` iff a direct connection `i -> j` exists,
/// and the diagonal is set to 1 on construction ("Each entry M[i,i] is
/// also made 1", §3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct AdjacencyMatrix {
    n: usize,
    rows: Vec<BitSet>,
}

impl AdjacencyMatrix {
    /// All-zero matrix (no implicit diagonal).
    pub fn zero(n: usize) -> Self {
        AdjacencyMatrix {
            n,
            rows: vec![BitSet::new(n); n],
        }
    }

    /// Build from a graph, setting the diagonal as the paper prescribes.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.node_count();
        let mut m = AdjacencyMatrix::zero(n);
        for i in 0..n {
            m.rows[i].insert(i);
        }
        for e in g.edges() {
            m.rows[e.src.index()].insert(e.dst.index());
        }
        m
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i].contains(j)
    }

    /// Set entry `(i, j)` to 1.
    pub fn set(&mut self, i: usize, j: usize) {
        self.rows[i].insert(j);
    }

    /// Row `i` as a bit set.
    pub fn row(&self, i: usize) -> &BitSet {
        &self.rows[i]
    }

    /// Column `j` extracted as a bit set (O(n)).
    pub fn column(&self, j: usize) -> BitSet {
        let mut col = BitSet::new(self.n);
        for i in 0..self.n {
            if self.rows[i].contains(j) {
                col.insert(i);
            }
        }
        col
    }

    /// Inner product of columns `j` and `k`:
    /// `Σ_i M[i,j] · M[i,k]` — the affinity measure the bond-energy
    /// placement maximizes (§3.2).
    pub fn column_inner_product(&self, j: usize, k: usize) -> usize {
        let mut sum = 0;
        for i in 0..self.n {
            if self.rows[i].contains(j) && self.rows[i].contains(k) {
                sum += 1;
            }
        }
        sum
    }

    /// The matrix with rows and columns symmetrically permuted:
    /// `out[i][j] = self[perm[i]][perm[j]]`. This is the "reordering"
    /// step of the bond-energy algorithm.
    pub fn permuted(&self, perm: &[usize]) -> AdjacencyMatrix {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut out = AdjacencyMatrix::zero(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                if self.get(perm[i], perm[j]) {
                    out.set(i, j);
                }
            }
        }
        out
    }

    /// In-place Warshall transitive closure, word-parallel:
    /// `row[i] |= row[k]` whenever `M[i][k]`. O(n² · n/64).
    pub fn close_transitively(&mut self) {
        for k in 0..self.n {
            let row_k = self.rows[k].clone();
            for i in 0..self.n {
                if i != k && self.rows[i].contains(k) {
                    self.rows[i].union_with(&row_k);
                }
            }
        }
    }
}

/// All-pairs shortest path costs by Floyd–Warshall.
///
/// Exact baseline for small graphs and for the final "very small relation"
/// assembly checks. `result[i][j] == INFINITE_COST` means unreachable;
/// `result[i][i] == 0`.
pub fn floyd_warshall(g: &CsrGraph) -> Vec<Vec<Cost>> {
    let n = g.node_count();
    let mut d = vec![vec![INFINITE_COST; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for e in g.edges() {
        let (i, j) = (e.src.index(), e.dst.index());
        if e.cost < d[i][j] {
            d[i][j] = e.cost;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i][k];
            if dik >= INFINITE_COST {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // d[i][j] and d[k][j] in lockstep
            for j in 0..n {
                let cand = dik + d[k][j];
                if cand < d[i][j] {
                    d[i][j] = cand;
                }
            }
        }
    }
    d
}

/// Reachability closure as a boolean matrix (diagonal true), via the
/// word-parallel Warshall kernel.
pub fn reachability_closure(g: &CsrGraph) -> AdjacencyMatrix {
    let mut m = AdjacencyMatrix::from_graph(g);
    m.close_transitively();
    m
}

/// Count reachable ordered pairs `(i, j)`, `i != j` — the size of the
/// transitive closure relation (diagonal excluded).
pub fn closure_cardinality(g: &CsrGraph) -> usize {
    let m = reachability_closure(g);
    let n = m.order();
    let mut count = 0;
    for i in 0..n {
        count += m.row(i).count_ones();
    }
    count - n // remove the diagonal
}

/// Convenience: shortest-path cost between two nodes out of a
/// Floyd–Warshall table, as `Option`.
pub fn fw_cost(table: &[Vec<Cost>], src: NodeId, dst: NodeId) -> Option<Cost> {
    let d = table[src.index()][dst.index()];
    (d < INFINITE_COST).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::types::Edge;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(
            4,
            &[
                Edge::new(NodeId(0), NodeId(1), 1),
                Edge::new(NodeId(0), NodeId(2), 4),
                Edge::new(NodeId(1), NodeId(2), 2),
                Edge::new(NodeId(1), NodeId(3), 7),
                Edge::new(NodeId(2), NodeId(3), 1),
            ],
        )
    }

    #[test]
    fn from_graph_sets_diagonal() {
        let m = AdjacencyMatrix::from_graph(&diamond());
        for i in 0..4 {
            assert!(m.get(i, i), "diagonal must be 1 (paper §3.2)");
        }
        assert!(m.get(0, 1));
        assert!(!m.get(1, 0), "directed edge only");
    }

    #[test]
    fn column_inner_product_matches_definition() {
        let m = AdjacencyMatrix::from_graph(&diamond());
        // Explicit double loop definition.
        for j in 0..4 {
            for k in 0..4 {
                let brute: usize = (0..4).filter(|&i| m.get(i, j) && m.get(i, k)).count();
                assert_eq!(m.column_inner_product(j, k), brute);
                assert_eq!(m.column(j).intersection_count(&m.column(k)), brute);
            }
        }
    }

    #[test]
    fn permutation_is_symmetric_relabeling() {
        let m = AdjacencyMatrix::from_graph(&diamond());
        let perm = vec![3, 2, 1, 0];
        let p = m.permuted(&perm);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(p.get(i, j), m.get(perm[i], perm[j]));
            }
        }
        // Permuting back with the inverse restores the original.
        let back = p.permuted(&perm);
        assert_eq!(back, m);
    }

    #[test]
    fn warshall_closure_on_path() {
        let g = CsrGraph::from_edges(
            3,
            &[
                Edge::unit(NodeId(0), NodeId(1)),
                Edge::unit(NodeId(1), NodeId(2)),
            ],
        );
        let m = reachability_closure(&g);
        assert!(m.get(0, 2), "transitive edge present after closure");
        assert!(!m.get(2, 0));
        assert_eq!(closure_cardinality(&g), 3); // (0,1), (1,2), (0,2)
    }

    #[test]
    fn floyd_warshall_matches_dijkstra() {
        let g = diamond();
        let fw = floyd_warshall(&g);
        for s in g.nodes() {
            let sp = dijkstra::single_source(&g, s);
            for t in g.nodes() {
                assert_eq!(fw_cost(&fw, s, t), sp.cost(t), "fw vs dijkstra at {s}->{t}");
            }
        }
    }

    #[test]
    fn floyd_warshall_parallel_edges_take_min() {
        let g = CsrGraph::from_edges(
            2,
            &[
                Edge::new(NodeId(0), NodeId(1), 9),
                Edge::new(NodeId(0), NodeId(1), 2),
            ],
        );
        let fw = floyd_warshall(&g);
        assert_eq!(fw_cost(&fw, NodeId(0), NodeId(1)), Some(2));
    }

    #[test]
    fn closure_cardinality_complete_digraph() {
        // Symmetric triangle: every ordered pair reachable.
        let mut edges = Vec::new();
        for (a, b) in [(0u32, 1), (1, 2), (2, 0)] {
            edges.push(Edge::unit(NodeId(a), NodeId(b)));
            edges.push(Edge::unit(NodeId(b), NodeId(a)));
        }
        let g = CsrGraph::from_edges(3, &edges);
        assert_eq!(closure_cardinality(&g), 6);
    }
}
