//! Fundamental types: node identifiers, edge tuples, costs and coordinates.

use std::fmt;

/// A node (vertex) identifier.
///
/// Nodes are dense `u32` indices into the graph's node table; the paper's
/// relations store them as city/part identifiers. `NodeId` is a newtype so
/// node indices cannot be confused with fragment ids or costs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index (panics on overflow in debug builds).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Edge cost / weight.
///
/// Costs are non-negative integers. Generators produce scaled, rounded
/// Euclidean distances; unit costs model plain reachability. Integer costs
/// keep [`Ord`] total (no NaN hazards) so they can live in binary heaps.
pub type Cost = u64;

/// Sentinel for "unreachable". Large enough to never be produced by a real
/// path, small enough that `INFINITE_COST + any edge cost` cannot wrap.
pub const INFINITE_COST: Cost = Cost::MAX / 4;

/// A point in the plane. The paper assumes "each node has an associated
/// coordinate-pair (x, y)" (§3.3) — used by the linear fragmentation sweep,
/// the distributed-centers refinement and the generators.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Coord {
    pub x: f64,
    pub y: f64,
}

impl Coord {
    pub fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Euclidean distance to another point — the `d(p, q)` of the paper's
    /// edge probability function (§4.1).
    pub fn distance(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// One tuple of the connection relation `R(src, dst, cost)`: a directed,
/// weighted edge (§2.1: "each tuple represents an edge of the graph,
/// possibly with an associated weight").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub cost: Cost,
}

impl Edge {
    pub fn new(src: NodeId, dst: NodeId, cost: Cost) -> Self {
        Edge { src, dst, cost }
    }

    /// Unit-cost edge, for pure reachability problems.
    pub fn unit(src: NodeId, dst: NodeId) -> Self {
        Edge { src, dst, cost: 1 }
    }

    /// The same connection in the opposite direction.
    pub fn reversed(&self) -> Edge {
        Edge {
            src: self.dst,
            dst: self.src,
            cost: self.cost,
        }
    }

    /// The unordered endpoint pair, smaller id first. Two directed edges
    /// that represent one symmetric connection share the same key.
    pub fn undirected_key(&self) -> (NodeId, NodeId) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }

    /// Whether this edge is a self-loop.
    pub fn is_loop(&self) -> bool {
        self.src == self.dst
    }

    /// Whether this edge represents the connection `src -> dst` — in
    /// either direction when `symmetric`. The one matching rule every
    /// update path shares (coordinator fragmentation, deletion repair,
    /// machine sites), so removals can never desynchronize them.
    pub fn connects(&self, src: NodeId, dst: NodeId, symmetric: bool) -> bool {
        (self.src == src && self.dst == dst) || (symmetric && self.src == dst && self.dst == src)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{} ({})", self.src, self.dst, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(format!("{n}"), "42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn edge_reversed_swaps_endpoints_keeps_cost() {
        let e = Edge::new(NodeId(1), NodeId(2), 7);
        let r = e.reversed();
        assert_eq!(r.src, NodeId(2));
        assert_eq!(r.dst, NodeId(1));
        assert_eq!(r.cost, 7);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn undirected_key_is_order_independent() {
        let a = Edge::new(NodeId(3), NodeId(1), 5);
        let b = Edge::new(NodeId(1), NodeId(3), 9);
        assert_eq!(a.undirected_key(), b.undirected_key());
        assert_eq!(a.undirected_key(), (NodeId(1), NodeId(3)));
    }

    #[test]
    fn coord_distance_is_euclidean() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.distance(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn loops_detected() {
        assert!(Edge::unit(NodeId(4), NodeId(4)).is_loop());
        assert!(!Edge::unit(NodeId(4), NodeId(5)).is_loop());
    }

    #[test]
    fn infinite_cost_does_not_wrap_when_added_to_edge_cost() {
        let sum = INFINITE_COST.saturating_add(1_000_000);
        assert!(sum >= INFINITE_COST);
        assert!(sum < Cost::MAX, "headroom remains before wrap");
    }
}
