//! Strongly connected components and the condensation DAG.
//!
//! [`condense`] runs Tarjan's algorithm with an explicit stack (no
//! recursion — million-node graphs would overflow the call stack) and
//! renumbers the components so that **component ids are a topological
//! order of the condensation**: every DAG edge goes from a lower id to a
//! strictly higher id. The reachability index ([`crate::reach`]) leans on
//! that invariant for its reverse-topological dynamic programming.
//!
//! Everything is u32-packed: `comp_of` is one u32 per node and the
//! condensed DAG is a deduplicated CSR over component ids, so the
//! condensation of a million-node graph costs a few MB, not hundreds.

use crate::csr::CsrGraph;
use crate::types::NodeId;

const UNVISITED: u32 = u32::MAX;

/// The SCC condensation of a directed graph: a node → component map plus
/// the condensed DAG in CSR form (deduplicated, topologically numbered).
#[derive(Clone, Debug)]
pub struct Condensation {
    comp_of: Vec<u32>,
    comp_count: u32,
    dag_offsets: Vec<u32>,
    dag_targets: Vec<u32>,
}

impl Condensation {
    /// Number of strongly connected components.
    #[inline]
    pub fn comp_count(&self) -> usize {
        self.comp_count as usize
    }

    /// Component id of `v`. Ids are topological: a DAG edge always goes
    /// from a lower id to a higher id.
    #[inline]
    pub fn comp(&self, v: NodeId) -> u32 {
        self.comp_of[v.index()]
    }

    /// The full node → component map.
    #[inline]
    pub fn comp_of(&self) -> &[u32] {
        &self.comp_of
    }

    /// Successors of component `c` in the condensed DAG (deduplicated,
    /// all strictly greater than `c`).
    #[inline]
    pub fn dag_successors(&self, c: u32) -> &[u32] {
        let lo = self.dag_offsets[c as usize] as usize;
        let hi = self.dag_offsets[c as usize + 1] as usize;
        &self.dag_targets[lo..hi]
    }

    /// Number of distinct edges in the condensed DAG.
    #[inline]
    pub fn dag_edge_count(&self) -> usize {
        self.dag_targets.len()
    }
}

/// Condense `graph` into its SCC DAG (iterative Tarjan, O(V + E)).
pub fn condense(graph: &CsrGraph) -> Condensation {
    let n = graph.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    // Explicit DFS frames: (node, next out-edge offset within the node).
    let mut frames: Vec<(u32, u32)> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, 0));

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let out = graph.out_targets(NodeId(v));
            if (*ei as usize) < out.len() {
                let w = out[*ei as usize].0;
                *ei += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (u, _)) = frames.last_mut() {
                    lowlink[u as usize] = lowlink[u as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // Tarjan pops components in *reverse* topological
                    // order; record the raw id here and flip it below so
                    // final ids read topologically.
                    loop {
                        let w = stack.pop().expect("component root is on the stack");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }

    for c in comp_of.iter_mut() {
        *c = comp_count - 1 - *c;
    }

    // Condensed DAG: cross-component edges, deduplicated, CSR-packed.
    let mut pairs: Vec<u64> = Vec::new();
    for v in graph.nodes() {
        let cv = comp_of[v.index()];
        for &w in graph.out_targets(v) {
            let cw = comp_of[w.index()];
            if cv != cw {
                pairs.push(((cv as u64) << 32) | cw as u64);
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let mut dag_offsets = vec![0u32; comp_count as usize + 1];
    for &p in &pairs {
        dag_offsets[(p >> 32) as usize + 1] += 1;
    }
    for i in 0..comp_count as usize {
        dag_offsets[i + 1] += dag_offsets[i];
    }
    let dag_targets: Vec<u32> = pairs.iter().map(|&p| p as u32).collect();

    Condensation {
        comp_of,
        comp_count,
        dag_offsets,
        dag_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn graph(nodes: usize, edges: &[(u32, u32)]) -> CsrGraph {
        let e: Vec<Edge> = edges.iter().map(|&(a, b)| Edge::unit(n(a), n(b))).collect();
        CsrGraph::from_edges(nodes, &e)
    }

    #[test]
    fn path_graph_is_all_singletons_in_topo_order() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = condense(&g);
        assert_eq!(c.comp_count(), 4);
        for v in 0..3u32 {
            assert!(
                c.comp(n(v)) < c.comp(n(v + 1)),
                "edge {}->{} must go low->high",
                v,
                v + 1
            );
        }
        assert_eq!(c.dag_edge_count(), 3);
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = condense(&g);
        assert_eq!(c.comp_count(), 1);
        assert_eq!(c.dag_edge_count(), 0);
    }

    #[test]
    fn two_cycles_with_a_bridge() {
        // {0,1} -> {2,3} via 1->2.
        let g = graph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let c = condense(&g);
        assert_eq!(c.comp_count(), 2);
        assert_eq!(c.comp(n(0)), c.comp(n(1)));
        assert_eq!(c.comp(n(2)), c.comp(n(3)));
        assert!(c.comp(n(0)) < c.comp(n(2)), "DAG edge goes low->high");
        assert_eq!(c.dag_successors(c.comp(n(0))), &[c.comp(n(2))]);
        assert_eq!(c.dag_successors(c.comp(n(2))), &[] as &[u32]);
    }

    #[test]
    fn parallel_edges_and_self_loops_dedup() {
        let g = graph(2, &[(0, 0), (0, 1), (0, 1), (1, 1)]);
        let c = condense(&g);
        assert_eq!(c.comp_count(), 2);
        assert_eq!(c.dag_edge_count(), 1, "parallel DAG edges deduplicated");
    }

    #[test]
    fn every_dag_edge_is_topological() {
        // A denser shape: diamond over cycles plus stragglers.
        let g = graph(
            8,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (4, 5),
                (5, 4),
                (6, 0),
                // 7 isolated
            ],
        );
        let c = condense(&g);
        for comp in 0..c.comp_count() as u32 {
            for &d in c.dag_successors(comp) {
                assert!(comp < d, "edge {comp}->{d} violates topological ids");
            }
        }
        // Symmetric sanity: mutually reachable nodes share a component.
        assert_eq!(c.comp(n(4)), c.comp(n(5)));
        assert_ne!(c.comp(n(6)), c.comp(n(0)));
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        let c = condense(&g);
        assert_eq!(c.comp_count(), 0);
        assert_eq!(c.dag_edge_count(), 0);
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        // A 200k-node path would blow a recursive Tarjan's call stack.
        let edges: Vec<(u32, u32)> = (0..200_000).map(|i| (i, i + 1)).collect();
        let g = graph(200_001, &edges);
        let c = condense(&g);
        assert_eq!(c.comp_count(), 200_001);
    }
}
