//! Complementary information: the precomputed border-to-border shortest
//! distances that make fragment-local evaluation exact.
//!
//! §2.1: "it is required to store in addition some complementary
//! information about the identity of border cities and the properties of
//! their connections … for the shortest path problem it is required to
//! precompute the shortest path among any two cities on the border
//! between two fragments. Complementary information about the
//! disconnection set DS_ij is stored at both sites storing the fragments
//! R_i and R_j."
//!
//! The distances are *global* shortest-path distances — that is what makes
//! a chain evaluation exact even when the true shortest path briefly
//! leaves the chain: "the shortest path might include nodes outside the
//! chain, however, their contribution is precomputed in the complementary
//! information" (footnote 3).
//!
//! ## The skeleton-overlay precompute
//!
//! The paper warns that "the pre-processing required for building the
//! complementary information" dominates the disconnection-set approach.
//! The naive precompute ([`ComplementaryInfo::compute_global_sweep`],
//! kept as the reference implementation) runs one **whole-graph**
//! Dijkstra per border node — O(B · (E + V log V)). The default
//! ([`ComplementaryInfo::compute`]) exploits the fragmentation structure
//! instead:
//!
//! 1. **Local sweeps** — per fragment, one Dijkstra *per border node of
//!    that fragment* over the fragment's induced subgraph only, with
//!    early exit once the fragment's other border nodes are settled.
//! 2. **Skeleton closure** — a tiny border-skeleton graph (one node per
//!    border city, one edge per locally connected border pair, weighted
//!    with the local distance) is closed with Dijkstra per skeleton
//!    node, yielding **exact** global border-to-border distances.
//! 3. **Lazy paths** — when paths are requested, shortcut routes are not
//!    materialized eagerly; they are stitched on demand from the
//!    skeleton hops and the fragment-local parent trees of step 1.
//!
//! Exactness: every global edge belongs to exactly one fragment and both
//! its endpoints lie in that fragment's node set, so any global shortest
//! path between border nodes decomposes at its border-node visits into
//! segments that each stay inside one fragment's induced subgraph — and
//! each segment is dominated by a skeleton edge of that fragment. A
//! border pair disconnected *locally* but connected globally is simply
//! served by the skeleton closure through other fragments; no global
//! re-sweep is ever needed, and the resulting shortcut tables are
//! bit-identical to the global-sweep reference (asserted per-tuple by
//! `tests/properties.rs`).
//!
//! Two scopes are provided:
//! * [`ComplementaryScope::PerDisconnectionSet`] — exactly the paper's
//!   rule: pairs within each `DS_ij`. Exact when the fragmentation graph
//!   is loosely connected (acyclic), the paper's stated assumption.
//! * [`ComplementaryScope::PerFragmentBorder`] — pairs over *all* border
//!   nodes of each fragment. A strict superset that stays exact on
//!   *cyclic* fragmentation graphs too (an excursion out of a fragment can
//!   then return through a different disconnection set; covering all
//!   border pairs of the fragment closes that hole). This is the default,
//!   and the extra storage is measured in the `ablation-crossing`
//!   experiments.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use ds_fragment::Fragmentation;
use ds_graph::{
    dijkstra, Cost, CsrGraph, Edge, NodeId, ScratchDijkstra, SubgraphView, INFINITE_COST,
};

/// Which border pairs get a precomputed shortcut.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ComplementaryScope {
    /// Pairs within each disconnection set (the paper's rule; exact for
    /// loosely connected fragmentations).
    PerDisconnectionSet,
    /// All border-node pairs of each fragment (exact for any
    /// fragmentation).
    #[default]
    PerFragmentBorder,
}

/// Which precompute algorithm produced the tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrecomputeStrategy {
    /// Fragment-local sweeps + border-skeleton closure (the default).
    #[default]
    Skeleton,
    /// One whole-graph Dijkstra per border node (the reference).
    GlobalSweep,
}

/// Per-phase wall-time accounting of one precompute, exposed through
/// `TcEngine::precompute_stats` so benches and tests can assert where
/// build time goes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrecomputeStats {
    pub strategy: PrecomputeStrategy,
    /// Time in the per-fragment local border sweeps (for the global-sweep
    /// reference: the whole-graph sweeps).
    pub local_sweeps_ns: u64,
    /// Time closing the border-skeleton graph (0 on the reference path).
    pub skeleton_close_ns: u64,
    /// Time assembling the per-site shortcut tables.
    pub assemble_ns: u64,
}

impl PrecomputeStats {
    /// Total accounted precompute time.
    pub fn total_ns(&self) -> u64 {
        self.local_sweeps_ns + self.skeleton_close_ns + self.assemble_ns
    }
}

/// One directed edge of the border-skeleton graph: a locally realized
/// border-to-border distance, remembering which fragment realizes it.
#[derive(Clone, Copy, Debug)]
struct SkelEdge {
    /// Skeleton (border-list) indices.
    src: u32,
    dst: u32,
    cost: Cost,
    frag: u32,
}

/// The per-fragment leftovers of the local-sweep phase that lazy path
/// stitching needs: the induced subgraph view, the fragment's border
/// nodes (sorted), and one parent tree per border source.
#[derive(Clone, Debug)]
struct FragTrees {
    view: SubgraphView,
    /// Sorted global ids of this fragment's border nodes; parallel to
    /// `parents`.
    borders: Vec<NodeId>,
    /// `parents[i]` is the local-id parent tree of the sweep rooted at
    /// `borders[i]` (`u32::MAX` = root / unreached).
    parents: Vec<Vec<u32>>,
}

/// Lazy path storage for the skeleton strategy: shortcut routes are
/// stitched from skeleton hops and fragment-local parent trees on
/// demand. `overrides` holds routes replaced by update maintenance
/// (which must not consult the stale build-time trees).
#[derive(Clone, Debug)]
struct SkeletonPaths {
    /// Sorted global border ids; index = skeleton id.
    borders: Vec<NodeId>,
    frags: Vec<FragTrees>,
    edges: Vec<SkelEdge>,
    /// `via[s][t]` — index into `edges` of the skeleton edge that settles
    /// `t` in the closure sweep rooted at `s` (`u32::MAX` = none).
    via: Vec<Vec<u32>>,
    overrides: HashMap<(NodeId, NodeId), Vec<NodeId>>,
}

impl SkeletonPaths {
    fn stitch(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        if let Some(p) = self.overrides.get(&(u, v)) {
            return Some(p.clone());
        }
        let su = self.borders.binary_search(&u).ok()?;
        let sv = self.borders.binary_search(&v).ok()?;
        if su == sv {
            // Self-pairs are never stored as shortcuts; answer exactly
            // like the eager (global-sweep) store does.
            return None;
        }
        // Walk the closure tree rooted at `su` back from `sv`, collecting
        // the skeleton hops in reverse.
        let mut hops: Vec<&SkelEdge> = Vec::new();
        let mut cur = sv;
        while cur != su {
            let idx = self.via[su][cur];
            if idx == u32::MAX {
                return None; // unreachable
            }
            let e = &self.edges[idx as usize];
            hops.push(e);
            cur = e.src as usize;
        }
        hops.reverse();
        // Expand each hop inside its providing fragment.
        let mut out = vec![u];
        for e in hops {
            let ft = &self.frags[e.frag as usize];
            let src_global = self.borders[e.src as usize];
            let dst_global = self.borders[e.dst as usize];
            let bi = ft
                .borders
                .binary_search(&src_global)
                .expect("skeleton edge source is a border of its fragment");
            let tree = &ft.parents[bi];
            let src_local = ft.view.local_of(src_global).expect("border in view");
            let mut lc = ft.view.local_of(dst_global).expect("border in view");
            let mut seg = Vec::new();
            while lc != src_local {
                seg.push(ft.view.global_of(lc));
                lc = NodeId(tree[lc.index()]);
            }
            seg.reverse();
            out.extend(seg);
        }
        Some(out)
    }
}

/// Concrete routes backing the shortcut tuples, when requested.
#[derive(Clone, Debug)]
enum PathData {
    /// Every route materialized eagerly (global-sweep reference).
    Eager(HashMap<(NodeId, NodeId), Vec<NodeId>>),
    /// Routes stitched lazily from the skeleton (default).
    Lazy(SkeletonPaths),
}

impl PathData {
    fn get(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        match self {
            PathData::Eager(map) => map.get(&(u, v)).cloned(),
            PathData::Lazy(skel) => skel.stitch(u, v),
        }
    }

    fn set(&mut self, u: NodeId, v: NodeId, path: Vec<NodeId>) {
        match self {
            PathData::Eager(map) => {
                map.insert((u, v), path);
            }
            PathData::Lazy(skel) => {
                skel.overrides.insert((u, v), path);
            }
        }
    }
}

/// The precomputed shortcut tables, per site.
///
/// Every per-site table lives behind its own [`Arc`], so cloning the
/// whole structure (the serve writer's per-epoch copy-on-write
/// publication) costs one refcount bump per site, and update
/// maintenance — which goes through [`Arc::make_mut`] — detaches only
/// the tables it actually changes. Untouched sites stay pointer-shared
/// with every previous epoch (asserted by the structural-sharing
/// property in `tests/properties.rs`).
#[derive(Clone, Debug)]
pub struct ComplementaryInfo {
    /// `shortcuts[f]` — directed shortcut edges `(u, v, global_dist)`
    /// stored at site `f`, each table behind its own `Arc`.
    shortcuts: Vec<Arc<Vec<Edge>>>,
    /// Concrete global paths backing each shortcut (for route
    /// reconstruction), when requested. One shared block: path lookups
    /// are read-mostly, and maintenance detaches it at most once per
    /// epoch via `Arc::make_mut`.
    paths: Option<Arc<PathData>>,
    /// Number of distinct border nodes.
    border_count: usize,
    /// Total shortcut tuples stored (the paper's "pre-computed
    /// information" volume).
    pair_count: usize,
    stats: PrecomputeStats,
}

/// Output of the local-sweep phase for one fragment.
struct LocalSweepOut {
    edges: Vec<SkelEdge>,
    trees: Option<FragTrees>,
}

/// Run the local border sweeps of one fragment: from each border node,
/// Dijkstra over the fragment's induced subgraph with early exit once
/// the fragment's other border nodes are settled.
fn local_sweeps_for_fragment(
    graph: &CsrGraph,
    frag: &Fragmentation,
    f: usize,
    borders: &[NodeId],
    store_trees: bool,
    scratch: &mut ScratchDijkstra,
) -> LocalSweepOut {
    // The fragment's border nodes: its node set ∩ the global border set
    // (both sorted).
    let nodes = frag.fragment(f).nodes();
    let fborders: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|v| borders.binary_search(v).is_ok())
        .collect();
    if fborders.is_empty() {
        return LocalSweepOut {
            edges: Vec::new(),
            trees: None,
        };
    }
    let view = SubgraphView::induced(graph, nodes);
    let local_borders: Vec<NodeId> = fborders
        .iter()
        .map(|&b| view.local_of(b).expect("border is a fragment node"))
        .collect();
    let skel_ids: Vec<u32> = fborders
        .iter()
        .map(|b| borders.binary_search(b).expect("border") as u32)
        .collect();
    let mut edges = Vec::new();
    let mut parents = Vec::new();
    let mut targets: Vec<NodeId> = Vec::with_capacity(local_borders.len());
    for (bi, _) in fborders.iter().enumerate() {
        // The other borders absorb: a local path through another border
        // contributes nothing the skeleton closure cannot compose, so
        // sweeps stop there. This keeps the sweeps shallow *and* the
        // skeleton sparse — only interior-adjacent border pairs become
        // skeleton edges.
        targets.clear();
        targets.extend(
            local_borders
                .iter()
                .enumerate()
                .filter(|&(ti, _)| ti != bi)
                .map(|(_, &t)| t),
        );
        if targets.is_empty() {
            // A lone border node yields no pairs and no skeleton edges.
            if store_trees {
                parents.push(vec![u32::MAX; view.len()]);
            }
            continue;
        }
        scratch.sweep_to_targets_absorbing(view.graph(), &[(local_borders[bi], 0)], &targets);
        for (ti, &t) in local_borders.iter().enumerate() {
            if ti == bi {
                continue;
            }
            if let Some(cost) = scratch.cost(t) {
                edges.push(SkelEdge {
                    src: skel_ids[bi],
                    dst: skel_ids[ti],
                    cost,
                    frag: f as u32,
                });
            }
        }
        if store_trees {
            parents.push(scratch.snapshot_parents(view.len()));
        }
    }
    let trees = store_trees.then_some(FragTrees {
        view,
        borders: fborders,
        parents,
    });
    LocalSweepOut { edges, trees }
}

/// Close the skeleton graph: Dijkstra per skeleton node over adjacency
/// lists that remember the realizing edge index. `targets[s]` lists the
/// skeleton nodes whose distance from `s` the shortcut tables actually
/// need (the borders sharing a site group with `s`); each sweep stops as
/// soon as all of them are settled. Returns the distance matrix and,
/// when requested, the `via` edge matrix for path stitching — rows are
/// final for every settled node, which includes every needed pair and
/// every intermediate skeleton hop on their paths.
fn close_skeleton(
    border_count: usize,
    edges: &[SkelEdge],
    targets: &[Vec<u32>],
    want_via: bool,
) -> (Vec<Vec<Cost>>, Vec<Vec<u32>>) {
    let mut adj: Vec<Vec<(u32, Cost, u32)>> = vec![Vec::new(); border_count];
    for (i, e) in edges.iter().enumerate() {
        adj[e.src as usize].push((e.dst, e.cost, i as u32));
    }
    let mut dist_matrix = Vec::with_capacity(border_count);
    let mut via_matrix = Vec::with_capacity(if want_via { border_count } else { 0 });
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Cost, u32)>> =
        std::collections::BinaryHeap::new();
    let mut is_target = vec![false; border_count];
    for s in 0..border_count {
        let mut remaining = 0usize;
        for &t in &targets[s] {
            if t as usize != s && !is_target[t as usize] {
                is_target[t as usize] = true;
                remaining += 1;
            }
        }
        if remaining == 0 {
            // No table pair needs this source (e.g. singleton
            // disconnection sets): skip the sweep entirely.
            dist_matrix.push(vec![INFINITE_COST; border_count]);
            if want_via {
                via_matrix.push(vec![u32::MAX; border_count]);
            }
            continue;
        }
        let mut dist = vec![INFINITE_COST; border_count];
        let mut via = vec![u32::MAX; border_count];
        dist[s] = 0;
        heap.clear();
        heap.push(std::cmp::Reverse((0, s as u32)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            if is_target[v as usize] {
                is_target[v as usize] = false;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            for &(t, w, idx) in &adj[v as usize] {
                let nd = d + w;
                if nd < dist[t as usize] {
                    dist[t as usize] = nd;
                    via[t as usize] = idx;
                    heap.push(std::cmp::Reverse((nd, t)));
                }
            }
        }
        // Unsettled targets are unreachable; clear their marks for the
        // next source.
        for &t in &targets[s] {
            is_target[t as usize] = false;
        }
        dist_matrix.push(dist);
        if want_via {
            via_matrix.push(via);
        }
    }
    (dist_matrix, via_matrix)
}

impl ComplementaryInfo {
    /// Precompute the complementary information for a fragmentation over
    /// `graph` (the directed closure graph) with the skeleton-overlay
    /// strategy (see the module docs).
    ///
    /// `store_paths` additionally retains the fragment-local parent trees
    /// and skeleton hop structure so full routes can be reconstructed
    /// later (lazily, per request).
    pub fn compute(
        graph: &CsrGraph,
        frag: &Fragmentation,
        scope: ComplementaryScope,
        store_paths: bool,
    ) -> Self {
        Self::compute_with_threads(graph, frag, scope, store_paths, 1)
    }

    /// Like [`ComplementaryInfo::compute`], but runs the per-fragment
    /// local sweeps on `threads` OS threads. The local-sweep phase
    /// parallelizes embarrassingly (fragments are independent) — the same
    /// observation that makes phase one of query processing
    /// communication-free. Results are identical to the sequential run.
    pub fn compute_with_threads(
        graph: &CsrGraph,
        frag: &Fragmentation,
        scope: ComplementaryScope,
        store_paths: bool,
        threads: usize,
    ) -> Self {
        let per_site_borders = site_border_sets(frag, scope);
        let borders: Vec<NodeId> = per_site_borders
            .iter()
            .flat_map(|sets| sets.iter().flatten().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();

        // Phase 1: fragment-local border sweeps.
        let t0 = Instant::now();
        let frag_ids: Vec<usize> = (0..frag.fragment_count()).collect();
        let mut sweeps: Vec<LocalSweepOut> = if threads <= 1 || frag_ids.len() < 2 {
            let mut scratch = ScratchDijkstra::new();
            frag_ids
                .iter()
                .map(|&f| {
                    local_sweeps_for_fragment(graph, frag, f, &borders, store_paths, &mut scratch)
                })
                .collect()
        } else {
            let chunk = frag_ids.len().div_ceil(threads);
            let results: Vec<Vec<LocalSweepOut>> = std::thread::scope(|s| {
                let handles: Vec<_> = frag_ids
                    .chunks(chunk)
                    .map(|ids| {
                        let borders = &borders;
                        s.spawn(move || {
                            let mut scratch = ScratchDijkstra::new();
                            ids.iter()
                                .map(|&f| {
                                    local_sweeps_for_fragment(
                                        graph,
                                        frag,
                                        f,
                                        borders,
                                        store_paths,
                                        &mut scratch,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("precompute thread panicked"))
                    .collect()
            });
            results.into_iter().flatten().collect()
        };
        let mut skel_edges: Vec<SkelEdge> = Vec::new();
        let mut frag_trees: Vec<FragTrees> = Vec::new();
        for (f, out) in sweeps.iter_mut().enumerate() {
            skel_edges.append(&mut out.edges);
            if store_paths {
                frag_trees.push(out.trees.take().unwrap_or_else(|| FragTrees {
                    view: SubgraphView::induced(graph, &[]),
                    borders: Vec::new(),
                    parents: Vec::new(),
                }));
                debug_assert_eq!(frag_trees.len(), f + 1);
            }
        }
        // Every fragment containing both endpoints realizes a direct
        // border-border edge (induced subgraphs overlap on borders), so
        // parallel skeleton edges are common: keep only the cheapest per
        // (src, dst) — the sort makes the choice deterministic.
        skel_edges.sort_by_key(|e| (e.src, e.dst, e.cost, e.frag));
        skel_edges.dedup_by_key(|e| (e.src, e.dst));
        let local_sweeps_ns = t0.elapsed().as_nanos() as u64;

        // Phase 2: close the border skeleton. Each closure sweep needs
        // only the source's group partners — the pairs the tables store.
        let t1 = Instant::now();
        let mut target_sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); borders.len()];
        for groups in &per_site_borders {
            for group in groups {
                let idx: Vec<u32> = group
                    .iter()
                    .map(|v| borders.binary_search(v).expect("group node is a border") as u32)
                    .collect();
                for &u in &idx {
                    for &v in &idx {
                        if u != v {
                            target_sets[u as usize].insert(v);
                        }
                    }
                }
            }
        }
        let closure_targets: Vec<Vec<u32>> = target_sets
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        let (dist_matrix, via) =
            close_skeleton(borders.len(), &skel_edges, &closure_targets, store_paths);
        let skeleton_close_ns = t1.elapsed().as_nanos() as u64;

        // Phase 3: assemble the per-site tables from the closed skeleton.
        let t2 = Instant::now();
        let mut shortcuts: Vec<Vec<Edge>> = vec![Vec::new(); frag.fragment_count()];
        let mut pair_count = 0usize;
        for (site, groups) in per_site_borders.iter().enumerate() {
            // Pairs can repeat across groups only when a site has several
            // (the per-DS scope); the default fragment scope has one group
            // per site and skips the dedup set entirely.
            let mut seen: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            let dedup = groups.len() > 1;
            for group in groups {
                let idx: Vec<usize> = group
                    .iter()
                    .map(|v| borders.binary_search(v).expect("group node is a border"))
                    .collect();
                for (ui, &u) in group.iter().enumerate() {
                    let row = &dist_matrix[idx[ui]];
                    for (vi, &v) in group.iter().enumerate() {
                        if u == v || (dedup && !seen.insert((u, v))) {
                            continue;
                        }
                        let cost = row[idx[vi]];
                        if cost < INFINITE_COST {
                            shortcuts[site].push(Edge::new(u, v, cost));
                            pair_count += 1;
                        }
                    }
                }
            }
        }
        let assemble_ns = t2.elapsed().as_nanos() as u64;

        let border_count = borders.len();
        let paths = store_paths.then(|| {
            Arc::new(PathData::Lazy(SkeletonPaths {
                borders,
                frags: frag_trees,
                edges: skel_edges,
                via,
                overrides: HashMap::new(),
            }))
        });
        ComplementaryInfo {
            shortcuts: shortcuts.into_iter().map(Arc::new).collect(),
            paths,
            border_count,
            pair_count,
            stats: PrecomputeStats {
                strategy: PrecomputeStrategy::Skeleton,
                local_sweeps_ns,
                skeleton_close_ns,
                assemble_ns,
            },
        }
    }

    /// The reference precompute: one whole-graph Dijkstra per border
    /// node, paths materialized eagerly. Produces tables identical to
    /// [`ComplementaryInfo::compute`]; kept for equivalence tests and as
    /// the baseline of the `precompute` bench.
    pub fn compute_global_sweep(
        graph: &CsrGraph,
        frag: &Fragmentation,
        scope: ComplementaryScope,
        store_paths: bool,
    ) -> Self {
        let per_site_borders = site_border_sets(frag, scope);
        let border_list: Vec<NodeId> = per_site_borders
            .iter()
            .flat_map(|sets| sets.iter().flatten().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();

        // One global Dijkstra per border node, reused across all sets the
        // node appears in. Keyed by the sorted border list (binary
        // search), not a hash map — the list is already sorted.
        let t0 = Instant::now();
        let dist_from: Vec<dijkstra::ShortestPaths> = border_list
            .iter()
            .map(|&b| dijkstra::single_source(graph, b))
            .collect();
        let local_sweeps_ns = t0.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        let mut shortcuts: Vec<Vec<Edge>> = vec![Vec::new(); frag.fragment_count()];
        let mut paths: Option<HashMap<(NodeId, NodeId), Vec<NodeId>>> =
            store_paths.then(HashMap::new);
        let mut pair_count = 0usize;
        for (site, groups) in per_site_borders.iter().enumerate() {
            let mut seen: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            for group in groups {
                for &u in group {
                    let sp = &dist_from[border_list.binary_search(&u).expect("border")];
                    for &v in group {
                        if u == v || !seen.insert((u, v)) {
                            continue;
                        }
                        if let Some(cost) = sp.cost(v) {
                            shortcuts[site].push(Edge::new(u, v, cost));
                            pair_count += 1;
                            if let Some(p) = paths.as_mut() {
                                p.entry((u, v))
                                    .or_insert_with(|| sp.path_to(v).expect("cost is finite"));
                            }
                        }
                    }
                }
            }
        }
        let assemble_ns = t2.elapsed().as_nanos() as u64;

        ComplementaryInfo {
            shortcuts: shortcuts.into_iter().map(Arc::new).collect(),
            paths: paths.map(|p| Arc::new(PathData::Eager(p))),
            border_count: border_list.len(),
            pair_count,
            stats: PrecomputeStats {
                strategy: PrecomputeStrategy::GlobalSweep,
                local_sweeps_ns,
                skeleton_close_ns: 0,
                assemble_ns,
            },
        }
    }

    /// Shortcut edges stored at site `f`.
    pub fn shortcuts(&self, f: usize) -> &[Edge] {
        &self.shortcuts[f]
    }

    /// The shared handle behind site `f`'s shortcut table. Two
    /// `ComplementaryInfo` values that return `Arc::ptr_eq` handles for a
    /// site physically share that site's table (structural sharing across
    /// snapshot epochs).
    pub fn shortcuts_handle(&self, f: usize) -> &Arc<Vec<Edge>> {
        &self.shortcuts[f]
    }

    /// A deep copy that shares nothing with `self`: every per-site table
    /// (and the path store) gets a fresh allocation. This is what a full
    /// per-epoch snapshot copy used to cost before structural sharing —
    /// kept as the baseline of the publication-cost bench, and useful to
    /// detach a snapshot from a shared lineage entirely.
    pub fn unshared_clone(&self) -> Self {
        ComplementaryInfo {
            shortcuts: self
                .shortcuts
                .iter()
                .map(|t| Arc::new((**t).clone()))
                .collect(),
            paths: self.paths.as_ref().map(|p| Arc::new((**p).clone())),
            border_count: self.border_count,
            pair_count: self.pair_count,
            stats: self.stats,
        }
    }

    /// The concrete path behind shortcut `(u, v)`, if paths were stored.
    /// With the skeleton strategy the route is stitched on demand from
    /// the fragment-local parent trees (unless update maintenance has
    /// overridden it).
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.paths.as_ref()?.get(u, v)
    }

    /// Whether concrete paths were stored.
    pub fn has_paths(&self) -> bool {
        self.paths.is_some()
    }

    /// Number of distinct border nodes.
    pub fn border_count(&self) -> usize {
        self.border_count
    }

    /// Total shortcut tuples across all sites (storage cost measure).
    pub fn pair_count(&self) -> usize {
        self.pair_count
    }

    /// Per-phase timing of the precompute that built these tables.
    pub fn precompute_stats(&self) -> PrecomputeStats {
        self.stats
    }

    /// Apply a refinement to every shortcut tuple: `f` returns the new
    /// cost (plus, when paths are stored, the new concrete path) or `None`
    /// to keep the current tuple. Returns per-site counts of tuples that
    /// changed. Used by incremental insert maintenance
    /// (`dist' = min(dist, dist(a,u) + c + dist(v,b))`).
    ///
    /// Sites with no changed tuple keep their shared table untouched —
    /// `Arc::make_mut` detaches only the tables this refinement writes.
    pub fn refine(
        &mut self,
        f: impl Fn(&Edge) -> Option<(u64, Option<Vec<NodeId>>)>,
    ) -> Vec<usize> {
        let mut changed = vec![0usize; self.shortcuts.len()];
        let mut updates: Vec<(usize, Cost, Option<Vec<NodeId>>)> = Vec::new();
        for (site, changed_slot) in changed.iter_mut().enumerate() {
            updates.clear();
            for (i, e) in self.shortcuts[site].iter().enumerate() {
                if let Some((new_cost, new_path)) = f(e) {
                    debug_assert!(new_cost <= e.cost, "insertions only shorten paths");
                    if new_cost != e.cost {
                        updates.push((i, new_cost, new_path));
                    }
                }
            }
            if updates.is_empty() {
                continue;
            }
            *changed_slot = updates.len();
            let table = Arc::make_mut(&mut self.shortcuts[site]);
            for (i, new_cost, new_path) in updates.drain(..) {
                if let (Some(data), Some(p)) = (self.paths.as_mut(), new_path) {
                    Arc::make_mut(data).set(table[i].src, table[i].dst, p);
                }
                table[i].cost = new_cost;
            }
        }
        changed
    }

    /// Re-derive every shortcut rooted at one of `sources` from the
    /// post-update `graph` (deletion repair: distances may have grown).
    ///
    /// The tuples are grouped by source in **one pass** over every site's
    /// table up front, so each source's repair sweep then visits only its
    /// own tuples — previously every source rescanned every site's full
    /// tuple set, which grew quadratically with the border count on the
    /// per-DS scope. One scratch sweep per source; sources iterate in
    /// sorted order and the sweep state is reused. Returns per-site
    /// counts of tuples changed, or the first border pair that became
    /// unreachable — the caller must then fall back to a full recompute.
    /// All table writes are deferred until every sweep succeeded, so on
    /// `Err` the tables are untouched and untouched sites keep their
    /// shared (`Arc`) tables in every case.
    pub fn repair_sources(
        &mut self,
        graph: &CsrGraph,
        sources: &BTreeSet<NodeId>,
        scratch: &mut ScratchDijkstra,
    ) -> Result<Vec<usize>, (NodeId, NodeId)> {
        let mut changed = vec![0usize; self.shortcuts.len()];
        if sources.is_empty() {
            return Ok(changed);
        }
        // One pass over all tables: positions of affected tuples, grouped
        // by their source.
        let mut by_source: HashMap<NodeId, Vec<(u32, u32)>> = HashMap::new();
        for (site, tuples) in self.shortcuts.iter().enumerate() {
            for (i, e) in tuples.iter().enumerate() {
                if sources.contains(&e.src) {
                    by_source
                        .entry(e.src)
                        .or_default()
                        .push((site as u32, i as u32));
                }
            }
        }
        let store = self.paths.is_some();
        let mut cost_changes: Vec<(u32, u32, Cost)> = Vec::new();
        let mut path_changes: Vec<(NodeId, NodeId, Vec<NodeId>)> = Vec::new();
        // The same (u, v) route backs every site storing that pair; one
        // replacement path per pair is enough.
        let mut path_seen: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for &s in sources {
            let Some(positions) = by_source.get(&s) else {
                continue; // an affected source with no stored shortcut
            };
            scratch.sweep(graph, &[(s, 0)]);
            for &(site, i) in positions {
                let e = &self.shortcuts[site as usize][i as usize];
                let Some(cost) = scratch.cost(e.dst) else {
                    return Err((s, e.dst));
                };
                if cost != e.cost {
                    cost_changes.push((site, i, cost));
                }
                if store && path_seen.insert((e.src, e.dst)) {
                    // Even when the cost is unchanged, the stored path may
                    // have used the deleted connection (it was *a* shortest
                    // path); replace it with a currently valid one.
                    path_changes.push((
                        e.src,
                        e.dst,
                        scratch.path_to(e.dst).expect("cost is finite"),
                    ));
                }
            }
        }
        for (site, i, cost) in cost_changes {
            Arc::make_mut(&mut self.shortcuts[site as usize])[i as usize].cost = cost;
            changed[site as usize] += 1;
        }
        if let Some(data) = self.paths.as_mut() {
            if !path_changes.is_empty() {
                let data = Arc::make_mut(data);
                for (u, v, p) in path_changes {
                    data.set(u, v, p);
                }
            }
        }
        Ok(changed)
    }
}

/// For each site, the groups of border nodes whose pairs get shortcuts:
/// one group per adjacent DS (paper scope) or a single group of all the
/// fragment's border nodes (fragment scope).
fn site_border_sets(frag: &Fragmentation, scope: ComplementaryScope) -> Vec<Vec<Vec<NodeId>>> {
    let n = frag.fragment_count();
    let mut out: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); n];
    let ds = frag.disconnection_sets();
    match scope {
        ComplementaryScope::PerDisconnectionSet => {
            for (&(i, j), nodes) in &ds {
                out[i].push(nodes.clone());
                out[j].push(nodes.clone());
            }
        }
        ComplementaryScope::PerFragmentBorder => {
            let mut border_of: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
            for (&(i, j), nodes) in &ds {
                border_of[i].extend(nodes.iter().copied());
                border_of[j].extend(nodes.iter().copied());
            }
            for (site, set) in border_of.into_iter().enumerate() {
                if !set.is_empty() {
                    out[site].push(set.into_iter().collect());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::deterministic::path;
    use ds_graph::Edge as GEdge;

    /// Path 0-1-2-3-4 fragmented [0-1,1-2] / [2-3,3-4]: border node 2.
    fn setup() -> (CsrGraph, Fragmentation) {
        let g = path(5);
        let edges = |pairs: &[(u32, u32)]| -> Vec<GEdge> {
            pairs
                .iter()
                .map(|&(a, b)| GEdge::unit(NodeId(a), NodeId(b)))
                .collect()
        };
        let frag = Fragmentation::new(
            5,
            vec![edges(&[(0, 1), (1, 2)]), edges(&[(2, 3), (3, 4)])],
            vec![vec![], vec![]],
        );
        (g.closure_graph(), frag)
    }

    #[test]
    fn single_border_node_yields_no_pairs() {
        let (g, frag) = setup();
        let comp =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerDisconnectionSet, false);
        assert_eq!(comp.border_count(), 1);
        assert_eq!(comp.pair_count(), 0, "a singleton DS has no pairs");
        assert!(comp.shortcuts(0).is_empty());
    }

    #[test]
    fn two_border_nodes_get_global_distances() {
        // Cycle of 6 split into two halves sharing nodes 0 and 3.
        let g = ds_gen::deterministic::cycle(6);
        let edges = |pairs: &[(u32, u32)]| -> Vec<GEdge> {
            pairs
                .iter()
                .map(|&(a, b)| GEdge::unit(NodeId(a), NodeId(b)))
                .collect()
        };
        let frag = Fragmentation::new(
            6,
            vec![
                edges(&[(0, 1), (1, 2), (2, 3)]),
                edges(&[(3, 4), (4, 5), (5, 0)]),
            ],
            vec![vec![], vec![]],
        );
        let csr = g.closure_graph();
        let comp =
            ComplementaryInfo::compute(&csr, &frag, ComplementaryScope::PerDisconnectionSet, true);
        assert_eq!(comp.border_count(), 2);
        // Pairs (0,3) and (3,0) at both sites.
        assert_eq!(comp.pair_count(), 4);
        let s0 = comp.shortcuts(0);
        let shortcut = s0
            .iter()
            .find(|e| e.src == NodeId(0) && e.dst == NodeId(3))
            .unwrap();
        assert_eq!(shortcut.cost, 3, "global distance around the cycle");
        let p = comp.path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 4, "3 hops = 4 nodes");
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[3], NodeId(3));
    }

    #[test]
    fn fragment_border_scope_covers_cross_ds_pairs() {
        // Three fragments in a triangle of paths: fragment 0 borders both
        // 1 (node 2) and 2 (node 4). Fragment scope must add the (2,4)
        // pair at site 0; the per-DS scope must not.
        let edges = |pairs: &[(u32, u32)]| -> Vec<GEdge> {
            pairs
                .iter()
                .flat_map(|&(a, b)| {
                    [
                        GEdge::unit(NodeId(a), NodeId(b)),
                        GEdge::unit(NodeId(b), NodeId(a)),
                    ]
                })
                .collect()
        };
        let all = edges(&[(0, 2), (2, 3), (3, 4), (4, 0), (2, 4)]);
        let g = CsrGraph::from_edges(5, &all);
        let frag = Fragmentation::new(
            5,
            vec![
                edges(&[(0, 2), (4, 0)]),
                edges(&[(2, 3)]),
                edges(&[(3, 4), (2, 4)]),
            ],
            vec![vec![], vec![], vec![]],
        );
        let per_ds =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerDisconnectionSet, false);
        let per_border =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerFragmentBorder, false);
        let has_cross = |c: &ComplementaryInfo| {
            c.shortcuts(0)
                .iter()
                .any(|e| e.src == NodeId(2) && e.dst == NodeId(4))
        };
        assert!(per_border.pair_count() >= per_ds.pair_count());
        assert!(
            has_cross(&per_border),
            "fragment scope covers cross-DS border pairs"
        );
    }

    #[test]
    fn parallel_precompute_matches_sequential() {
        let g = ds_gen::generate_transportation(&ds_gen::TransportationConfig::table1(), 3);
        let frag = ds_fragment::semantic::by_labels(
            g.nodes,
            &g.connections,
            g.cluster_of.as_ref().unwrap(),
            4,
            ds_fragment::CrossingPolicy::LowerBlock,
        )
        .unwrap();
        let csr = g.closure_graph();
        let seq =
            ComplementaryInfo::compute(&csr, &frag, ComplementaryScope::PerFragmentBorder, false);
        let par = ComplementaryInfo::compute_with_threads(
            &csr,
            &frag,
            ComplementaryScope::PerFragmentBorder,
            false,
            4,
        );
        assert_eq!(seq.pair_count(), par.pair_count());
        for f in 0..frag.fragment_count() {
            assert_eq!(seq.shortcuts(f), par.shortcuts(f), "site {f}");
        }
    }

    #[test]
    fn skeleton_matches_global_sweep_tables_and_paths() {
        let g = ds_gen::generate_transportation(&ds_gen::TransportationConfig::table1(), 5);
        let frag = ds_fragment::semantic::by_labels(
            g.nodes,
            &g.connections,
            g.cluster_of.as_ref().unwrap(),
            4,
            ds_fragment::CrossingPolicy::LowerBlock,
        )
        .unwrap();
        let csr = g.closure_graph();
        for scope in [
            ComplementaryScope::PerDisconnectionSet,
            ComplementaryScope::PerFragmentBorder,
        ] {
            let skel = ComplementaryInfo::compute(&csr, &frag, scope, true);
            let glob = ComplementaryInfo::compute_global_sweep(&csr, &frag, scope, true);
            assert_eq!(skel.border_count(), glob.border_count(), "{scope:?}");
            assert_eq!(skel.pair_count(), glob.pair_count(), "{scope:?}");
            for f in 0..frag.fragment_count() {
                assert_eq!(skel.shortcuts(f), glob.shortcuts(f), "{scope:?} site {f}");
                // Stitched paths are real paths of the right cost.
                for e in skel.shortcuts(f) {
                    let p = skel.path(e.src, e.dst).expect("path stored");
                    assert_eq!(*p.first().unwrap(), e.src);
                    assert_eq!(*p.last().unwrap(), e.dst);
                    let mut total = 0;
                    for hop in p.windows(2) {
                        total += csr
                            .neighbors(hop[0])
                            .filter(|(t, _)| *t == hop[1])
                            .map(|(_, c)| c)
                            .min()
                            .unwrap_or_else(|| panic!("{:?}->{:?} not an edge", hop[0], hop[1]));
                    }
                    assert_eq!(total, e.cost, "{scope:?} stitched path cost");
                }
            }
        }
    }

    #[test]
    fn precompute_stats_report_phases() {
        let (g, frag) = setup();
        let skel = ComplementaryInfo::compute(&g, &frag, ComplementaryScope::default(), false);
        assert_eq!(
            skel.precompute_stats().strategy,
            PrecomputeStrategy::Skeleton
        );
        assert!(skel.precompute_stats().total_ns() > 0);
        let glob = ComplementaryInfo::compute_global_sweep(
            &g,
            &frag,
            ComplementaryScope::default(),
            false,
        );
        assert_eq!(
            glob.precompute_stats().strategy,
            PrecomputeStrategy::GlobalSweep
        );
        assert_eq!(glob.precompute_stats().skeleton_close_ns, 0);
    }

    #[test]
    fn unreachable_border_pairs_are_skipped() {
        // Directed path 0 -> 1 -> 2; fragments [0->1] and [1->2]; border 1.
        // Add node 3 shared but unreachable: fragments [0->1, 3 seeded].
        let e01 = vec![GEdge::unit(NodeId(0), NodeId(1))];
        let e12 = vec![GEdge::unit(NodeId(1), NodeId(2))];
        let g = CsrGraph::from_edges(4, &[e01[0], e12[0]]);
        let frag = Fragmentation::new(4, vec![e01, e12], vec![vec![NodeId(3)], vec![NodeId(3)]]);
        let comp =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerFragmentBorder, false);
        // Border nodes are 1 and 3; only pairs with finite global distance
        // are stored; 1 and 3 are mutually unreachable.
        assert_eq!(comp.border_count(), 2);
        assert_eq!(comp.pair_count(), 0);
    }
}
