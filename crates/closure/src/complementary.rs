//! Complementary information: the precomputed border-to-border shortest
//! distances that make fragment-local evaluation exact.
//!
//! §2.1: "it is required to store in addition some complementary
//! information about the identity of border cities and the properties of
//! their connections … for the shortest path problem it is required to
//! precompute the shortest path among any two cities on the border
//! between two fragments. Complementary information about the
//! disconnection set DS_ij is stored at both sites storing the fragments
//! R_i and R_j."
//!
//! The distances are *global* shortest-path distances — that is what makes
//! a chain evaluation exact even when the true shortest path briefly
//! leaves the chain: "the shortest path might include nodes outside the
//! chain, however, their contribution is precomputed in the complementary
//! information" (footnote 3).
//!
//! Two scopes are provided:
//! * [`ComplementaryScope::PerDisconnectionSet`] — exactly the paper's
//!   rule: pairs within each `DS_ij`. Exact when the fragmentation graph
//!   is loosely connected (acyclic), the paper's stated assumption.
//! * [`ComplementaryScope::PerFragmentBorder`] — pairs over *all* border
//!   nodes of each fragment. A strict superset that stays exact on
//!   *cyclic* fragmentation graphs too (an excursion out of a fragment can
//!   then return through a different disconnection set; covering all
//!   border pairs of the fragment closes that hole). This is the default,
//!   and the extra storage is measured in the `ablation-crossing`
//!   experiments.

use std::collections::{BTreeSet, HashMap};

use ds_fragment::Fragmentation;
use ds_graph::{dijkstra, CsrGraph, Edge, NodeId};

/// Which border pairs get a precomputed shortcut.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ComplementaryScope {
    /// Pairs within each disconnection set (the paper's rule; exact for
    /// loosely connected fragmentations).
    PerDisconnectionSet,
    /// All border-node pairs of each fragment (exact for any
    /// fragmentation).
    #[default]
    PerFragmentBorder,
}

/// The precomputed shortcut tables, per site.
#[derive(Clone, Debug)]
pub struct ComplementaryInfo {
    /// `shortcuts[f]` — directed shortcut edges `(u, v, global_dist)`
    /// stored at site `f`.
    shortcuts: Vec<Vec<Edge>>,
    /// Concrete global paths backing each shortcut (for route
    /// reconstruction), when requested.
    paths: Option<HashMap<(NodeId, NodeId), Vec<NodeId>>>,
    /// Number of distinct border nodes.
    border_count: usize,
    /// Total shortcut tuples stored (the paper's "pre-computed
    /// information" volume).
    pair_count: usize,
}

impl ComplementaryInfo {
    /// Precompute the complementary information for a fragmentation over
    /// `graph` (the directed closure graph).
    ///
    /// `store_paths` additionally keeps one concrete shortest path per
    /// shortcut so full routes can be reconstructed later.
    pub fn compute(
        graph: &CsrGraph,
        frag: &Fragmentation,
        scope: ComplementaryScope,
        store_paths: bool,
    ) -> Self {
        Self::compute_with_threads(graph, frag, scope, store_paths, 1)
    }

    /// Like [`ComplementaryInfo::compute`], but runs the per-border-node
    /// Dijkstras on `threads` OS threads. The precomputation itself
    /// parallelizes embarrassingly (one independent single-source problem
    /// per border node) — the same observation that makes phase one of
    /// query processing communication-free.
    pub fn compute_with_threads(
        graph: &CsrGraph,
        frag: &Fragmentation,
        scope: ComplementaryScope,
        store_paths: bool,
        threads: usize,
    ) -> Self {
        let per_site_borders = site_border_sets(frag, scope);
        let all_borders: BTreeSet<NodeId> = per_site_borders
            .iter()
            .flat_map(|sets| sets.iter().flatten().copied())
            .collect();

        // One global Dijkstra per border node, reused across all sets the
        // node appears in. This is the pre-processing cost the paper warns
        // about ("the pre-processing required for building the
        // complementary information").
        let border_list: Vec<NodeId> = all_borders.iter().copied().collect();
        let mut dist_from: HashMap<NodeId, dijkstra::ShortestPaths> = HashMap::new();
        if threads <= 1 || border_list.len() < 2 {
            for &b in &border_list {
                dist_from.insert(b, dijkstra::single_source(graph, b));
            }
        } else {
            let chunk = border_list.len().div_ceil(threads);
            let results: Vec<Vec<(NodeId, dijkstra::ShortestPaths)>> = std::thread::scope(|s| {
                let handles: Vec<_> = border_list
                    .chunks(chunk)
                    .map(|nodes| {
                        s.spawn(move || {
                            nodes
                                .iter()
                                .map(|&b| (b, dijkstra::single_source(graph, b)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("precompute thread panicked"))
                    .collect()
            });
            for batch in results {
                dist_from.extend(batch);
            }
        }

        let mut shortcuts: Vec<Vec<Edge>> = vec![Vec::new(); frag.fragment_count()];
        let mut paths: Option<HashMap<(NodeId, NodeId), Vec<NodeId>>> =
            store_paths.then(HashMap::new);
        let mut pair_count = 0usize;
        for (site, groups) in per_site_borders.iter().enumerate() {
            let mut seen: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            for group in groups {
                for &u in group {
                    let sp = &dist_from[&u];
                    for &v in group {
                        if u == v || !seen.insert((u, v)) {
                            continue;
                        }
                        if let Some(cost) = sp.cost(v) {
                            shortcuts[site].push(Edge::new(u, v, cost));
                            pair_count += 1;
                            if let Some(p) = paths.as_mut() {
                                p.entry((u, v))
                                    .or_insert_with(|| sp.path_to(v).expect("cost is finite"));
                            }
                        }
                    }
                }
            }
        }

        ComplementaryInfo {
            shortcuts,
            paths,
            border_count: all_borders.len(),
            pair_count,
        }
    }

    /// Shortcut edges stored at site `f`.
    pub fn shortcuts(&self, f: usize) -> &[Edge] {
        &self.shortcuts[f]
    }

    /// The concrete path behind shortcut `(u, v)`, if paths were stored.
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<&[NodeId]> {
        self.paths.as_ref()?.get(&(u, v)).map(|p| p.as_slice())
    }

    /// Whether concrete paths were stored.
    pub fn has_paths(&self) -> bool {
        self.paths.is_some()
    }

    /// Number of distinct border nodes.
    pub fn border_count(&self) -> usize {
        self.border_count
    }

    /// Total shortcut tuples across all sites (storage cost measure).
    pub fn pair_count(&self) -> usize {
        self.pair_count
    }

    /// Apply a refinement to every shortcut tuple: `f` returns the new
    /// cost (plus, when paths are stored, the new concrete path) or `None`
    /// to keep the current tuple. Returns per-site counts of tuples that
    /// changed. Used by incremental insert maintenance
    /// (`dist' = min(dist, dist(a,u) + c + dist(v,b))`).
    pub fn refine(
        &mut self,
        f: impl Fn(&Edge) -> Option<(u64, Option<Vec<NodeId>>)>,
    ) -> Vec<usize> {
        let mut changed = vec![0usize; self.shortcuts.len()];
        for (site, tuples) in self.shortcuts.iter_mut().enumerate() {
            for e in tuples {
                if let Some((new_cost, new_path)) = f(e) {
                    debug_assert!(new_cost <= e.cost, "insertions only shorten paths");
                    if new_cost != e.cost {
                        if let (Some(map), Some(p)) = (self.paths.as_mut(), new_path) {
                            map.insert((e.src, e.dst), p);
                        }
                        e.cost = new_cost;
                        changed[site] += 1;
                    }
                }
            }
        }
        changed
    }

    /// Re-derive every shortcut rooted at one of `sources` from the
    /// post-update `graph` (deletion repair: distances may have grown).
    /// One Dijkstra per distinct source, shared across all sites storing
    /// its tuples. Returns per-site counts of tuples changed, or the first
    /// border pair that became unreachable — the caller must then fall
    /// back to a full recompute (`self` may be partially updated when
    /// that happens; the recompute overwrites it wholesale).
    pub fn repair_sources(
        &mut self,
        graph: &CsrGraph,
        sources: &BTreeSet<NodeId>,
    ) -> Result<Vec<usize>, (NodeId, NodeId)> {
        let mut changed = vec![0usize; self.shortcuts.len()];
        if sources.is_empty() {
            return Ok(changed);
        }
        let mut sweeps: HashMap<NodeId, dijkstra::ShortestPaths> = HashMap::new();
        for (site, tuples) in self.shortcuts.iter_mut().enumerate() {
            for e in tuples {
                if !sources.contains(&e.src) {
                    continue;
                }
                let sp = sweeps
                    .entry(e.src)
                    .or_insert_with(|| dijkstra::single_source(graph, e.src));
                let Some(cost) = sp.cost(e.dst) else {
                    return Err((e.src, e.dst));
                };
                if cost != e.cost {
                    e.cost = cost;
                    changed[site] += 1;
                    if let Some(map) = self.paths.as_mut() {
                        map.insert((e.src, e.dst), sp.path_to(e.dst).expect("cost is finite"));
                    }
                } else if let Some(map) = self.paths.as_mut() {
                    // Cost unchanged, but the stored path may have used the
                    // deleted connection (it was *a* shortest path); replace
                    // it with a currently valid one.
                    map.insert((e.src, e.dst), sp.path_to(e.dst).expect("cost is finite"));
                }
            }
        }
        Ok(changed)
    }
}

/// For each site, the groups of border nodes whose pairs get shortcuts:
/// one group per adjacent DS (paper scope) or a single group of all the
/// fragment's border nodes (fragment scope).
fn site_border_sets(frag: &Fragmentation, scope: ComplementaryScope) -> Vec<Vec<Vec<NodeId>>> {
    let n = frag.fragment_count();
    let mut out: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); n];
    let ds = frag.disconnection_sets();
    match scope {
        ComplementaryScope::PerDisconnectionSet => {
            for (&(i, j), nodes) in &ds {
                out[i].push(nodes.clone());
                out[j].push(nodes.clone());
            }
        }
        ComplementaryScope::PerFragmentBorder => {
            let mut border_of: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
            for (&(i, j), nodes) in &ds {
                border_of[i].extend(nodes.iter().copied());
                border_of[j].extend(nodes.iter().copied());
            }
            for (site, set) in border_of.into_iter().enumerate() {
                if !set.is_empty() {
                    out[site].push(set.into_iter().collect());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::deterministic::path;
    use ds_graph::Edge as GEdge;

    /// Path 0-1-2-3-4 fragmented [0-1,1-2] / [2-3,3-4]: border node 2.
    fn setup() -> (CsrGraph, Fragmentation) {
        let g = path(5);
        let edges = |pairs: &[(u32, u32)]| -> Vec<GEdge> {
            pairs
                .iter()
                .map(|&(a, b)| GEdge::unit(NodeId(a), NodeId(b)))
                .collect()
        };
        let frag = Fragmentation::new(
            5,
            vec![edges(&[(0, 1), (1, 2)]), edges(&[(2, 3), (3, 4)])],
            vec![vec![], vec![]],
        );
        (g.closure_graph(), frag)
    }

    #[test]
    fn single_border_node_yields_no_pairs() {
        let (g, frag) = setup();
        let comp =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerDisconnectionSet, false);
        assert_eq!(comp.border_count(), 1);
        assert_eq!(comp.pair_count(), 0, "a singleton DS has no pairs");
        assert!(comp.shortcuts(0).is_empty());
    }

    #[test]
    fn two_border_nodes_get_global_distances() {
        // Cycle of 6 split into two halves sharing nodes 0 and 3.
        let g = ds_gen::deterministic::cycle(6);
        let edges = |pairs: &[(u32, u32)]| -> Vec<GEdge> {
            pairs
                .iter()
                .map(|&(a, b)| GEdge::unit(NodeId(a), NodeId(b)))
                .collect()
        };
        let frag = Fragmentation::new(
            6,
            vec![
                edges(&[(0, 1), (1, 2), (2, 3)]),
                edges(&[(3, 4), (4, 5), (5, 0)]),
            ],
            vec![vec![], vec![]],
        );
        let csr = g.closure_graph();
        let comp =
            ComplementaryInfo::compute(&csr, &frag, ComplementaryScope::PerDisconnectionSet, true);
        assert_eq!(comp.border_count(), 2);
        // Pairs (0,3) and (3,0) at both sites.
        assert_eq!(comp.pair_count(), 4);
        let s0 = comp.shortcuts(0);
        let shortcut = s0
            .iter()
            .find(|e| e.src == NodeId(0) && e.dst == NodeId(3))
            .unwrap();
        assert_eq!(shortcut.cost, 3, "global distance around the cycle");
        let p = comp.path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 4, "3 hops = 4 nodes");
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[3], NodeId(3));
    }

    #[test]
    fn fragment_border_scope_covers_cross_ds_pairs() {
        // Three fragments in a triangle of paths: fragment 0 borders both
        // 1 (node 2) and 2 (node 4). Fragment scope must add the (2,4)
        // pair at site 0; the per-DS scope must not.
        let edges = |pairs: &[(u32, u32)]| -> Vec<GEdge> {
            pairs
                .iter()
                .flat_map(|&(a, b)| {
                    [
                        GEdge::unit(NodeId(a), NodeId(b)),
                        GEdge::unit(NodeId(b), NodeId(a)),
                    ]
                })
                .collect()
        };
        let all = edges(&[(0, 2), (2, 3), (3, 4), (4, 0), (2, 4)]);
        let g = CsrGraph::from_edges(5, &all);
        let frag = Fragmentation::new(
            5,
            vec![
                edges(&[(0, 2), (4, 0)]),
                edges(&[(2, 3)]),
                edges(&[(3, 4), (2, 4)]),
            ],
            vec![vec![], vec![], vec![]],
        );
        let per_ds =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerDisconnectionSet, false);
        let per_border =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerFragmentBorder, false);
        let has_cross = |c: &ComplementaryInfo| {
            c.shortcuts(0)
                .iter()
                .any(|e| e.src == NodeId(2) && e.dst == NodeId(4))
        };
        assert!(per_border.pair_count() >= per_ds.pair_count());
        assert!(
            has_cross(&per_border),
            "fragment scope covers cross-DS border pairs"
        );
    }

    #[test]
    fn parallel_precompute_matches_sequential() {
        let g = ds_gen::generate_transportation(&ds_gen::TransportationConfig::table1(), 3);
        let frag = ds_fragment::semantic::by_labels(
            g.nodes,
            &g.connections,
            g.cluster_of.as_ref().unwrap(),
            4,
            ds_fragment::CrossingPolicy::LowerBlock,
        )
        .unwrap();
        let csr = g.closure_graph();
        let seq =
            ComplementaryInfo::compute(&csr, &frag, ComplementaryScope::PerFragmentBorder, false);
        let par = ComplementaryInfo::compute_with_threads(
            &csr,
            &frag,
            ComplementaryScope::PerFragmentBorder,
            false,
            4,
        );
        assert_eq!(seq.pair_count(), par.pair_count());
        for f in 0..frag.fragment_count() {
            assert_eq!(seq.shortcuts(f), par.shortcuts(f), "site {f}");
        }
    }

    #[test]
    fn unreachable_border_pairs_are_skipped() {
        // Directed path 0 -> 1 -> 2; fragments [0->1] and [1->2]; border 1.
        // Add node 3 shared but unreachable: fragments [0->1, 3 seeded].
        let e01 = vec![GEdge::unit(NodeId(0), NodeId(1))];
        let e12 = vec![GEdge::unit(NodeId(1), NodeId(2))];
        let g = CsrGraph::from_edges(4, &[e01[0], e12[0]]);
        let frag = Fragmentation::new(4, vec![e01, e12], vec![vec![NodeId(3)], vec![NodeId(3)]]);
        let comp =
            ComplementaryInfo::compute(&g, &frag, ComplementaryScope::PerFragmentBorder, false);
        // Border nodes are 1 and 3; only pairs with finite global distance
        // are stored; 1 and 3 are mutually unreachable.
        assert_eq!(comp.border_count(), 2);
        assert_eq!(comp.pair_count(), 0);
    }
}
