//! The backend-polymorphic query surface of the disconnection set
//! approach.
//!
//! The paper's phase-one independence means the *same* pipeline —
//! complementary information, chain planning, fragment-local evaluation,
//! min-plus assembly — can execute on very different substrates: inside
//! the calling process ([`crate::engine::DisconnectionSetEngine`]) or on a
//! simulated shared-nothing machine with one thread per site
//! (`ds_machine::Machine`). [`TcEngine`] captures that shared surface so
//! examples, tests and benchmarks drive every backend through one code
//! path, and so backends can be swapped declaratively (see the umbrella
//! crate's `System` builder).
//!
//! The module also hosts the pieces both backends share:
//!
//! * [`build_parts`] — the one build path (complementary info, augmented
//!   site graphs, planner) that both backends deploy from;
//! * [`BatchPlanner`] — chain planning amortized across a batch: the
//!   expensive chain enumeration runs once per (source-fragment,
//!   target-fragment) pair instead of once per query;
//! * [`run_batch`] — the batch driver: besides reusing plans, it caches
//!   the *interior* segment relations of each fragment chain (those
//!   depend only on the disconnection sets, not on the query endpoints),
//!   so a batch of k queries along one chain of length L costs
//!   `L - 2 + 2k` site subqueries instead of `L·k`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use ds_fragment::{FragmentId, Fragmentation};
use ds_graph::{Cost, CsrGraph, Edge, NodeId};
use ds_obs::{ChainEval, EvalTrace, TraceId};
use ds_relation::{PathTuple, Relation};

use crate::assemble;
use crate::complementary::{ComplementaryInfo, PrecomputeStats};
use crate::engine::{EngineConfig, QueryAnswer, QueryStats, Route};
use crate::error::ClosureError;
use crate::local::augmented_graph;
use crate::planner::{ChainPlan, Planner, QueryPlan};
use crate::snapshot::EngineSnapshot;
use crate::updates::{UpdateBatchReport, UpdateReport};

/// One shortest-path request of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    pub source: NodeId,
    pub target: NodeId,
}

impl QueryRequest {
    pub fn new(source: NodeId, target: NodeId) -> Self {
        QueryRequest { source, target }
    }
}

impl From<(NodeId, NodeId)> for QueryRequest {
    fn from((source, target): (NodeId, NodeId)) -> Self {
        QueryRequest { source, target }
    }
}

/// Amortization accounting for one [`TcEngine::query_batch`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requests in the batch.
    pub queries: usize,
    /// Chain enumerations actually performed — one per distinct
    /// (source-fragments, target-fragments) pair.
    pub plans_computed: usize,
    /// Queries that reused a previously enumerated chain set.
    pub plans_reused: usize,
    /// Segment relations evaluated at a site.
    pub segments_computed: usize,
    /// Segment relations served from the interior cache (no site work).
    pub segments_reused: usize,
}

impl BatchStats {
    /// Fraction of per-query work avoided: reused / (computed + reused),
    /// over plans and segments combined. 0.0 for a batch with no sharing.
    pub fn amortization(&self) -> f64 {
        let reused = (self.plans_reused + self.segments_reused) as f64;
        let total = reused + (self.plans_computed + self.segments_computed) as f64;
        if total == 0.0 {
            0.0
        } else {
            reused / total
        }
    }
}

/// Result of a batch: one [`QueryAnswer`] per request, in request order,
/// plus the batch-level amortization stats. Per-answer [`QueryStats`]
/// count only the site work actually performed *for that query* — work
/// served from the batch caches shows up in [`BatchStats`] instead.
#[derive(Clone, Debug)]
pub struct BatchAnswer {
    pub answers: Vec<QueryAnswer>,
    pub stats: BatchStats,
}

impl BatchAnswer {
    /// The costs, in request order.
    pub fn costs(&self) -> Vec<Option<Cost>> {
        self.answers.iter().map(|a| a.cost).collect()
    }
}

/// A network change, expressed backend-independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkUpdate {
    /// Insert a connection into fragment `owner` (both endpoints must
    /// already belong to it; see
    /// [`crate::engine::DisconnectionSetEngine::insert_connection`]).
    Insert { edge: Edge, owner: FragmentId },
    /// Remove every connection `src -> dst` (and the reverse on symmetric
    /// networks) from fragment `owner`.
    Remove {
        src: NodeId,
        dst: NodeId,
        owner: FragmentId,
    },
}

/// The transitive closure query surface every execution backend offers.
///
/// Implementations answer exactly like the centralized baseline
/// (`crate::baseline`) on the default complementary scope — that is the
/// paper's correctness contract, and `tests/properties.rs` asserts it for
/// every backend. Methods take `&mut self` because message-passing
/// backends mutate coordinator state (correlation tags, accounting) even
/// on reads.
pub trait TcEngine {
    /// Short backend identifier ("inline", "site-threads", …).
    fn backend_name(&self) -> &'static str;

    /// Number of sites (fragments = processors).
    fn site_count(&self) -> usize;

    /// The fragmentation this engine serves.
    fn fragmentation(&self) -> &Fragmentation;

    /// Shortest-path cost from `x` to `y`, with chain/stats detail.
    /// Endpoints outside every fragment yield an unreachable answer.
    fn shortest_path(&mut self, x: NodeId, y: NodeId) -> QueryAnswer;

    /// Connection query — "is `x` connected to `y`?".
    fn connected(&mut self, x: NodeId, y: NodeId) -> bool {
        x == y || self.shortest_path(x, y).cost.is_some()
    }

    /// Reconstruct the full cheapest route. Backends that do not retain
    /// shortcut paths return [`ClosureError::RoutesNotEnabled`].
    fn route(&mut self, x: NodeId, y: NodeId) -> Result<Option<Route>, ClosureError>;

    /// Apply a network update, keeping answers exact afterwards.
    fn update(&mut self, update: &NetworkUpdate) -> Result<UpdateReport, ClosureError>;

    /// Per-phase timing of the pre-processing that deployed this engine
    /// (the paper's dominant cost): local sweeps, skeleton closure, table
    /// assembly. After a fallback full recompute, reflects the latest
    /// recompute.
    fn precompute_stats(&self) -> PrecomputeStats;

    /// An immutable, `Send + Sync` snapshot of this engine's current
    /// state (tables, augmented graphs, planner), ready to be shared
    /// across reader threads — the input to the `ds_serve` worker pool.
    /// The snapshot is independent of the engine: later updates to either
    /// side do not affect the other.
    fn snapshot(&self) -> EngineSnapshot;

    /// Apply a sequence of updates in order, collecting per-update
    /// reports. Stops at (and returns) the first error; updates applied
    /// before it remain applied.
    fn update_batch(
        &mut self,
        updates: &[NetworkUpdate],
    ) -> Result<UpdateBatchReport, ClosureError> {
        let mut reports = Vec::with_capacity(updates.len());
        for u in updates {
            reports.push(self.update(u)?);
        }
        Ok(UpdateBatchReport { reports })
    }

    /// Answer many shortest-path requests, amortizing chain planning (and
    /// interior segment evaluation) across the batch. Semantically
    /// equivalent to calling [`TcEngine::shortest_path`] per request.
    fn query_batch(&mut self, requests: &[QueryRequest]) -> BatchAnswer;
}

/// The real (non-shortcut) hops available at one site, with costs — used
/// to tell shortcut hops apart during route expansion.
pub type RealHopSet = HashSet<(NodeId, NodeId, Cost)>;

/// The shared pre-processing outcome both backends deploy from: the
/// paper's complementary information, the per-site augmented graphs, the
/// real (non-shortcut) hops per site, and the chain planner.
///
/// Every per-site component lives behind its own [`Arc`] (as do the
/// per-site shortcut tables inside [`ComplementaryInfo`]), so a snapshot
/// built from these parts clones in O(sites) and an updated successor
/// shares every untouched site's data with its predecessor.
#[derive(Clone, Debug)]
pub struct EngineParts {
    pub comp: ComplementaryInfo,
    pub augmented: Vec<Arc<CsrGraph>>,
    /// Per site: the real hops available locally.
    pub real_hops: Vec<Arc<RealHopSet>>,
    pub planner: Arc<Planner>,
}

/// Run the build path shared by every backend: validate, compute
/// complementary information (the paper's pre-processing phase), build
/// the per-site augmented graphs and the planner. The local-sweep phase
/// runs on [`EngineConfig::precompute_threads`] OS threads.
pub fn build_parts(
    graph: &CsrGraph,
    frag: &Fragmentation,
    symmetric: bool,
    cfg: &EngineConfig,
) -> Result<EngineParts, ClosureError> {
    if graph.node_count() != frag.node_count() {
        return Err(ClosureError::NodeCountMismatch {
            graph: graph.node_count(),
            fragmentation: frag.node_count(),
        });
    }
    let comp = ComplementaryInfo::compute_with_threads(
        graph,
        frag,
        cfg.scope,
        cfg.store_paths,
        cfg.precompute_threads,
    );
    let n = graph.node_count();
    let mut augmented = Vec::with_capacity(frag.fragment_count());
    let mut real_hops = Vec::with_capacity(frag.fragment_count());
    for f in frag.fragments() {
        augmented.push(Arc::new(augmented_graph(
            n,
            f.edges(),
            symmetric,
            comp.shortcuts(f.id()),
        )));
        let mut hops = HashSet::with_capacity(f.edges().len() * 2);
        for e in f.edges() {
            hops.insert((e.src, e.dst, e.cost));
            if symmetric {
                hops.insert((e.dst, e.src, e.cost));
            }
        }
        real_hops.push(Arc::new(hops));
    }
    let planner = Arc::new(Planner::new(
        frag,
        cfg.max_chains,
        cfg.max_chain_len,
        cfg.hub,
    ));
    Ok(EngineParts {
        comp,
        augmented,
        real_hops,
        planner,
    })
}

/// Validate a [`NetworkUpdate`] against `frag` and apply its structural
/// half, shared by every backend: mutate the owner fragment and return
/// the rebuilt global closure graph (`None` when a removal matched
/// nothing). Backends follow up through `crate::updates::maintain` —
/// the inline engine patches its shortcut tables and augmented graphs,
/// the machine ships `Delta` messages to the touched sites.
///
/// Update maintenance assumes the partition invariant the fragmenters
/// guarantee (see `Fragmentation::validate`): the closure graph equals
/// the symmetric expansion of the fragment-edge union. Removals rebuild
/// the graph from that union, so a caller that paired a `Prebuilt`
/// fragmentation with a *different* connection relation would see the
/// first removal re-derive the graph from the fragments.
pub fn apply_update(
    graph: &CsrGraph,
    frag: &mut Fragmentation,
    symmetric: bool,
    update: &NetworkUpdate,
) -> Result<Option<CsrGraph>, ClosureError> {
    match *update {
        NetworkUpdate::Insert { edge, owner } => {
            validate_insert(frag, edge, owner)?;
            frag.fragment_mut(owner).add_edge(edge);
            let mut edges: Vec<Edge> = graph.edges().collect();
            edges.push(edge);
            if symmetric && !edge.is_loop() {
                edges.push(edge.reversed());
            }
            Ok(Some(CsrGraph::from_edges(graph.node_count(), &edges)))
        }
        NetworkUpdate::Remove { src, dst, owner } => {
            if owner >= frag.fragment_count() {
                return Err(ClosureError::NodeNotInAnyFragment(src));
            }
            let matches = |e: &Edge| e.connects(src, dst, symmetric);
            if frag.fragment_mut(owner).remove_edges_matching(matches) == 0 {
                return Ok(None);
            }
            // Rebuild from the fragment union rather than filtering the old
            // graph: another fragment may own an identical (src, dst) tuple
            // that must survive the removal.
            let mut kept = Vec::with_capacity(graph.edge_count());
            for f in frag.fragments() {
                for e in f.edges() {
                    kept.push(*e);
                    if symmetric && !e.is_loop() {
                        kept.push(e.reversed());
                    }
                }
            }
            Ok(Some(CsrGraph::from_edges(graph.node_count(), &kept)))
        }
    }
}

/// The insert half of [`apply_update`]'s validation: `owner` must exist
/// and both endpoints must already belong to it. One definition, used
/// both here and by `crate::updates::maintain` *before* it detaches a
/// shared fragmentation (`Arc::make_mut`), so an invalid update can
/// never clone anything and the two checks can never diverge.
pub(crate) fn validate_insert(
    frag: &Fragmentation,
    edge: Edge,
    owner: FragmentId,
) -> Result<(), ClosureError> {
    if owner >= frag.fragment_count() {
        return Err(ClosureError::NodeNotInAnyFragment(edge.src));
    }
    for v in [edge.src, edge.dst] {
        if !frag.fragment(owner).contains_node(v) {
            return Err(ClosureError::NodeNotInAnyFragment(v));
        }
    }
    Ok(())
}

/// Chain planning with per-(source-fragments, target-fragments) caching.
///
/// [`Planner::plan`] does two things: enumerate the fragment chains
/// (expensive — graph search over the fragmentation graph, possibly
/// multi-chain on cyclic fragmentations) and instantiate site subqueries
/// for the concrete endpoints (cheap). The chain enumeration depends only
/// on the endpoints' fragment sets, so a batch caches it here.
pub struct BatchPlanner<'a> {
    planner: &'a Planner,
    cache: HashMap<(Vec<FragmentId>, Vec<FragmentId>), CachedChains>,
}

struct CachedChains {
    chains: Vec<Vec<FragmentId>>,
    enumerated: bool,
}

impl<'a> BatchPlanner<'a> {
    pub fn new(planner: &'a Planner) -> Self {
        BatchPlanner {
            planner,
            cache: HashMap::new(),
        }
    }

    /// Plan `x -> y`. The boolean reports whether the chain set was
    /// served from cache (plan reuse).
    pub fn plan(&mut self, x: NodeId, y: NodeId) -> Result<(QueryPlan, bool), ClosureError> {
        let fx = self.planner.fragments_of(x);
        if fx.is_empty() {
            return Err(ClosureError::NodeNotInAnyFragment(x));
        }
        let fy = self.planner.fragments_of(y);
        if fy.is_empty() {
            return Err(ClosureError::NodeNotInAnyFragment(y));
        }
        let key = (fx, fy);
        let reused = self.cache.contains_key(&key);
        if !reused {
            let (chains, enumerated) = self.planner.chain_sets(&key.0, &key.1);
            self.cache
                .insert(key.clone(), CachedChains { chains, enumerated });
        }
        let cached = &self.cache[&key];
        let chains = cached
            .chains
            .iter()
            .filter_map(|c| self.planner.instantiate_chain(c, x, y))
            .collect();
        Ok((
            QueryPlan {
                chains,
                enumerated: cached.enumerated,
            },
            reused,
        ))
    }
}

/// How a backend evaluates site subqueries for the shared batch driver.
///
/// `positions` indexes into `chain.queries`; implementations return the
/// segment relations in the same order and add the site accounting (site
/// queries run, tuples produced, busy time) to `stats`. The inline
/// backend runs them on the calling thread (or one thread each); the
/// machine backend turns each position into a request message.
pub trait SiteEvaluator {
    fn eval_positions(
        &mut self,
        chain: &ChainPlan,
        positions: &[usize],
        stats: &mut QueryStats,
    ) -> Vec<Relation<PathTuple>>;

    /// Called by [`run_batch_traced`] before each request's evaluation
    /// with that request's trace id, so message-passing backends can
    /// stamp the id into their protocol traffic. The default is a no-op;
    /// untraced batches never call it.
    fn begin_query(&mut self, _trace: TraceId) {}
}

/// The batch driver shared by every backend.
///
/// Per request: plan through the [`BatchPlanner`] (chain enumeration once
/// per fragment-pair), then evaluate each chain. For chains of length
/// ≥ 3 the interior subqueries — `DS(f_{i-1}, f_i) -> DS(f_i, f_{i+1})`,
/// which do not mention the query endpoints — are evaluated once per
/// distinct fragment chain and reused across the whole batch; only the
/// first and last site subqueries are endpoint-specific.
pub fn run_batch<E: SiteEvaluator>(
    planner: &Planner,
    eval: &mut E,
    requests: &[QueryRequest],
) -> BatchAnswer {
    run_batch_traced(planner, eval, requests, &[], None)
}

/// [`run_batch`] with request tracing: `traces[i]` is request `i`'s
/// [`TraceId`] (an empty slice means untraced — the [`run_batch`] fast
/// path), and when `sink` is given, one [`EvalTrace`] per request is
/// appended to it carrying the request's total evaluation time and
/// per-chain segment times. Before each traced request the driver calls
/// [`SiteEvaluator::begin_query`] so the backend can stamp the id into
/// its protocol messages. The untraced path takes no timestamps and
/// performs no extra work beyond one branch per request.
pub fn run_batch_traced<E: SiteEvaluator>(
    planner: &Planner,
    eval: &mut E,
    requests: &[QueryRequest],
    traces: &[TraceId],
    sink: Option<&mut Vec<EvalTrace>>,
) -> BatchAnswer {
    let bounded = run_batch_bounded(planner, eval, requests, traces, sink, &[]);
    BatchAnswer {
        answers: bounded
            .answers
            .into_iter()
            .map(|a| match a {
                Some(a) => a,
                // Without deadlines no request can be cancelled; keep
                // this arm total anyway (an unreachable unanswered slot
                // degrades to "unreachable", never to a panic).
                None => QueryAnswer {
                    cost: None,
                    best_chain: None,
                    stats: QueryStats::default(),
                },
            })
            .collect(),
        stats: bounded.stats,
    }
}

/// Result of a deadline-bounded batch ([`run_batch_bounded`]): `None`
/// marks a request abandoned at a deadline check instead of answered.
#[derive(Clone, Debug)]
pub struct BoundedBatchAnswer {
    pub answers: Vec<Option<QueryAnswer>>,
    pub stats: BatchStats,
}

/// [`run_batch_traced`] with cooperative cancellation: `deadlines[i]`
/// is request `i`'s absolute deadline (an empty slice, or `None` at a
/// position, means unbounded). The driver checks the clock between
/// requests and — inside a request — between fragment chains, so even
/// a pathological multi-chain evaluation is abandoned at the next
/// chain boundary rather than running to completion. A cancelled
/// request yields `None`; work already performed for it (plans,
/// interior segments) stays in the batch caches and keeps benefiting
/// the remaining requests. The serve tier threads each job's
/// admission-stamped deadline through here and resolves `None` slots
/// with [`ClosureError::DeadlineExceeded`].
pub fn run_batch_bounded<E: SiteEvaluator>(
    planner: &Planner,
    eval: &mut E,
    requests: &[QueryRequest],
    traces: &[TraceId],
    mut sink: Option<&mut Vec<EvalTrace>>,
    deadlines: &[Option<Instant>],
) -> BoundedBatchAnswer {
    let mut bp = BatchPlanner::new(planner);
    let mut interiors: HashMap<Vec<FragmentId>, Vec<Relation<PathTuple>>> = HashMap::new();
    let mut stats = BatchStats {
        queries: requests.len(),
        ..BatchStats::default()
    };
    let mut answers = Vec::with_capacity(requests.len());
    for (i, req) in requests.iter().enumerate() {
        let trace = traces.get(i).copied().unwrap_or(TraceId::NONE);
        if !traces.is_empty() {
            eval.begin_query(trace);
        }
        let mut et = sink.as_ref().map(|_| EvalTrace {
            trace,
            ..EvalTrace::default()
        });
        let t0 = sink.as_ref().map(|_| Instant::now());
        let deadline = deadlines.get(i).copied().flatten();
        answers.push(one_query(
            planner,
            eval,
            &mut bp,
            &mut interiors,
            &mut stats,
            req,
            et.as_mut(),
            deadline,
        ));
        if let (Some(sink), Some(mut et), Some(t0)) = (sink.as_deref_mut(), et, t0) {
            et.eval_ns = t0.elapsed().as_nanos() as u64;
            sink.push(et);
        }
    }
    BoundedBatchAnswer { answers, stats }
}

#[allow(clippy::too_many_arguments)]
fn one_query<E: SiteEvaluator>(
    planner: &Planner,
    eval: &mut E,
    bp: &mut BatchPlanner<'_>,
    interiors: &mut HashMap<Vec<FragmentId>, Vec<Relation<PathTuple>>>,
    bstats: &mut BatchStats,
    req: &QueryRequest,
    mut tr: Option<&mut EvalTrace>,
    deadline: Option<Instant>,
) -> Option<QueryAnswer> {
    let (x, y) = (req.source, req.target);
    if x == y {
        return Some(QueryAnswer {
            cost: Some(0),
            best_chain: planner.fragments_of(x).first().map(|&f| vec![f]),
            stats: QueryStats::default(),
        });
    }
    // Cooperative cancellation, checked before the (possibly expensive)
    // chain enumeration and again at every chain boundary below: a
    // request whose deadline has passed is abandoned, not evaluated.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return None;
    }
    let plan = match bp.plan(x, y) {
        Ok((plan, reused)) => {
            if reused {
                bstats.plans_reused += 1;
            } else {
                bstats.plans_computed += 1;
            }
            plan
        }
        // Endpoint in no fragment: unreachable, like shortest_path.
        Err(_) => {
            return Some(QueryAnswer {
                cost: None,
                best_chain: None,
                stats: QueryStats::default(),
            })
        }
    };
    let mut qstats = QueryStats {
        enumerated: plan.enumerated,
        ..QueryStats::default()
    };
    let mut best: Option<(Cost, Vec<FragmentId>)> = None;
    for (chain_idx, chain) in plan.chains.iter().enumerate() {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return None;
        }
        let chain_t0 = tr.as_ref().map(|_| std::time::Instant::now());
        qstats.chains_evaluated += 1;
        let l = chain.queries.len();
        let cost = if l <= 2 {
            // No interior: every subquery mentions an endpoint.
            let positions: Vec<usize> = (0..l).collect();
            let segs = eval.eval_positions(chain, &positions, &mut qstats);
            bstats.segments_computed += segs.len();
            assemble::chain_cost(&segs, x, y)
        } else {
            // The interior segments are assembled by reference from the
            // batch cache — evaluated at most once per fragment chain,
            // never cloned per query.
            if !interiors.contains_key(&chain.fragments) {
                let positions: Vec<usize> = (1..l - 1).collect();
                let segs = eval.eval_positions(chain, &positions, &mut qstats);
                bstats.segments_computed += segs.len();
                interiors.insert(chain.fragments.clone(), segs);
            } else {
                bstats.segments_reused += l - 2;
            }
            let interior = &interiors[&chain.fragments];
            let ends = eval.eval_positions(chain, &[0, l - 1], &mut qstats);
            bstats.segments_computed += ends.len();
            let mut segments: Vec<&Relation<PathTuple>> = Vec::with_capacity(l);
            segments.push(&ends[0]);
            segments.extend(interior.iter());
            segments.push(&ends[1]);
            assemble::chain_cost_refs(&segments, x, y)
        };
        if let (Some(tr), Some(t0)) = (tr.as_deref_mut(), chain_t0) {
            tr.chains.push(ChainEval {
                chain: chain_idx as u32,
                ns: t0.elapsed().as_nanos() as u64,
            });
        }
        if let Some(cost) = cost {
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, chain.fragments.clone()));
            }
        }
    }
    let (cost, best_chain) = match best {
        Some((c, ch)) => (Some(c), Some(ch)),
        None => (None, None),
    };
    Some(QueryAnswer {
        cost,
        best_chain,
        stats: qstats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::SiteQuery;
    use ds_graph::Edge;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
            .collect()
    }

    /// Path 0-1-2-3-4-5-6 in three fragments sharing nodes 2 and 4.
    fn three_fragment_path() -> Fragmentation {
        Fragmentation::new(
            7,
            vec![
                edges(&[(0, 1), (1, 2)]),
                edges(&[(2, 3), (3, 4)]),
                edges(&[(4, 5), (5, 6)]),
            ],
            vec![vec![], vec![], vec![]],
        )
    }

    /// Counts evaluations; answers with the local border matrix over the
    /// fragments' (symmetric) unit path graphs.
    struct CountingEval {
        augmented: Vec<CsrGraph>,
        evaluated: usize,
    }

    impl SiteEvaluator for CountingEval {
        fn eval_positions(
            &mut self,
            chain: &ChainPlan,
            positions: &[usize],
            stats: &mut QueryStats,
        ) -> Vec<Relation<PathTuple>> {
            positions
                .iter()
                .map(|&p| {
                    let q: &SiteQuery = &chain.queries[p];
                    self.evaluated += 1;
                    stats.site_queries += 1;
                    crate::local::border_matrix(&self.augmented[q.site], &q.sources, &q.targets)
                })
                .collect()
        }
    }

    fn counting_eval(frag: &Fragmentation) -> CountingEval {
        let augmented = frag
            .fragments()
            .iter()
            .map(|f| augmented_graph(frag.node_count(), f.edges(), true, &[]))
            .collect();
        CountingEval {
            augmented,
            evaluated: 0,
        }
    }

    #[test]
    fn batch_planner_caches_chain_sets() {
        let frag = three_fragment_path();
        let planner = Planner::new(&frag, 16, 8, None);
        let mut bp = BatchPlanner::new(&planner);
        let (_, reused1) = bp.plan(n(0), n(6)).unwrap();
        assert!(!reused1, "first plan computes");
        let (_, reused2) = bp.plan(n(1), n(5)).unwrap();
        assert!(reused2, "same fragment pair reuses the chain set");
        let (_, reused3) = bp.plan(n(0), n(1)).unwrap();
        assert!(!reused3, "different fragment pair computes");
    }

    #[test]
    fn batch_reuses_interior_segments() {
        let frag = three_fragment_path();
        let planner = Planner::new(&frag, 16, 8, None);
        let mut eval = counting_eval(&frag);
        // Three cross-chain queries share the one interior subquery of the
        // length-3 chain: 1 interior + 2 endpoints x 3 queries = 7 evals,
        // not 9.
        let requests: Vec<QueryRequest> = [(0, 6), (1, 5), (0, 5)]
            .iter()
            .map(|&(a, b)| (n(a), n(b)).into())
            .collect();
        let batch = run_batch(&planner, &mut eval, &requests);
        assert_eq!(batch.answers.len(), 3);
        for (i, a) in batch.answers.iter().enumerate() {
            assert!(a.cost.is_some(), "query {i} reachable");
        }
        assert_eq!(batch.answers[0].cost, Some(6), "0->6 over the unit path");
        assert_eq!(eval.evaluated, 7, "interior segment computed once");
        assert_eq!(batch.stats.plans_computed, 1);
        assert_eq!(batch.stats.plans_reused, 2);
        assert_eq!(batch.stats.segments_reused, 2);
        assert!(batch.stats.amortization() > 0.3);
    }

    #[test]
    fn batch_same_node_and_unknown_node() {
        let frag = Fragmentation::new(3, vec![edges(&[(0, 1)])], vec![vec![]]);
        let planner = Planner::new(&frag, 16, 8, None);
        let mut eval = counting_eval(&frag);
        let requests = vec![QueryRequest::new(n(1), n(1)), QueryRequest::new(n(0), n(2))];
        let batch = run_batch(&planner, &mut eval, &requests);
        assert_eq!(batch.answers[0].cost, Some(0));
        assert_eq!(
            batch.answers[1].cost, None,
            "node 2 in no fragment: unreachable"
        );
    }

    #[test]
    fn traced_batch_matches_untraced_and_times_chains() {
        let frag = three_fragment_path();
        let planner = Planner::new(&frag, 16, 8, None);
        let requests: Vec<QueryRequest> = [(0, 6), (1, 5), (3, 3)]
            .iter()
            .map(|&(a, b)| (n(a), n(b)).into())
            .collect();
        let plain = run_batch(&planner, &mut counting_eval(&frag), &requests);
        let traces: Vec<TraceId> = (1..=3).map(TraceId).collect();
        let mut sink = Vec::new();
        let traced = run_batch_traced(
            &planner,
            &mut counting_eval(&frag),
            &requests,
            &traces,
            Some(&mut sink),
        );
        assert_eq!(plain.costs(), traced.costs(), "tracing changes no answer");
        assert_eq!(sink.len(), 3, "one EvalTrace per request");
        for (i, et) in sink.iter().enumerate() {
            assert_eq!(et.trace, traces[i]);
        }
        // Cross-fragment queries evaluated at least one chain; the
        // same-node request (3,3) short-circuits with none.
        assert!(!sink[0].chains.is_empty());
        assert!(sink[2].chains.is_empty());
        assert!(sink[0].eval_ns >= sink[0].chains.iter().map(|c| c.ns).sum::<u64>());
    }

    #[test]
    fn begin_query_sees_each_trace_in_order() {
        struct SpyEval {
            inner: CountingEval,
            seen: Vec<TraceId>,
        }
        impl SiteEvaluator for SpyEval {
            fn eval_positions(
                &mut self,
                chain: &ChainPlan,
                positions: &[usize],
                stats: &mut QueryStats,
            ) -> Vec<Relation<PathTuple>> {
                self.inner.eval_positions(chain, positions, stats)
            }
            fn begin_query(&mut self, trace: TraceId) {
                self.seen.push(trace);
            }
        }
        let frag = three_fragment_path();
        let planner = Planner::new(&frag, 16, 8, None);
        let requests = vec![QueryRequest::new(n(0), n(6)), QueryRequest::new(n(1), n(4))];
        let mut eval = SpyEval {
            inner: counting_eval(&frag),
            seen: Vec::new(),
        };
        run_batch_traced(
            &planner,
            &mut eval,
            &requests,
            &[TraceId(9), TraceId(10)],
            None,
        );
        assert_eq!(eval.seen, vec![TraceId(9), TraceId(10)]);
        // Untraced batches never call begin_query.
        eval.seen.clear();
        run_batch(&planner, &mut eval, &requests);
        assert!(eval.seen.is_empty());
    }

    #[test]
    fn build_parts_rejects_node_count_mismatch() {
        let frag = three_fragment_path();
        let graph = CsrGraph::from_edges(9, &edges(&[(0, 1)]));
        assert!(matches!(
            build_parts(&graph, &frag, true, &EngineConfig::default()),
            Err(ClosureError::NodeCountMismatch { .. })
        ));
    }
}
