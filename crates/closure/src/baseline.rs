//! Centralized baselines the disconnection set engine is measured and
//! validated against: a single processor evaluating the query on the
//! whole, unfragmented relation.

use ds_graph::{dijkstra, matrix, traverse, Cost, CsrGraph, NodeId};
use ds_relation::{tc, PathTuple, Relation, TcStats};

/// Global point-to-point shortest path on the whole graph (Dijkstra with
/// early exit) — the correctness oracle for every engine query.
pub fn shortest_path_cost(graph: &CsrGraph, x: NodeId, y: NodeId) -> Option<Cost> {
    dijkstra::point_to_point(graph, x, y)
}

/// Global reachability on the whole graph.
pub fn reachable(graph: &CsrGraph, x: NodeId, y: NodeId) -> bool {
    traverse::is_reachable(graph, x, y)
}

/// Full all-pairs cost closure (Floyd–Warshall), for exhaustive
/// validation on small graphs.
pub fn all_pairs(graph: &CsrGraph) -> Vec<Vec<Cost>> {
    matrix::floyd_warshall(graph)
}

/// Single-processor semi-naive transitive closure from one source over
/// the whole relation, with iteration statistics — the configuration
/// whose iteration count the paper contrasts with the fragmented one
/// ("the number of iterations required before reaching a fixpoint is
/// given by the maximum diameter of the graph", §2.1).
pub fn seminaive_from(graph: &CsrGraph, source: NodeId) -> (Relation<PathTuple>, TcStats) {
    let rel = Relation::from_rows("R", graph.edges().map(PathTuple::from).collect::<Vec<_>>());
    tc::seminaive_closure(&rel, Some(&[source]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::deterministic::{cycle, grid};

    #[test]
    fn oracles_agree_with_each_other() {
        let g = grid(5, 4).closure_graph();
        let fw = all_pairs(&g);
        for x in g.nodes() {
            for y in g.nodes() {
                let p2p = shortest_path_cost(&g, x, y);
                assert_eq!(p2p, matrix::fw_cost(&fw, x, y));
                assert_eq!(p2p.is_some(), reachable(&g, x, y));
            }
        }
    }

    #[test]
    fn seminaive_matches_dijkstra_costs() {
        let g = cycle(7).closure_graph();
        let (rel, stats) = seminaive_from(&g, NodeId(0));
        assert!(stats.iterations <= 4, "diameter-bounded iterations");
        for y in g.nodes() {
            if y == NodeId(0) {
                continue;
            }
            assert_eq!(
                rel.cost_of(NodeId(0), y),
                shortest_path_cost(&g, NodeId(0), y)
            );
        }
    }
}
