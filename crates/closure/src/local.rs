//! Local subquery evaluation: the per-site work of phase one.
//!
//! Each site evaluates its recursive subquery on its fragment *augmented*
//! with the complementary shortcuts stored at that site ("including all
//! complementary information about disconnection sets stored at that
//! fragment", §2.1). The disconnection sets act as the selection — the
//! "keyhole" of §2.2: evaluation starts only from the entry border set
//! and only the exit border set is reported.
//!
//! The output of one subquery is a *very small relation* of
//! `(entry, exit, cost)` tuples, ready for the final binary joins.

use ds_graph::{dijkstra, Cost, CsrGraph, Edge, NodeId, ScratchDijkstra};
use ds_relation::{PathTuple, Relation};

/// A site's augmented local graph: fragment edges (symmetric expansion if
/// the network is symmetric) plus the site's complementary shortcuts.
pub fn augmented_graph(
    node_count: usize,
    fragment_edges: &[Edge],
    symmetric: bool,
    shortcuts: &[Edge],
) -> CsrGraph {
    let mut edges = Vec::with_capacity(fragment_edges.len() * 2 + shortcuts.len());
    for e in fragment_edges {
        edges.push(*e);
        if symmetric && !e.is_loop() {
            edges.push(e.reversed());
        }
    }
    edges.extend_from_slice(shortcuts);
    CsrGraph::from_edges(node_count, &edges)
}

/// Evaluate one local subquery: shortest distances from every node of
/// `sources` to every node of `targets` on the augmented graph.
/// One Dijkstra per source; the result relation has at most
/// `|sources| · |targets|` tuples. Allocates a fresh sweep per call —
/// hot paths hold a [`ScratchDijkstra`] and use [`border_matrix_with`].
pub fn border_matrix(
    aug: &CsrGraph,
    sources: &[NodeId],
    targets: &[NodeId],
) -> Relation<PathTuple> {
    let mut scratch = ScratchDijkstra::new();
    border_matrix_with(aug, sources, targets, &mut scratch)
}

/// [`border_matrix`] on a reusable scratch kernel: sweeps early-exit once
/// every target is settled and reuse the caller's stamped arrays, so the
/// steady-state per-query path performs no O(V) allocations.
pub fn border_matrix_with(
    aug: &CsrGraph,
    sources: &[NodeId],
    targets: &[NodeId],
    scratch: &mut ScratchDijkstra,
) -> Relation<PathTuple> {
    let mut rows = Vec::new();
    for &u in sources {
        scratch.sweep_to_targets(aug, &[(u, 0)], targets);
        for &v in targets {
            if let Some(cost) = scratch.cost(v) {
                rows.push(PathTuple::new(u, v, cost));
            }
        }
    }
    Relation::from_rows("border", rows)
}

/// Point evaluation within a single fragment (the same-fragment fast
/// path: "queries about the shortest path of two cities in Holland can be
/// answered by the Dutch railway computer system alone", §2.1).
pub fn point_query(aug: &CsrGraph, src: NodeId, dst: NodeId) -> Option<Cost> {
    dijkstra::point_to_point(aug, src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn augmented_graph_merges_fragment_and_shortcuts() {
        let frag = vec![Edge::new(n(0), n(1), 2)];
        let shortcuts = vec![Edge::new(n(1), n(2), 7)];
        let aug = augmented_graph(3, &frag, true, &shortcuts);
        assert_eq!(aug.edge_count(), 3); // 0->1, 1->0, shortcut 1->2
        assert_eq!(point_query(&aug, n(0), n(2)), Some(9));
        assert_eq!(
            point_query(&aug, n(2), n(0)),
            None,
            "shortcuts are directed"
        );
    }

    #[test]
    fn border_matrix_shape() {
        // Diamond fragment: 0->1 (1), 0->2 (5), 1->3 (1), 2->3 (1).
        let frag = vec![
            Edge::new(n(0), n(1), 1),
            Edge::new(n(0), n(2), 5),
            Edge::new(n(1), n(3), 1),
            Edge::new(n(2), n(3), 1),
        ];
        let aug = augmented_graph(4, &frag, false, &[]);
        let m = border_matrix(&aug, &[n(0), n(1)], &[n(3)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.cost_of(n(0), n(3)), Some(2));
        assert_eq!(m.cost_of(n(1), n(3)), Some(1));
    }

    #[test]
    fn border_matrix_drops_unreachable() {
        let frag = vec![Edge::unit(n(0), n(1))];
        let aug = augmented_graph(3, &frag, false, &[]);
        let m = border_matrix(&aug, &[n(0)], &[n(1), n(2)]);
        assert_eq!(m.len(), 1, "node 2 unreachable, no tuple");
    }

    #[test]
    fn symmetric_expansion_only_when_asked() {
        let frag = vec![Edge::unit(n(0), n(1))];
        let asym = augmented_graph(2, &frag, false, &[]);
        assert_eq!(point_query(&asym, n(1), n(0)), None);
        let sym = augmented_graph(2, &frag, true, &[]);
        assert_eq!(point_query(&sym, n(1), n(0)), Some(1));
    }
}
