//! The immutable half of an engine: everything queries read, nothing
//! they write.
//!
//! The paper's phase-one independence is a statement about *data*: query
//! evaluation only ever reads the precomputed complementary information,
//! the per-site augmented graphs and the planner. The mutable pieces of
//! an engine — the Dijkstra scratch, batch buffers — are per-*execution*
//! state, not per-*engine* state. [`EngineSnapshot`] makes that split
//! explicit:
//!
//! * a snapshot is `Send + Sync` and can be shared across any number of
//!   reader threads behind an `Arc` (the `ds_serve` crate does exactly
//!   that: one snapshot, one worker pool, per-worker scratch);
//! * every query method takes `&self` plus a caller-owned
//!   [`ScratchDijkstra`], so concurrent readers never contend;
//! * updates go through [`EngineSnapshot::maintain`], which mutates in
//!   place — an exclusive owner (the inline engine, the serve writer
//!   thread working on a private clone) applies the incremental
//!   maintenance of [`crate::updates`] and republishes.
//!
//! [`crate::engine::DisconnectionSetEngine`] is now a thin wrapper:
//! one snapshot plus one persistent scratch.
//!
//! ## Structural sharing
//!
//! Every per-site component — each augmented graph, each real-hop set,
//! and (inside [`ComplementaryInfo`]) each shortcut table — lives behind
//! its own `Arc`, as do the whole-graph pieces (global graph,
//! fragmentation, planner). Cloning a snapshot therefore costs O(sites)
//! refcount bumps, not a deep copy: that is what makes the serve
//! writer's per-epoch publication cheap. [`EngineSnapshot::maintain`]
//! preserves the sharing — it replaces exactly the Arcs of the sites an
//! update touched (via fresh allocations or [`std::sync::Arc::make_mut`])
//! and leaves every other site pointer-shared with the previous epoch.
//! `tests/properties.rs` asserts `Arc::ptr_eq` for untouched sites across
//! consecutive epochs on both fragmenter families.

use std::collections::HashSet;
use std::sync::Arc;

use ds_fragment::{FragmentId, Fragmentation};
use ds_graph::{Cost, CsrGraph, NodeId, ReachIndex, ScratchDijkstra};
use ds_relation::{PathTuple, Relation};

use crate::api::{
    build_parts, run_batch, BatchAnswer, EngineParts, NetworkUpdate, QueryRequest, RealHopSet,
    SiteEvaluator,
};
use crate::assemble;
use crate::complementary::{ComplementaryInfo, PrecomputeStats};
use crate::engine::{EngineConfig, QueryAnswer, QueryStats, Route};
use crate::error::ClosureError;
use crate::executor::run_chain;
use crate::local::augmented_graph;
use crate::planner::{ChainPlan, Planner};
use crate::updates::{ConnectivityEffect, UpdateReport};

/// The immutable, shareable state of a deployed engine: the global
/// closure graph, the fragmentation, the complementary tables, the
/// per-site augmented graphs and the chain planner.
///
/// A snapshot answers queries through `&self` methods that borrow a
/// caller-owned scratch kernel; it never locks and never allocates
/// per-query beyond the answer itself. Sharing is by `Arc`: the serve
/// subsystem publishes a snapshot per *epoch* and lets in-flight readers
/// finish on whatever epoch they started with.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    graph: Arc<CsrGraph>,
    frag: Arc<Fragmentation>,
    symmetric: bool,
    cfg: EngineConfig,
    comp: ComplementaryInfo,
    /// Per site, behind its own `Arc`: the site's augmented local graph.
    augmented: Vec<Arc<CsrGraph>>,
    /// Per site, behind its own `Arc`: the real (non-shortcut) hops
    /// available locally, with costs — used to tell shortcut hops apart
    /// during route expansion.
    real_hops: Vec<Arc<RealHopSet>>,
    planner: Arc<Planner>,
    /// SCC/chain reachability index over the global closure graph, the
    /// fast path behind [`EngineSnapshot::connected`]. `None` when
    /// [`EngineConfig::reach_index`] is off, or when the last update
    /// could have changed reachability (*stale*) — `connected` then
    /// falls back to the shortest-path machinery until
    /// [`EngineSnapshot::ensure_reach`] rebuilds it. Arc-shared across
    /// epochs like every other component: a kept index costs one
    /// refcount bump per publication.
    reach: Option<Arc<ReachIndex>>,
    /// Which backend's build path produced this snapshot ("inline",
    /// "site-threads") — reported by `ds_serve::ServeStats` so operators
    /// can see what they are serving.
    source_backend: &'static str,
}

/// What one [`EngineSnapshot::maintain_cow`] call replaced: the update
/// report plus the concrete per-site sharing outcome, so callers (and the
/// structural-sharing property tests) know exactly which sites' Arcs were
/// detached from the previous epoch.
#[derive(Clone, Debug)]
pub struct CowMaintenance {
    pub report: UpdateReport,
    /// The fragment whose edge set changed (`None` for a no-op removal):
    /// its augmented graph and real-hop set were replaced.
    pub owner: Option<FragmentId>,
    /// Sites whose shortcut table (and hence augmented graph) was
    /// replaced — every site after a fallback full recompute.
    pub shortcut_sites: Vec<FragmentId>,
    /// Union of `owner` and `shortcut_sites`, sorted: the sites whose
    /// components are *not* shared with the pre-update snapshot. Every
    /// other site remains `Arc::ptr_eq` with it.
    pub touched_sites: Vec<FragmentId>,
    /// Whether the reachability index survived this update (`true` also
    /// when the index is disabled — there was nothing to invalidate).
    /// `false` means the index was dropped as stale; `connected` falls
    /// back until [`EngineSnapshot::ensure_reach`] rebuilds it.
    pub reach_kept: bool,
}

impl EngineSnapshot {
    /// Build a snapshot from scratch: runs the shared build path
    /// ([`build_parts`]) and assembles the per-site real-hop sets.
    pub fn build(
        graph: CsrGraph,
        frag: Fragmentation,
        symmetric: bool,
        cfg: EngineConfig,
    ) -> Result<Self, ClosureError> {
        let parts = build_parts(&graph, &frag, symmetric, &cfg)?;
        Ok(Self::from_parts(
            graph, frag, symmetric, cfg, parts, "inline",
        ))
    }

    /// Wrap an already-built [`EngineParts`] (the shared pre-processing
    /// outcome both backends deploy from) into a snapshot.
    pub fn from_parts(
        graph: CsrGraph,
        frag: Fragmentation,
        symmetric: bool,
        cfg: EngineConfig,
        parts: EngineParts,
        source_backend: &'static str,
    ) -> Self {
        let reach = cfg.reach_index.then(|| Arc::new(ReachIndex::build(&graph)));
        EngineSnapshot {
            graph: Arc::new(graph),
            frag: Arc::new(frag),
            symmetric,
            cfg,
            comp: parts.comp,
            augmented: parts.augmented,
            real_hops: parts.real_hops,
            planner: parts.planner,
            reach,
            source_backend,
        }
    }

    /// Assemble a snapshot from retained coordinator state (graph,
    /// fragmentation, complementary tables, planner), rebuilding the
    /// augmented graphs and real-hop sets. This is how the machine
    /// backend — whose sites own their augmented graphs — produces a
    /// snapshot without re-running the precompute. The coordinator hands
    /// over `Arc` handles, so the whole-graph pieces are shared with the
    /// machine rather than copied.
    ///
    /// `reach` is the caller's reachability index over `graph`, shared
    /// rather than rebuilt when it has one; pass `None` to build it here
    /// (gated on [`EngineConfig::reach_index`]).
    #[allow(clippy::too_many_arguments)] // mirrors the retained coordinator state
    pub fn assemble(
        graph: Arc<CsrGraph>,
        frag: Arc<Fragmentation>,
        symmetric: bool,
        cfg: EngineConfig,
        comp: ComplementaryInfo,
        planner: Arc<Planner>,
        reach: Option<Arc<ReachIndex>>,
        source_backend: &'static str,
    ) -> Self {
        let n = graph.node_count();
        let mut augmented = Vec::with_capacity(frag.fragment_count());
        let mut real_hops = Vec::with_capacity(frag.fragment_count());
        for f in frag.fragments() {
            augmented.push(Arc::new(augmented_graph(
                n,
                f.edges(),
                symmetric,
                comp.shortcuts(f.id()),
            )));
            real_hops.push(Arc::new(real_hop_set(f.edges(), symmetric)));
        }
        let reach = reach.or_else(|| cfg.reach_index.then(|| Arc::new(ReachIndex::build(&graph))));
        EngineSnapshot {
            graph,
            frag,
            symmetric,
            cfg,
            comp,
            augmented,
            real_hops,
            planner,
            reach,
            source_backend,
        }
    }

    /// A deep copy that shares **nothing** with `self`: every component —
    /// global graph, fragmentation, planner, per-site augmented graphs,
    /// real-hop sets and shortcut tables — gets a fresh allocation.
    ///
    /// This is exactly what a per-epoch publication cost before
    /// structural sharing; the serve bench uses it as the baseline of the
    /// publication-cost measurement. It is also the right tool to detach
    /// a snapshot from a long-lived shared lineage (e.g. to archive one
    /// epoch without pinning another epoch's memory).
    pub fn unshared_clone(&self) -> Self {
        EngineSnapshot {
            graph: Arc::new((*self.graph).clone()),
            frag: Arc::new((*self.frag).clone()),
            symmetric: self.symmetric,
            cfg: self.cfg.clone(),
            comp: self.comp.unshared_clone(),
            augmented: self
                .augmented
                .iter()
                .map(|g| Arc::new((**g).clone()))
                .collect(),
            real_hops: self
                .real_hops
                .iter()
                .map(|h| Arc::new((**h).clone()))
                .collect(),
            planner: Arc::new((*self.planner).clone()),
            reach: self.reach.as_ref().map(|r| Arc::new((**r).clone())),
            source_backend: self.source_backend,
        }
    }

    // --- accessors -----------------------------------------------------

    /// The global closure graph this snapshot answers for.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The fragmentation this snapshot serves.
    pub fn fragmentation(&self) -> &Fragmentation {
        &self.frag
    }

    /// Number of sites (fragments = processors).
    pub fn site_count(&self) -> usize {
        self.frag.fragment_count()
    }

    /// Whether fragment tuples stand for both travel directions.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// The engine configuration the snapshot was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The precomputed complementary information.
    pub fn complementary(&self) -> &ComplementaryInfo {
        &self.comp
    }

    /// The chain planner over this snapshot's fragmentation.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    // --- structural-sharing handles ------------------------------------

    /// The shared handle behind site `f`'s augmented graph. Two snapshots
    /// whose handles are `Arc::ptr_eq` physically share that site's
    /// graph — the structural-sharing contract across epochs.
    pub fn augmented_handle(&self, f: FragmentId) -> &Arc<CsrGraph> {
        &self.augmented[f]
    }

    /// The shared handle behind site `f`'s real-hop set.
    pub fn real_hops_handle(&self, f: FragmentId) -> &Arc<RealHopSet> {
        &self.real_hops[f]
    }

    /// The shared handle behind the global closure graph.
    pub fn graph_handle(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// The shared handle behind the chain planner.
    pub fn planner_handle(&self) -> &Arc<Planner> {
        &self.planner
    }

    /// The reachability index, when present and fresh. `None` means
    /// [`EngineSnapshot::connected`] currently falls back to the
    /// shortest-path machinery (index disabled, or stale after an
    /// update that could have changed reachability).
    pub fn reach_index(&self) -> Option<&ReachIndex> {
        self.reach.as_deref()
    }

    /// The shared handle behind the reachability index (for the
    /// structural-sharing property tests: a kept index stays
    /// `Arc::ptr_eq` across epochs).
    pub fn reach_handle(&self) -> Option<&Arc<ReachIndex>> {
        self.reach.as_ref()
    }

    /// Rebuild the reachability index if it is enabled but stale
    /// (linear in the graph). Owners call this eagerly after updates —
    /// the inline engine per update, the serve writer once per write
    /// batch before publishing — so readers never pay the rebuild.
    /// Returns whether a fresh index is now present.
    pub fn ensure_reach(&mut self) -> bool {
        if self.cfg.reach_index && self.reach.is_none() {
            self.reach = Some(Arc::new(ReachIndex::build(&self.graph)));
        }
        self.reach.is_some()
    }

    /// Per-phase timing of the precompute that built (or last rebuilt)
    /// the tables this snapshot serves.
    pub fn precompute_stats(&self) -> PrecomputeStats {
        self.comp.precompute_stats()
    }

    /// Which backend's build path produced this snapshot.
    pub fn source_backend(&self) -> &'static str {
        self.source_backend
    }

    // --- queries (&self + caller-owned scratch) ------------------------

    /// Shortest-path cost from `x` to `y` on `scratch`. Nodes outside
    /// every fragment yield an unreachable answer; see
    /// [`EngineSnapshot::try_shortest_path`] for the strict variant.
    pub fn shortest_path(
        &self,
        x: NodeId,
        y: NodeId,
        scratch: &mut ScratchDijkstra,
    ) -> QueryAnswer {
        self.try_shortest_path(x, y, scratch)
            .unwrap_or(QueryAnswer {
                cost: None,
                best_chain: None,
                stats: QueryStats::default(),
            })
    }

    /// Shortest-path cost, erring when an endpoint is in no fragment.
    pub fn try_shortest_path(
        &self,
        x: NodeId,
        y: NodeId,
        scratch: &mut ScratchDijkstra,
    ) -> Result<QueryAnswer, ClosureError> {
        if x == y {
            return Ok(QueryAnswer {
                cost: Some(0),
                best_chain: self.planner.fragments_of(x).first().map(|&f| vec![f]),
                stats: QueryStats::default(),
            });
        }
        let plan = self.planner.plan(x, y)?;
        let mut stats = QueryStats {
            enumerated: plan.enumerated,
            ..QueryStats::default()
        };
        let mut best: Option<(Cost, Vec<FragmentId>)> = None;
        for chain in &plan.chains {
            let (segments, runs) = run_chain(&self.augmented, chain, self.cfg.mode, scratch);
            stats.chains_evaluated += 1;
            stats.site_queries += runs.len();
            for r in &runs {
                stats.tuples_shipped += r.tuples;
                stats.total_site_busy += r.busy;
                stats.max_site_busy = stats.max_site_busy.max(r.busy);
            }
            if let Some(cost) = assemble::chain_cost(&segments, x, y) {
                if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, chain.fragments.clone()));
                }
            }
        }
        let (cost, best_chain) = match best {
            Some((c, ch)) => (Some(c), Some(ch)),
            None => (None, None),
        };
        Ok(QueryAnswer {
            cost,
            best_chain,
            stats,
        })
    }

    /// Connection query — "is `x` connected to `y`?".
    ///
    /// Answered by the SCC/chain reachability index when it is present
    /// and fresh — one component comparison plus at most one binary
    /// search, no Dijkstra sweep, `scratch` untouched. Falls back to
    /// the shortest-path machinery when the index is disabled or stale.
    pub fn connected(&self, x: NodeId, y: NodeId, scratch: &mut ScratchDijkstra) -> bool {
        if x == y {
            return true;
        }
        if let Some(reach) = &self.reach {
            if x.index() < reach.node_count() && y.index() < reach.node_count() {
                return reach.reaches(x, y);
            }
        }
        self.shortest_path(x, y, scratch).cost.is_some()
    }

    /// Answer many shortest-path requests on `scratch`, amortizing chain
    /// planning and interior segment evaluation across the batch (see
    /// [`run_batch`]).
    pub fn query_batch(
        &self,
        requests: &[QueryRequest],
        scratch: &mut ScratchDijkstra,
    ) -> BatchAnswer {
        let mut eval = InlineEval {
            augmented: &self.augmented,
            mode: self.cfg.mode,
            scratch,
        };
        run_batch(&self.planner, &mut eval, requests)
    }

    /// [`EngineSnapshot::query_batch`] with request tracing: `traces[i]`
    /// is request `i`'s id, and per-request evaluation timings (total
    /// plus per-chain segments) are appended to `sink`. Answers are
    /// identical to the untraced path; the serve workers call this when
    /// observability is armed.
    pub fn query_batch_traced(
        &self,
        requests: &[QueryRequest],
        scratch: &mut ScratchDijkstra,
        traces: &[ds_obs::TraceId],
        sink: &mut Vec<ds_obs::EvalTrace>,
    ) -> BatchAnswer {
        let mut eval = InlineEval {
            augmented: &self.augmented,
            mode: self.cfg.mode,
            scratch,
        };
        crate::api::run_batch_traced(&self.planner, &mut eval, requests, traces, Some(sink))
    }

    /// [`EngineSnapshot::query_batch_traced`] with cooperative
    /// cancellation: `deadlines[i]` is request `i`'s absolute deadline
    /// (empty slice or `None` = unbounded), checked between requests
    /// and between fragment chains. A request that blows its deadline
    /// mid-evaluation comes back as `None` instead of an answer; the
    /// serve tier resolves those with
    /// [`ClosureError::DeadlineExceeded`]. Tracing is optional: pass an
    /// empty `traces` slice and `None` for `sink` on the untraced path.
    pub fn query_batch_bounded(
        &self,
        requests: &[QueryRequest],
        scratch: &mut ScratchDijkstra,
        traces: &[ds_obs::TraceId],
        sink: Option<&mut Vec<ds_obs::EvalTrace>>,
        deadlines: &[Option<std::time::Instant>],
    ) -> crate::api::BoundedBatchAnswer {
        let mut eval = InlineEval {
            augmented: &self.augmented,
            mode: self.cfg.mode,
            scratch,
        };
        crate::api::run_batch_bounded(&self.planner, &mut eval, requests, traces, sink, deadlines)
    }

    /// Reconstruct the full cheapest route. Requires
    /// [`EngineConfig::store_paths`].
    pub fn route(
        &self,
        x: NodeId,
        y: NodeId,
        scratch: &mut ScratchDijkstra,
    ) -> Result<Option<Route>, ClosureError> {
        if !self.comp.has_paths() {
            return Err(ClosureError::RoutesNotEnabled);
        }
        if x == y {
            return Ok(Some(Route {
                cost: 0,
                nodes: vec![x],
                chain: self
                    .planner
                    .fragments_of(x)
                    .first()
                    .map(|&f| vec![f])
                    .unwrap_or_default(),
                waypoints: vec![x],
            }));
        }
        let plan = self.planner.plan(x, y)?;
        let mut best: Option<(Cost, Vec<NodeId>, Vec<FragmentId>)> = None;
        for chain in &plan.chains {
            let (segments, _) = run_chain(&self.augmented, chain, self.cfg.mode, scratch);
            if let Some((cost, waypoints)) = assemble::best_waypoints(&segments, x, y) {
                if best.as_ref().is_none_or(|(b, _, _)| cost < *b) {
                    best = Some((cost, waypoints, chain.fragments.clone()));
                }
            }
        }
        let Some((cost, waypoints, chain)) = best else {
            return Ok(None);
        };

        // Expand each junction-to-junction leg within its site, on the
        // same scratch the chain evaluation used.
        // waypoints = [x, w1, …, y]; leg k runs at site chain[k].
        debug_assert_eq!(waypoints.len(), chain.len() + 1);
        let mut nodes = vec![x];
        for (k, leg) in waypoints.windows(2).enumerate() {
            let expanded = self.expand_leg(chain[k], leg[0], leg[1], scratch);
            nodes.extend_from_slice(&expanded[1..]);
        }
        Ok(Some(Route {
            cost,
            nodes,
            chain,
            waypoints,
        }))
    }

    /// Expand one leg `a -> b` at `site` into real graph nodes, splicing
    /// complementary shortcut hops with their stored global paths.
    fn expand_leg(
        &self,
        site: FragmentId,
        a: NodeId,
        b: NodeId,
        scratch: &mut ScratchDijkstra,
    ) -> Vec<NodeId> {
        if a == b {
            return vec![a];
        }
        scratch.sweep_to_targets(&self.augmented[site], &[(a, 0)], &[b]);
        let local = scratch
            .path_to(b)
            .expect("assembly proved this leg reachable at this site");
        let mut out = vec![a];
        for hop in local.windows(2) {
            let (p, q) = (hop[0], hop[1]);
            let hop_cost = scratch.cost(q).expect("on path") - scratch.cost(p).expect("on path");
            if self.real_hops[site].contains(&(p, q, hop_cost)) {
                out.push(q);
            } else {
                let shortcut = self
                    .comp
                    .path(p, q)
                    .expect("non-fragment hop must be a stored shortcut");
                out.extend_from_slice(&shortcut[1..]);
            }
        }
        out
    }

    // --- maintenance (exclusive owner only) ----------------------------

    /// Apply a network update in place, keeping answers exact afterwards:
    /// runs the shared maintenance path ([`crate::updates::maintain`]),
    /// then refreshes the touched sites' augmented graphs and the owner's
    /// real-hop set. See [`EngineSnapshot::maintain_cow`] for the variant
    /// that also reports *which* sites were touched.
    ///
    /// A snapshot shared behind an `Arc` cannot (and must not) be
    /// maintained through the `Arc` — clone it first (O(sites): every
    /// component is `Arc`-shared) and republish the maintained clone,
    /// which is exactly what the `ds_serve` writer thread does. The
    /// maintenance replaces only the touched sites' Arcs; everything else
    /// stays physically shared with the pre-update snapshot.
    pub fn maintain(
        &mut self,
        update: &NetworkUpdate,
        scratch: &mut ScratchDijkstra,
    ) -> Result<UpdateReport, ClosureError> {
        self.maintain_cow(update, scratch).map(|m| m.report)
    }

    /// [`EngineSnapshot::maintain`] with the copy-on-write outcome made
    /// explicit: which sites' components were detached from the previous
    /// epoch (and must be shipped / re-cached), and which remain shared.
    pub fn maintain_cow(
        &mut self,
        update: &NetworkUpdate,
        scratch: &mut ScratchDijkstra,
    ) -> Result<CowMaintenance, ClosureError> {
        let m = crate::updates::maintain(
            &mut self.graph,
            &mut self.frag,
            self.symmetric,
            &self.cfg,
            &mut self.comp,
            update,
            scratch,
        )?;
        // Keep-vs-drop for the reachability index, decided *after* the
        // maintenance succeeded (an erring update leaves it untouched),
        // while `self.reach` still holds the pre-update index — the
        // rules of [`ConnectivityEffect`]:
        let keep = match m.connectivity {
            ConnectivityEffect::Unchanged => true,
            ConnectivityEffect::Inserted { src, dst } => self.reach.as_ref().is_some_and(|r| {
                r.reaches(src, dst) && (!self.symmetric || src == dst || r.reaches(dst, src))
            }),
            ConnectivityEffect::Removed { parallel_remains } => parallel_remains,
        };
        if !keep {
            self.reach = None;
        }
        let reach_kept = keep || !self.cfg.reach_index;
        let Some(owner) = m.owner else {
            return Ok(CowMaintenance {
                report: m.report,
                owner: None,
                shortcut_sites: Vec::new(),
                touched_sites: Vec::new(),
                reach_kept,
            });
        };
        let mut sites: std::collections::BTreeSet<FragmentId> =
            m.shortcut_sites.iter().copied().collect();
        sites.insert(owner);
        for &f in &sites {
            // A fresh Arc per touched site; untouched sites keep sharing
            // their augmented graph with the pre-update snapshot.
            self.augmented[f] = Arc::new(augmented_graph(
                self.graph.node_count(),
                self.frag.fragment(f).edges(),
                self.symmetric,
                self.comp.shortcuts(f),
            ));
        }
        self.real_hops[owner] = Arc::new(real_hop_set(
            self.frag.fragment(owner).edges(),
            self.symmetric,
        ));
        Ok(CowMaintenance {
            report: m.report,
            owner: Some(owner),
            shortcut_sites: m.shortcut_sites,
            touched_sites: sites.into_iter().collect(),
            reach_kept,
        })
    }
}

fn real_hop_set(edges: &[ds_graph::Edge], symmetric: bool) -> RealHopSet {
    let mut hops = HashSet::with_capacity(edges.len() * 2);
    for e in edges {
        hops.insert((e.src, e.dst, e.cost));
        if symmetric && !e.is_loop() {
            hops.insert((e.dst, e.src, e.cost));
        }
    }
    hops
}

/// Site evaluation for snapshot-backed (and inline-engine) batches:
/// subqueries run on the calling thread or one scoped thread each, per
/// [`EngineConfig::mode`], against the caller's scratch.
struct InlineEval<'a> {
    augmented: &'a [Arc<CsrGraph>],
    mode: crate::executor::ExecutionMode,
    scratch: &'a mut ScratchDijkstra,
}

impl SiteEvaluator for InlineEval<'_> {
    fn eval_positions(
        &mut self,
        chain: &ChainPlan,
        positions: &[usize],
        stats: &mut QueryStats,
    ) -> Vec<Relation<PathTuple>> {
        let sub = ChainPlan {
            fragments: positions.iter().map(|&p| chain.queries[p].site).collect(),
            queries: positions
                .iter()
                .map(|&p| chain.queries[p].clone())
                .collect(),
        };
        let (segments, runs) = run_chain(self.augmented, &sub, self.mode, self.scratch);
        for r in &runs {
            stats.site_queries += 1;
            stats.tuples_shipped += r.tuples;
            stats.total_site_busy += r.busy;
            stats.max_site_busy = stats.max_site_busy.max(r.busy);
        }
        segments
    }
}

/// Compile-time `Send + Sync` guarantees for everything the serve layer
/// shares across threads. A future `Rc`/`RefCell`/raw-pointer regression
/// in any of these types fails *here*, in the crate that owns the
/// invariant, rather than as a confusing trait-bound error in `ds_serve`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineParts>();
    assert_send_sync::<ComplementaryInfo>();
    assert_send_sync::<Fragmentation>();
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<Planner>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::grid;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn snapshot() -> (ds_gen::GeneratedGraph, EngineSnapshot) {
        let g = grid(10, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let snap =
            EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
        (g, snap)
    }

    #[test]
    fn concurrent_readers_share_one_snapshot() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let snap = std::sync::Arc::new(snap);
        let answers: Vec<Vec<Option<Cost>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u32)
                .map(|t| {
                    let snap = std::sync::Arc::clone(&snap);
                    s.spawn(move || {
                        let mut scratch = ScratchDijkstra::new();
                        (0..40u32)
                            .map(|i| {
                                snap.shortest_path(n((i + t) % 40), n(39 - i), &mut scratch)
                                    .cost
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, row) in answers.iter().enumerate() {
            for (i, got) in row.iter().enumerate() {
                let want = baseline::shortest_path_cost(
                    &csr,
                    n(((i as u32) + t as u32) % 40),
                    n(39 - i as u32),
                );
                assert_eq!(*got, want, "thread {t} query {i}");
            }
        }
    }

    #[test]
    fn assemble_equals_from_parts() {
        let g = grid(8, 3);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let cfg = EngineConfig::default();
        let built =
            EngineSnapshot::build(g.closure_graph(), frag.clone(), true, cfg.clone()).unwrap();
        let assembled = EngineSnapshot::assemble(
            Arc::new(g.closure_graph()),
            Arc::new(frag),
            true,
            cfg,
            built.complementary().clone(),
            Arc::clone(built.planner_handle()),
            None,
            "site-threads",
        );
        assert_eq!(assembled.source_backend(), "site-threads");
        assert!(
            assembled.reach_index().is_some(),
            "assemble builds the index when the caller has none"
        );
        let mut s1 = ScratchDijkstra::new();
        let mut s2 = ScratchDijkstra::new();
        for (x, y) in [(0u32, 23u32), (5, 17), (12, 12), (23, 0)] {
            assert_eq!(
                built.shortest_path(n(x), n(y), &mut s1).cost,
                assembled.shortest_path(n(x), n(y), &mut s2).cost,
                "query {x}->{y}"
            );
        }
    }

    #[test]
    fn connected_answers_from_the_index_without_sweeps() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let mut scratch = ScratchDijkstra::new();
        assert!(snap.reach_index().is_some(), "index built by default");
        let sweeps_before = scratch.stats().sweeps;
        for x in 0..40u32 {
            for y in 0..40u32 {
                let got = snap.connected(n(x), n(y), &mut scratch);
                let want = x == y || baseline::shortest_path_cost(&csr, n(x), n(y)).is_some();
                assert_eq!(got, want, "connected({x}, {y})");
            }
        }
        assert_eq!(
            scratch.stats().sweeps,
            sweeps_before,
            "the index path must never run a Dijkstra sweep"
        );
    }

    #[test]
    fn index_disabled_falls_back_and_stays_correct() {
        let g = grid(10, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let cfg = EngineConfig {
            reach_index: false,
            ..Default::default()
        };
        let mut snap = EngineSnapshot::build(g.closure_graph(), frag, true, cfg).unwrap();
        assert!(snap.reach_index().is_none());
        assert!(!snap.ensure_reach(), "disabled index never rebuilds");
        let mut scratch = ScratchDijkstra::new();
        assert!(snap.connected(n(0), n(39), &mut scratch));
        assert!(scratch.stats().sweeps > 0, "fallback path sweeps");
    }

    #[test]
    fn redundant_insert_keeps_the_index_shared() {
        let (_, mut snap) = snapshot();
        let mut scratch = ScratchDijkstra::new();
        let before = Arc::clone(snap.reach_handle().unwrap());
        // The grid is connected, so any insert between existing nodes is
        // inside the reachability relation: the index must survive —
        // pointer-shared, not rebuilt.
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let cow = snap
            .maintain_cow(
                &NetworkUpdate::Insert {
                    edge: ds_graph::Edge::new(a, b, 1),
                    owner: 0,
                },
                &mut scratch,
            )
            .unwrap();
        assert!(cow.reach_kept);
        assert!(
            Arc::ptr_eq(&before, snap.reach_handle().unwrap()),
            "kept index must stay pointer-shared with the previous epoch"
        );
    }

    #[test]
    fn removal_without_parallel_drops_the_index_until_rebuilt() {
        let (_, mut snap) = snapshot();
        let mut scratch = ScratchDijkstra::new();
        // Remove a real grid edge with no parallel connection: the index
        // is dropped as stale; connected falls back (and stays exact).
        let f0 = snap.fragmentation().fragment(0).clone();
        let e = f0.edges()[0];
        let cow = snap
            .maintain_cow(
                &NetworkUpdate::Remove {
                    src: e.src,
                    dst: e.dst,
                    owner: 0,
                },
                &mut scratch,
            )
            .unwrap();
        assert!(!cow.reach_kept);
        assert!(snap.reach_index().is_none(), "stale index dropped");
        for (x, y) in [(0u32, 39u32), (5, 17), (39, 0)] {
            assert_eq!(
                snap.connected(n(x), n(y), &mut scratch),
                baseline::shortest_path_cost(snap.graph(), n(x), n(y)).is_some(),
                "fallback connected({x}, {y})"
            );
        }
        assert!(snap.ensure_reach(), "rebuild on demand");
        let sweeps = scratch.stats().sweeps;
        for x in 0..40u32 {
            for y in 0..40u32 {
                assert_eq!(
                    snap.connected(n(x), n(y), &mut scratch),
                    baseline::shortest_path_cost(snap.graph(), n(x), n(y)).is_some(),
                    "rebuilt connected({x}, {y})"
                );
            }
        }
        assert_eq!(scratch.stats().sweeps, sweeps, "rebuilt index: no sweeps");
    }

    #[test]
    fn maintained_clone_leaves_the_original_untouched() {
        let (_, snap) = snapshot();
        let mut scratch = ScratchDijkstra::new();
        let before = snap.shortest_path(n(0), n(39), &mut scratch).cost.unwrap();
        let mut successor = snap.clone();
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        successor
            .maintain(
                &NetworkUpdate::Insert {
                    edge: ds_graph::Edge::new(a, b, 1),
                    owner: 0,
                },
                &mut scratch,
            )
            .unwrap();
        // Copy-on-write: the published (old) snapshot still answers the
        // pre-update network; the successor reflects the insert.
        assert_eq!(
            snap.shortest_path(n(0), n(39), &mut scratch).cost,
            Some(before)
        );
        let after = successor
            .shortest_path(n(0), n(39), &mut scratch)
            .cost
            .unwrap();
        assert!(after <= before);
        assert_eq!(
            Some(after),
            baseline::shortest_path_cost(successor.graph(), n(0), n(39))
        );
    }
}
