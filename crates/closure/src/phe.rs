//! Parallel Hierarchical Evaluation (PHE) — the extension the paper
//! points to for complex fragmentation graphs (§5, ref [12]):
//!
//! "It introduces the concept of a 'high-speed network'; this is a
//! separate fragment that mandatorily has to be traversed when going to a
//! non-adjacent fragment."
//!
//! The construction here mirrors the transportation archetype: the
//! inter-cluster connections (fast intercity lines, optic fibres) become
//! their own *hub* fragment. Every cluster fragment is then adjacent only
//! to the hub, the fragmentation graph is a star, and any query needs at
//! most the chain `[cluster, hub, cluster]` — chain enumeration cost
//! stops depending on the number of fragments.

use ds_fragment::{FragError, FragmentId, Fragmentation};
use ds_graph::{Edge, NodeId};

/// Build a hub fragmentation from a cluster labeling: in-cluster edges go
/// to their cluster's fragment, every cross-cluster edge goes to the hub
/// fragment. Returns the fragmentation and the hub's fragment id (always
/// `cluster_count`).
pub fn hub_fragmentation(
    node_count: usize,
    edges: &[Edge],
    cluster_of: &[u32],
    cluster_count: usize,
) -> Result<(Fragmentation, FragmentId), FragError> {
    if edges.is_empty() {
        return Err(FragError::EmptyRelation);
    }
    if cluster_of.len() != node_count {
        return Err(FragError::LabelLengthMismatch {
            labels: cluster_of.len(),
            node_count,
        });
    }
    if let Some(&bad) = cluster_of.iter().find(|&&c| c as usize >= cluster_count) {
        return Err(FragError::InvalidConfig(format!(
            "cluster label {bad} out of range 0..{cluster_count}"
        )));
    }
    let hub = cluster_count;
    let mut sets: Vec<Vec<Edge>> = vec![Vec::new(); cluster_count + 1];
    for e in edges {
        let (a, b) = (
            cluster_of[e.src.index()] as usize,
            cluster_of[e.dst.index()] as usize,
        );
        let owner = if a == b { a } else { hub };
        sets[owner].push(*e);
    }
    // Seed nodes into their cluster fragments so every node has a home.
    let mut seeds: Vec<Vec<NodeId>> = vec![Vec::new(); cluster_count + 1];
    for (v, &c) in cluster_of.iter().enumerate() {
        seeds[c as usize].push(NodeId::from_index(v));
    }
    Ok((Fragmentation::new(node_count, sets, seeds), hub))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::engine::{DisconnectionSetEngine, EngineConfig};
    use ds_gen::{generate_transportation, ClusterTopology, TransportationConfig};

    #[test]
    fn hub_fragmentation_is_a_star() {
        let cfg = TransportationConfig {
            topology: ClusterTopology::Ring, // cyclic without a hub!
            ..TransportationConfig::table1()
        };
        let g = generate_transportation(&cfg, 5);
        let labels = g.cluster_of.clone().unwrap();
        let (frag, hub) = hub_fragmentation(g.nodes, &g.connections, &labels, 4).unwrap();
        assert_eq!(hub, 4);
        frag.validate(&g.connections).unwrap();
        let fg = frag.fragmentation_graph();
        // Every link involves the hub: clusters never share nodes.
        for &(a, b) in fg.links() {
            assert!(a == hub || b == hub, "link ({a},{b}) bypasses the hub");
        }
        assert!(fg.is_acyclic(), "a star is loosely connected");
    }

    #[test]
    fn hub_engine_matches_baseline_on_ring_topology() {
        // The ring topology makes plain cluster fragmentation cyclic; the
        // hub construction removes the cycle and stays exact.
        let cfg = TransportationConfig {
            clusters: 4,
            nodes_per_cluster: 12,
            target_edges_per_cluster: 30,
            topology: ClusterTopology::Ring,
            ..TransportationConfig::default()
        };
        let g = generate_transportation(&cfg, 9);
        let labels = g.cluster_of.clone().unwrap();
        let (frag, hub) = hub_fragmentation(g.nodes, &g.connections, &labels, 4).unwrap();
        let csr = g.closure_graph();
        let engine = DisconnectionSetEngine::build(
            csr.clone(),
            frag,
            true,
            EngineConfig {
                hub: Some(hub),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for (x, y) in [(0u32, 40u32), (3, 25), (13, 47), (30, 2), (45, 20)] {
            let got = engine.shortest_path(NodeId(x), NodeId(y));
            let want = baseline::shortest_path_cost(&csr, NodeId(x), NodeId(y));
            assert_eq!(got.cost, want, "query {x}->{y}");
            if let Some(chain) = &got.best_chain {
                assert!(chain.len() <= 3, "PHE chains are bounded: {chain:?}");
            }
        }
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            hub_fragmentation(2, &[], &[0, 0], 1),
            Err(FragError::EmptyRelation)
        ));
        let e = [Edge::unit(NodeId(0), NodeId(1))];
        assert!(matches!(
            hub_fragmentation(2, &e, &[0], 1),
            Err(FragError::LabelLengthMismatch { .. })
        ));
        assert!(matches!(
            hub_fragmentation(2, &e, &[0, 9], 1),
            Err(FragError::InvalidConfig(_))
        ));
    }
}
