//! Phase-one execution: run the chain's site subqueries, sequentially or
//! with one OS thread per site.
//!
//! "Note that neither communication nor synchronization is required
//! during the first phase of the computation … Only at the end of the
//! computation, communication is required for computing the final joins"
//! (§2.1). The parallel mode exploits exactly that independence: every
//! [`SiteQuery`] reads only its own site's augmented graph.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_graph::{CsrGraph, ScratchDijkstra};
use ds_relation::{PathTuple, Relation};

use crate::local::border_matrix_with;
use crate::planner::{ChainPlan, SiteQuery};

/// Sequential or site-parallel phase one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// All subqueries on the calling thread (the centralized-machine
    /// view; also the baseline for speed-up measurements).
    #[default]
    Sequential,
    /// One thread per site subquery (`std::thread::scope`), the paper's
    /// one-fragment-per-processor model.
    Parallel,
}

/// Accounting for one site's subquery.
#[derive(Clone, Debug)]
pub struct SiteRun {
    pub site: usize,
    /// Time the site spent on its subquery.
    pub busy: Duration,
    /// Tuples in the site's result relation ("very small relations" that
    /// get shipped for the final joins).
    pub tuples: usize,
}

/// Evaluate every subquery of a chain. Returns the segment relations (in
/// chain order) and per-site accounting.
///
/// Sequential mode runs every subquery on `scratch`, so a caller that
/// keeps one scratch across chains/queries performs no per-subquery O(V)
/// allocations. Parallel mode gives each site thread its own fresh
/// scratch (stamped arrays cannot be shared across threads — exactly as
/// each real site owns its memory).
pub fn run_chain(
    augmented: &[Arc<CsrGraph>],
    chain: &ChainPlan,
    mode: ExecutionMode,
    scratch: &mut ScratchDijkstra,
) -> (Vec<Relation<PathTuple>>, Vec<SiteRun>) {
    match mode {
        ExecutionMode::Sequential => chain
            .queries
            .iter()
            .map(|q| run_one(augmented, q, scratch))
            .unzip(),
        ExecutionMode::Parallel => {
            let results: Vec<(Relation<PathTuple>, SiteRun)> = std::thread::scope(|s| {
                let handles: Vec<_> = chain
                    .queries
                    .iter()
                    .map(|q| {
                        s.spawn(move || {
                            let mut local = ScratchDijkstra::new();
                            run_one(augmented, q, &mut local)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("site thread panicked"))
                    .collect()
            });
            results.into_iter().unzip()
        }
    }
}

fn run_one(
    augmented: &[Arc<CsrGraph>],
    q: &SiteQuery,
    scratch: &mut ScratchDijkstra,
) -> (Relation<PathTuple>, SiteRun) {
    let start = Instant::now();
    let rel = border_matrix_with(&augmented[q.site], &q.sources, &q.targets, scratch);
    let run = SiteRun {
        site: q.site,
        busy: start.elapsed(),
        tuples: rel.len(),
    };
    (rel, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::{Edge, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn setup() -> (Vec<Arc<CsrGraph>>, ChainPlan) {
        // Two sites: site 0 owns 0-1-2 (unit path), site 1 owns 2-3-4.
        let site0 = CsrGraph::from_edges(5, &[Edge::unit(n(0), n(1)), Edge::unit(n(1), n(2))]);
        let site1 = CsrGraph::from_edges(5, &[Edge::unit(n(2), n(3)), Edge::unit(n(3), n(4))]);
        let chain = ChainPlan {
            fragments: vec![0, 1],
            queries: vec![
                SiteQuery {
                    site: 0,
                    sources: vec![n(0)],
                    targets: vec![n(2)],
                },
                SiteQuery {
                    site: 1,
                    sources: vec![n(2)],
                    targets: vec![n(4)],
                },
            ],
        };
        (vec![Arc::new(site0), Arc::new(site1)], chain)
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (aug, chain) = setup();
        let mut scratch = ScratchDijkstra::new();
        let (seq, seq_runs) = run_chain(&aug, &chain, ExecutionMode::Sequential, &mut scratch);
        let (par, par_runs) = run_chain(&aug, &chain, ExecutionMode::Parallel, &mut scratch);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].rows(), par[0].rows());
        assert_eq!(seq[1].rows(), par[1].rows());
        assert_eq!(seq_runs.len(), par_runs.len());
        assert_eq!(seq_runs[0].tuples, 1);
        assert_eq!(seq_runs[1].tuples, 1);
        assert_eq!(seq_runs[0].site, 0);
        assert_eq!(par_runs[1].site, 1);
    }

    #[test]
    fn segment_costs_are_local_shortest_paths() {
        let (aug, chain) = setup();
        let mut scratch = ScratchDijkstra::new();
        let (segs, _) = run_chain(&aug, &chain, ExecutionMode::Sequential, &mut scratch);
        assert_eq!(segs[0].cost_of(n(0), n(2)), Some(2));
        assert_eq!(segs[1].cost_of(n(2), n(4)), Some(2));
    }
}
