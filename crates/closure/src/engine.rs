//! The disconnection set engine: precompute once, query many times.
//!
//! Since the snapshot split (see [`crate::snapshot`]) the engine is a
//! thin pairing of the immutable [`EngineSnapshot`] — tables, augmented
//! graphs, planner — with one persistent [`ScratchDijkstra`]: exactly the
//! single-threaded special case of the serve subsystem's
//! one-snapshot-many-scratches architecture.

use std::time::Duration;

use ds_fragment::{FragmentId, Fragmentation};
use ds_graph::{Cost, CsrGraph, NodeId, ScratchDijkstra, ScratchStats};

use crate::api::{BatchAnswer, NetworkUpdate, QueryRequest, TcEngine};
use crate::complementary::{ComplementaryInfo, ComplementaryScope, PrecomputeStats};
use crate::error::ClosureError;
use crate::executor::ExecutionMode;
use crate::snapshot::EngineSnapshot;
use crate::updates::UpdateReport;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Which border pairs get complementary shortcuts.
    pub scope: ComplementaryScope,
    /// Keep one concrete path per shortcut, enabling
    /// [`DisconnectionSetEngine::route`].
    pub store_paths: bool,
    /// Chain enumeration caps for cyclic fragmentation graphs.
    pub max_chains: usize,
    pub max_chain_len: usize,
    /// Phase-one execution mode.
    pub mode: ExecutionMode,
    /// Parallel Hierarchical Evaluation: the mandatory hub fragment, if
    /// the fragmentation was built with one (see [`crate::phe`]).
    pub hub: Option<FragmentId>,
    /// OS threads for the precompute's fragment-local sweep phase (and
    /// for fallback full recomputes during update maintenance). `1` (the
    /// default) runs sequentially; larger values engage
    /// [`crate::complementary::ComplementaryInfo::compute_with_threads`]
    /// — results are identical either way.
    pub precompute_threads: usize,
    /// Maintain an SCC/chain reachability index (`ds_graph::ReachIndex`)
    /// so `connected` queries bypass the shortest-path machinery
    /// entirely. On (the default) the index is built at deploy time,
    /// kept across updates that provably cannot change reachability and
    /// rebuilt (linear time) otherwise; off, `connected` always takes
    /// the Dijkstra-grade fallback path.
    pub reach_index: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scope: ComplementaryScope::default(),
            store_paths: false,
            max_chains: 64,
            max_chain_len: 16,
            mode: ExecutionMode::Sequential,
            hub: None,
            precompute_threads: 1,
            reach_index: true,
        }
    }
}

/// Per-query accounting.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Chains of fragments evaluated.
    pub chains_evaluated: usize,
    /// Site subqueries run (Σ chain lengths).
    pub site_queries: usize,
    /// Total tuples in the shipped segment relations.
    pub tuples_shipped: usize,
    /// Longest single site subquery — the phase-one wall time under full
    /// parallelism.
    pub max_site_busy: Duration,
    /// Total site work — the phase-one wall time on one processor.
    pub total_site_busy: Duration,
    /// Whether multi-chain enumeration was needed (cyclic G').
    pub enumerated: bool,
}

/// Result of a shortest-path query.
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    /// Cheapest cost, `None` if unreachable.
    pub cost: Option<Cost>,
    /// The chain of fragments that achieved it.
    pub best_chain: Option<Vec<FragmentId>>,
    pub stats: QueryStats,
}

/// A fully reconstructed route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    pub cost: Cost,
    /// Every node of the path, source to destination.
    pub nodes: Vec<NodeId>,
    /// The fragment chain used.
    pub chain: Vec<FragmentId>,
    /// The border cities crossed (junction nodes of the assembly).
    pub waypoints: Vec<NodeId>,
}

/// The engine: a fragmented relation plus its precomputed complementary
/// information, ready to answer connection and shortest-path queries.
#[derive(Clone, Debug)]
pub struct DisconnectionSetEngine {
    snap: EngineSnapshot,
    /// The reusable Dijkstra kernel the batch path and update repair
    /// sweeps run on — persists across calls, so the steady state is
    /// allocation-free (see [`DisconnectionSetEngine::scratch_stats`]).
    scratch: ScratchDijkstra,
}

impl DisconnectionSetEngine {
    /// Build the engine: computes complementary information (the paper's
    /// pre-processing phase) and the per-site augmented graphs.
    ///
    /// `symmetric` declares that each fragment tuple stands for both
    /// travel directions (transportation networks); `graph` must be the
    /// matching directed closure graph.
    pub fn build(
        graph: CsrGraph,
        frag: Fragmentation,
        symmetric: bool,
        cfg: EngineConfig,
    ) -> Result<Self, ClosureError> {
        // The build path is shared with every other backend (the machine
        // simulation deploys from the same parts).
        Ok(DisconnectionSetEngine {
            snap: EngineSnapshot::build(graph, frag, symmetric, cfg)?,
            scratch: ScratchDijkstra::new(),
        })
    }

    /// Wrap an already-built snapshot (e.g. one the durability layer
    /// recovered from disk) without re-running the precompute.
    pub fn from_snapshot(snap: EngineSnapshot) -> Self {
        DisconnectionSetEngine {
            snap,
            scratch: ScratchDijkstra::new(),
        }
    }

    /// Reuse accounting of the engine's persistent scratch kernel: after
    /// warmup, batches run with zero array growths.
    pub fn scratch_stats(&self) -> ScratchStats {
        self.scratch.stats()
    }

    /// Whether fragment tuples stand for both travel directions.
    pub fn is_symmetric(&self) -> bool {
        self.snap.is_symmetric()
    }

    /// The fragmentation this engine serves.
    pub fn fragmentation(&self) -> &Fragmentation {
        self.snap.fragmentation()
    }

    /// The precomputed complementary information.
    pub fn complementary(&self) -> &ComplementaryInfo {
        self.snap.complementary()
    }

    /// The global closure graph.
    pub fn graph(&self) -> &CsrGraph {
        self.snap.graph()
    }

    /// Borrow the engine's immutable snapshot (the shareable half).
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snap
    }

    /// Take the snapshot out of the engine (e.g. to publish it to a
    /// serve worker pool without cloning).
    pub fn into_snapshot(self) -> EngineSnapshot {
        self.snap
    }

    /// Shortest-path cost from `x` to `y`. Nodes outside every fragment
    /// yield an unreachable answer; see [`Self::try_shortest_path`] for
    /// the strict variant.
    pub fn shortest_path(&self, x: NodeId, y: NodeId) -> QueryAnswer {
        // One scratch per query (`&self` receiver), reused across every
        // chain and subquery of the query; the batch path reuses the
        // engine's persistent scratch instead.
        self.snap.shortest_path(x, y, &mut ScratchDijkstra::new())
    }

    /// Shortest-path cost, erring when an endpoint is in no fragment.
    pub fn try_shortest_path(&self, x: NodeId, y: NodeId) -> Result<QueryAnswer, ClosureError> {
        self.snap
            .try_shortest_path(x, y, &mut ScratchDijkstra::new())
    }

    /// Connection query — "Is A connected to B?". Answered by the
    /// snapshot's SCC/chain reachability index when fresh (no Dijkstra
    /// sweep); falls back to the shortest-path machinery otherwise.
    pub fn reachable(&self, x: NodeId, y: NodeId) -> bool {
        self.snap.connected(x, y, &mut ScratchDijkstra::new())
    }

    /// Reconstruct the full cheapest route. Requires
    /// `EngineConfig::store_paths`.
    pub fn route(&self, x: NodeId, y: NodeId) -> Result<Option<Route>, ClosureError> {
        self.snap.route(x, y, &mut ScratchDijkstra::new())
    }

    // --- update maintenance (see crate::updates for the algorithms) ---

    /// Insert a connection into fragment `owner`. For symmetric engines
    /// the reverse direction is inserted too.
    ///
    /// Both endpoints must already belong to the owner fragment —
    /// inserting within a region never changes the fragmentation's node
    /// sets, so disconnection sets (and the set of shortcut *pairs*) stay
    /// fixed and only shortcut *costs* can improve. Growing a fragment's
    /// node set is a re-fragmentation concern, out of scope for an
    /// engine-level update.
    pub fn insert_connection(
        &mut self,
        edge: ds_graph::Edge,
        owner: FragmentId,
    ) -> Result<UpdateReport, ClosureError> {
        let report = self
            .snap
            .maintain(&NetworkUpdate::Insert { edge, owner }, &mut self.scratch)?;
        self.snap.ensure_reach();
        Ok(report)
    }

    /// Remove every connection `src -> dst` (and the reverse direction on
    /// symmetric engines) from fragment `owner`. Repaired incrementally
    /// via the deletion repair rule; falls back to a full recompute only
    /// under the conditions listed in [`crate::updates`].
    pub fn remove_connection(
        &mut self,
        src: NodeId,
        dst: NodeId,
        owner: FragmentId,
    ) -> Result<UpdateReport, ClosureError> {
        let report = self.snap.maintain(
            &NetworkUpdate::Remove { src, dst, owner },
            &mut self.scratch,
        )?;
        self.snap.ensure_reach();
        Ok(report)
    }
}

impl TcEngine for DisconnectionSetEngine {
    fn backend_name(&self) -> &'static str {
        "inline"
    }

    fn site_count(&self) -> usize {
        self.snap.site_count()
    }

    fn fragmentation(&self) -> &Fragmentation {
        self.snap.fragmentation()
    }

    /// Unlike the inherent `&self` method (which must allocate a scratch
    /// per call), the `&mut self` trait path runs on the engine's
    /// persistent scratch — single queries through `TcEngine`/`System`
    /// are allocation-free in the steady state, like batches.
    fn shortest_path(&mut self, x: NodeId, y: NodeId) -> QueryAnswer {
        self.snap.shortest_path(x, y, &mut self.scratch)
    }

    fn route(&mut self, x: NodeId, y: NodeId) -> Result<Option<Route>, ClosureError> {
        self.snap.route(x, y, &mut self.scratch)
    }

    fn update(&mut self, update: &NetworkUpdate) -> Result<UpdateReport, ClosureError> {
        let report = self.snap.maintain(update, &mut self.scratch)?;
        // Eager per-update rebuild: the inline engine has no publication
        // boundary to amortize across, and a fresh index keeps
        // `connected` sweep-free immediately after the update.
        self.snap.ensure_reach();
        Ok(report)
    }

    fn precompute_stats(&self) -> PrecomputeStats {
        self.snap.precompute_stats()
    }

    fn snapshot(&self) -> EngineSnapshot {
        self.snap.clone()
    }

    /// Routed through the snapshot's reachability index when fresh —
    /// overriding the trait default, which computes a full shortest
    /// path to learn a boolean.
    fn connected(&mut self, x: NodeId, y: NodeId) -> bool {
        self.snap.connected(x, y, &mut self.scratch)
    }

    fn query_batch(&mut self, requests: &[QueryRequest]) -> BatchAnswer {
        self.snap.query_batch(requests, &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::{grid, two_triangles_bridge};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn grid_engine(cfg: EngineConfig) -> (ds_gen::GeneratedGraph, DisconnectionSetEngine) {
        let g = grid(10, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let engine = DisconnectionSetEngine::build(g.closure_graph(), frag, true, cfg).unwrap();
        (g, engine)
    }

    #[test]
    fn matches_global_dijkstra_everywhere() {
        let (g, engine) = grid_engine(EngineConfig::default());
        let csr = g.closure_graph();
        for x in (0..40).step_by(7) {
            for y in (0..40).step_by(5) {
                let got = engine.shortest_path(n(x), n(y)).cost;
                let want = baseline::shortest_path_cost(&csr, n(x), n(y));
                assert_eq!(got, want, "query {x}->{y}");
            }
        }
    }

    #[test]
    fn same_fragment_fast_path_uses_one_site() {
        let (_, engine) = grid_engine(EngineConfig::default());
        // Nodes 0 and 1 are in the first sweep fragment.
        let a = engine.shortest_path(n(0), n(1));
        assert_eq!(a.cost, Some(1));
        assert_eq!(a.best_chain.as_deref(), Some(&[0][..]));
        assert_eq!(a.stats.site_queries, 1);
    }

    #[test]
    fn self_query_is_zero() {
        let (_, engine) = grid_engine(EngineConfig::default());
        let a = engine.shortest_path(n(17), n(17));
        assert_eq!(a.cost, Some(0));
        assert!(engine.reachable(n(17), n(17)));
    }

    /// The steady-state `query_batch` path performs zero O(V) heap
    /// allocations: the engine's persistent scratch grows once (on the
    /// first batch) and is only reused from then on.
    #[test]
    fn query_batch_steady_state_is_allocation_free() {
        use crate::api::QueryRequest;
        let (_, mut engine) = grid_engine(EngineConfig::default());
        let requests: Vec<QueryRequest> = (0..8u32)
            .map(|i| QueryRequest::new(n(i), n(39 - i)))
            .collect();
        assert_eq!(engine.scratch_stats(), ds_graph::ScratchStats::default());
        let first = engine.query_batch(&requests);
        let warm = engine.scratch_stats();
        assert_eq!(warm.grows, 1, "arrays grow exactly once, on first use");
        assert!(warm.sweeps > 0);
        let second = engine.query_batch(&requests);
        let steady = engine.scratch_stats();
        assert_eq!(steady.grows, warm.grows, "steady state: no allocations");
        assert!(
            steady.sweeps > warm.sweeps,
            "batches really use the scratch"
        );
        assert_eq!(first.costs(), second.costs());
    }

    /// Per-phase precompute timing is exposed through the engine (and the
    /// `TcEngine` trait) so callers can see where build time goes.
    #[test]
    fn precompute_stats_exposed_through_the_trait() {
        let (_, mut engine) = grid_engine(EngineConfig::default());
        let stats = TcEngine::precompute_stats(&engine);
        assert_eq!(
            stats.strategy,
            crate::complementary::PrecomputeStrategy::Skeleton
        );
        assert!(stats.local_sweeps_ns > 0, "{stats:?}");
        assert!(stats.total_ns() >= stats.local_sweeps_ns);
        // Stats survive (and reflect) update maintenance.
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        engine
            .insert_connection(ds_graph::Edge::new(a, b, 1), 0)
            .unwrap();
        assert!(TcEngine::precompute_stats(&engine).total_ns() > 0);
    }

    /// The trait-level snapshot is the engine's own immutable half: same
    /// tables, same answers, attributed to the inline backend.
    #[test]
    fn snapshot_through_the_trait_answers_identically() {
        let (_, engine) = grid_engine(EngineConfig::default());
        let snap = TcEngine::snapshot(&engine);
        assert_eq!(snap.source_backend(), "inline");
        assert_eq!(snap.precompute_stats(), TcEngine::precompute_stats(&engine));
        let mut scratch = ScratchDijkstra::new();
        for (x, y) in [(0u32, 39u32), (5, 33), (12, 12)] {
            assert_eq!(
                snap.shortest_path(n(x), n(y), &mut scratch).cost,
                engine.shortest_path(n(x), n(y)).cost,
                "query {x}->{y}"
            );
        }
    }

    #[test]
    fn parallel_mode_agrees_with_sequential() {
        let (_, seq_engine) = grid_engine(EngineConfig::default());
        let (_, par_engine) = grid_engine(EngineConfig {
            mode: ExecutionMode::Parallel,
            ..EngineConfig::default()
        });
        for (x, y) in [(0u32, 39u32), (5, 33), (12, 27), (39, 0)] {
            assert_eq!(
                seq_engine.shortest_path(n(x), n(y)).cost,
                par_engine.shortest_path(n(x), n(y)).cost,
                "query {x}->{y}"
            );
        }
    }

    #[test]
    fn route_reconstruction_is_a_real_path() {
        let (g, engine) = grid_engine(EngineConfig {
            store_paths: true,
            ..EngineConfig::default()
        });
        let csr = g.closure_graph();
        let route = engine.route(n(0), n(39)).unwrap().expect("reachable");
        assert_eq!(
            Some(route.cost),
            baseline::shortest_path_cost(&csr, n(0), n(39))
        );
        assert_eq!(*route.nodes.first().unwrap(), n(0));
        assert_eq!(*route.nodes.last().unwrap(), n(39));
        // Every hop must be a real edge; costs must sum to the total.
        let mut total = 0;
        for hop in route.nodes.windows(2) {
            let cost = csr
                .neighbors(hop[0])
                .filter(|(t, _)| *t == hop[1])
                .map(|(_, c)| c)
                .min()
                .unwrap_or_else(|| panic!("hop {}->{} is not a real edge", hop[0], hop[1]));
            total += cost;
        }
        assert_eq!(total, route.cost);
    }

    #[test]
    fn route_requires_store_paths() {
        let (_, engine) = grid_engine(EngineConfig::default());
        assert_eq!(
            engine.route(n(0), n(5)).unwrap_err(),
            ClosureError::RoutesNotEnabled
        );
    }

    #[test]
    fn unreachable_is_none_not_error() {
        // Two disconnected triangles fragmented apart.
        let g = two_triangles_bridge();
        // Remove the bridge connection (2,3) to disconnect.
        let mut connections = g.connections.clone();
        connections.retain(|e| !(e.src == n(2) && e.dst == n(3)));
        let frag = ds_fragment::semantic::by_labels(
            6,
            &connections,
            &[0, 0, 0, 1, 1, 1],
            2,
            ds_fragment::CrossingPolicy::LowerBlock,
        )
        .unwrap();
        let csr = ds_graph::CsrGraph::from_edges(
            6,
            &ds_gen::output::expand_connections(&connections, true),
        );
        let engine =
            DisconnectionSetEngine::build(csr, frag, true, EngineConfig::default()).unwrap();
        let a = engine.shortest_path(n(0), n(4));
        assert_eq!(a.cost, None);
        assert!(!engine.reachable(n(0), n(4)));
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let g = grid(3, 3);
        let frag = linear_sweep(&g.edge_list(), &LinearConfig::default())
            .unwrap()
            .fragmentation;
        let wrong = grid(4, 4).closure_graph();
        assert!(matches!(
            DisconnectionSetEngine::build(wrong, frag, true, EngineConfig::default()),
            Err(ClosureError::NodeCountMismatch { .. })
        ));
    }

    #[test]
    fn stats_reflect_chain_structure() {
        let (_, engine) = grid_engine(EngineConfig::default());
        // Corner to corner crosses all 4 sweep fragments.
        let a = engine.shortest_path(n(0), n(39));
        assert!(a.stats.chains_evaluated >= 1);
        assert!(
            a.stats.site_queries >= 4,
            "at least one query per chain fragment"
        );
        assert!(a.stats.tuples_shipped > 0);
        assert!(
            !a.stats.enumerated,
            "linear fragmentation is loosely connected"
        );
    }
}
