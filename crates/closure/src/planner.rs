//! Query planning: locate the endpoints' fragments and enumerate the
//! chains of fragments to evaluate.
//!
//! §2.1: "for any two nodes in G there is only one chain of fragments …"
//! when the fragmentation graph is loosely connected; "if the
//! fragmentation is not loosely connected, it is required to consider all
//! possible chains of fragments independently."
//!
//! A chain `[f0, f1, …, fk]` turns into k+1 independent site subqueries:
//! `x → DS(f0,f1)` at site f0, `DS(fi-1,fi) → DS(fi,fi+1)` at the
//! intermediate sites, and `DS(fk-1,fk) → y` at site fk.

use std::collections::{BTreeMap, BTreeSet};

use ds_fragment::{FragmentId, Fragmentation, FragmentationGraph};
use ds_graph::{BitSet, NodeId};

use crate::error::ClosureError;

/// One site subquery of a chain plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteQuery {
    /// The site (fragment) that evaluates it.
    pub site: FragmentId,
    /// Entry nodes (the query source, or the upstream disconnection set).
    pub sources: Vec<NodeId>,
    /// Exit nodes (the downstream disconnection set, or the query target).
    pub targets: Vec<NodeId>,
}

/// A chain of fragments with its site subqueries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainPlan {
    pub fragments: Vec<FragmentId>,
    pub queries: Vec<SiteQuery>,
}

/// The full plan for one `(x, y)` query: every chain to evaluate.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    pub chains: Vec<ChainPlan>,
    /// True when the planner had to fall back to multi-chain enumeration
    /// (cyclic fragmentation graph).
    pub enumerated: bool,
}

/// Planner over a fixed fragmentation.
#[derive(Clone, Debug)]
pub struct Planner {
    membership: Vec<BitSet>,
    frag_graph: FragmentationGraph,
    ds: BTreeMap<(FragmentId, FragmentId), Vec<NodeId>>,
    max_chains: usize,
    max_chain_len: usize,
    /// Mandatory hub for Parallel Hierarchical Evaluation, if configured.
    hub: Option<FragmentId>,
}

impl Planner {
    /// Build a planner. `max_chains`/`max_chain_len` cap the enumeration
    /// on cyclic fragmentation graphs; `hub` switches on PHE routing.
    pub fn new(
        frag: &Fragmentation,
        max_chains: usize,
        max_chain_len: usize,
        hub: Option<FragmentId>,
    ) -> Self {
        Planner {
            membership: frag.node_membership(),
            frag_graph: frag.fragmentation_graph(),
            ds: frag.disconnection_sets(),
            max_chains,
            max_chain_len,
            hub,
        }
    }

    /// Fragments containing a node.
    pub fn fragments_of(&self, v: NodeId) -> Vec<FragmentId> {
        self.membership
            .iter()
            .enumerate()
            .filter(|(_, bs)| bs.contains(v.index()))
            .map(|(f, _)| f)
            .collect()
    }

    /// The disconnection set between two fragments (empty if none).
    pub fn ds_between(&self, a: FragmentId, b: FragmentId) -> &[NodeId] {
        let key = (a.min(b), a.max(b));
        self.ds.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The fragmentation graph the planner navigates.
    pub fn fragmentation_graph(&self) -> &FragmentationGraph {
        &self.frag_graph
    }

    /// Plan a query from `x` to `y`.
    pub fn plan(&self, x: NodeId, y: NodeId) -> Result<QueryPlan, ClosureError> {
        let fx = self.fragments_of(x);
        if fx.is_empty() {
            return Err(ClosureError::NodeNotInAnyFragment(x));
        }
        let fy = self.fragments_of(y);
        if fy.is_empty() {
            return Err(ClosureError::NodeNotInAnyFragment(y));
        }
        let (fragment_chains, enumerated) = self.chain_sets(&fx, &fy);
        let chains = fragment_chains
            .into_iter()
            .filter_map(|c| self.instantiate_chain(&c, x, y))
            .collect();
        Ok(QueryPlan { chains, enumerated })
    }

    /// Enumerate the fragment chains connecting any fragment of `fx` to
    /// any fragment of `fy`, without instantiating site subqueries.
    ///
    /// This is the expensive half of [`Planner::plan`]: it depends only on
    /// the endpoint *fragment sets*, so batch evaluation computes it once
    /// per `(source-fragment, target-fragment)` pair and reuses it across
    /// every query with those endpoints' fragments (see
    /// [`crate::api::BatchPlanner`]). The second return value reports
    /// whether multi-chain enumeration was needed (cyclic fragmentation
    /// graph).
    pub fn chain_sets(&self, fx: &[FragmentId], fy: &[FragmentId]) -> (Vec<Vec<FragmentId>>, bool) {
        let mut fragment_chains: BTreeSet<Vec<FragmentId>> = BTreeSet::new();
        let mut enumerated = false;
        for &a in fx {
            for &b in fy {
                if let Some(hub) = self.hub {
                    // PHE: "a separate fragment that mandatorily has to be
                    // traversed when going to a non-adjacent fragment."
                    for chain in hub_chains(a, b, hub, &self.frag_graph) {
                        fragment_chains.insert(chain);
                    }
                    continue;
                }
                if a == b {
                    fragment_chains.insert(vec![a]);
                    continue;
                }
                if let Some(chain) = self.frag_graph.unique_chain(a, b) {
                    fragment_chains.insert(chain);
                } else {
                    enumerated = true;
                    for chain in self
                        .frag_graph
                        .chains(a, b, self.max_chains, self.max_chain_len)
                    {
                        fragment_chains.insert(chain);
                    }
                }
            }
        }
        (fragment_chains.into_iter().collect(), enumerated)
    }

    /// Turn a fragment chain into site subqueries. Returns `None` when a
    /// junction disconnection set is empty (chain unusable).
    pub fn instantiate_chain(
        &self,
        chain: &[FragmentId],
        x: NodeId,
        y: NodeId,
    ) -> Option<ChainPlan> {
        let l = chain.len();
        if l == 1 {
            return Some(ChainPlan {
                fragments: chain.to_vec(),
                queries: vec![SiteQuery {
                    site: chain[0],
                    sources: vec![x],
                    targets: vec![y],
                }],
            });
        }
        let mut queries = Vec::with_capacity(l);
        for (k, &site) in chain.iter().enumerate() {
            let sources = if k == 0 {
                vec![x]
            } else {
                let ds = self.ds_between(chain[k - 1], site);
                if ds.is_empty() {
                    return None;
                }
                ds.to_vec()
            };
            let targets = if k == l - 1 {
                vec![y]
            } else {
                let ds = self.ds_between(site, chain[k + 1]);
                if ds.is_empty() {
                    return None;
                }
                ds.to_vec()
            };
            queries.push(SiteQuery {
                site,
                sources,
                targets,
            });
        }
        Some(ChainPlan {
            fragments: chain.to_vec(),
            queries,
        })
    }
}

/// PHE chains between `a` and `b` through mandatory hub `h`:
/// `[a]` when a == b, `[a, b]` when directly adjacent (one of them may be
/// the hub itself), else `[a, h, b]`.
fn hub_chains(
    a: FragmentId,
    b: FragmentId,
    h: FragmentId,
    fg: &FragmentationGraph,
) -> Vec<Vec<FragmentId>> {
    if a == b {
        return vec![vec![a]];
    }
    let adjacent = fg.neighbors(a).contains(&b);
    let mut out = Vec::new();
    if adjacent {
        out.push(vec![a, b]);
    }
    if a != h && b != h && fg.neighbors(a).contains(&h) && fg.neighbors(b).contains(&h) {
        out.push(vec![a, h, b]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::Edge;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
            .collect()
    }

    /// Path 0-1-2-3-4-5-6 in three fragments sharing nodes 2 and 4.
    fn three_fragment_path() -> Fragmentation {
        Fragmentation::new(
            7,
            vec![
                edges(&[(0, 1), (1, 2)]),
                edges(&[(2, 3), (3, 4)]),
                edges(&[(4, 5), (5, 6)]),
            ],
            vec![vec![], vec![], vec![]],
        )
    }

    #[test]
    fn same_fragment_plan_is_single_site() {
        let frag = three_fragment_path();
        let p = Planner::new(&frag, 16, 8, None);
        let plan = p.plan(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(plan.chains.len(), 1);
        assert_eq!(plan.chains[0].fragments, vec![0]);
        assert_eq!(
            plan.chains[0].queries,
            vec![SiteQuery {
                site: 0,
                sources: vec![NodeId(0)],
                targets: vec![NodeId(1)]
            }]
        );
        assert!(!plan.enumerated);
    }

    #[test]
    fn cross_chain_plan_has_one_query_per_site() {
        let frag = three_fragment_path();
        let p = Planner::new(&frag, 16, 8, None);
        let plan = p.plan(NodeId(0), NodeId(6)).unwrap();
        assert_eq!(plan.chains.len(), 1);
        let chain = &plan.chains[0];
        assert_eq!(chain.fragments, vec![0, 1, 2]);
        assert_eq!(chain.queries.len(), 3);
        assert_eq!(chain.queries[0].targets, vec![NodeId(2)]);
        assert_eq!(chain.queries[1].sources, vec![NodeId(2)]);
        assert_eq!(chain.queries[1].targets, vec![NodeId(4)]);
        assert_eq!(chain.queries[2].sources, vec![NodeId(4)]);
        assert_eq!(chain.queries[2].targets, vec![NodeId(6)]);
    }

    #[test]
    fn border_endpoint_generates_multiple_chains() {
        // Node 2 belongs to fragments 0 and 1: plans from it consider
        // both starting fragments.
        let frag = three_fragment_path();
        let p = Planner::new(&frag, 16, 8, None);
        let plan = p.plan(NodeId(2), NodeId(6)).unwrap();
        assert!(plan.chains.len() >= 2);
        let lens: BTreeSet<usize> = plan.chains.iter().map(|c| c.fragments.len()).collect();
        assert!(lens.contains(&2), "direct chain from fragment 1");
        assert!(lens.contains(&3), "chain from fragment 0 through 1");
    }

    #[test]
    fn cyclic_fragmentation_enumerates() {
        // Ring of 4 fragments: 0-1-2-3-0, query across the ring.
        let frag = Fragmentation::new(
            8,
            vec![
                edges(&[(0, 1)]),
                edges(&[(1, 2), (2, 3)]),
                edges(&[(3, 4), (4, 5)]),
                edges(&[(5, 6), (6, 7), (7, 0)]),
            ],
            vec![vec![], vec![], vec![], vec![]],
        );
        assert!(!frag.fragmentation_graph().is_acyclic());
        let p = Planner::new(&frag, 16, 8, None);
        let plan = p.plan(NodeId(1), NodeId(4)).unwrap();
        assert!(plan.enumerated);
        assert!(plan.chains.len() >= 2, "both ways around the ring");
    }

    #[test]
    fn unknown_node_is_an_error() {
        let frag = three_fragment_path();
        // Node universe is 7 nodes; extend membership query with a node
        // that exists but is in no fragment.
        let frag2 = Fragmentation::new(
            8,
            frag.fragments()
                .iter()
                .map(|f| f.edges().to_vec())
                .collect(),
            vec![vec![], vec![], vec![]],
        );
        let p = Planner::new(&frag2, 16, 8, None);
        assert_eq!(
            p.plan(NodeId(7), NodeId(0)).unwrap_err(),
            ClosureError::NodeNotInAnyFragment(NodeId(7))
        );
    }

    #[test]
    fn hub_routing_limits_chain_length() {
        // Star: clusters 0,1,2 all adjacent only to hub 3.
        let frag = Fragmentation::new(
            9,
            vec![
                edges(&[(0, 1)]),
                edges(&[(3, 4)]),
                edges(&[(6, 7)]),
                edges(&[(1, 3), (4, 6)]), // hub holds the cross links
            ],
            vec![vec![], vec![], vec![], vec![]],
        );
        let p = Planner::new(&frag, 16, 8, Some(3));
        let plan = p.plan(NodeId(0), NodeId(7)).unwrap();
        assert!(!plan.chains.is_empty());
        for c in &plan.chains {
            assert!(c.fragments.len() <= 3);
            if c.fragments.len() == 3 {
                assert_eq!(c.fragments[1], 3, "middle hop must be the hub");
            }
        }
    }

    #[test]
    fn unconnected_fragments_produce_empty_plan() {
        let frag = Fragmentation::new(
            4,
            vec![edges(&[(0, 1)]), edges(&[(2, 3)])],
            vec![vec![], vec![]],
        );
        let p = Planner::new(&frag, 16, 8, None);
        let plan = p.plan(NodeId(0), NodeId(3)).unwrap();
        assert!(plan.chains.is_empty());
    }
}
