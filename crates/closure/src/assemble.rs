//! Final assembly: "a sequence of binary joins between a number of very
//! small relations" (§2.1).
//!
//! Phase one leaves one small `(entry, exit, cost)` relation per site on
//! the chain. The answer is the min-plus fold of those relations; the
//! junction nodes that achieve the minimum are recovered with a dynamic
//! program over the same relations (for route reconstruction).

use std::collections::HashMap;

use ds_graph::{Cost, NodeId};
use ds_relation::join::compose_min_plus;
use ds_relation::{PathTuple, Relation};

/// Fold the chain's segment relations into an end-to-end relation and
/// read the `(x, y)` cost.
pub fn chain_cost(segments: &[Relation<PathTuple>], x: NodeId, y: NodeId) -> Option<Cost> {
    chain_cost_refs(&segments.iter().collect::<Vec<_>>(), x, y)
}

/// [`chain_cost`] over borrowed segments — lets batch evaluation fold
/// cached interior relations without cloning them per query.
pub fn chain_cost_refs(segments: &[&Relation<PathTuple>], x: NodeId, y: NodeId) -> Option<Cost> {
    let mut acc = (*segments.first()?).clone();
    for seg in &segments[1..] {
        acc = compose_min_plus(&acc, seg);
        if acc.is_empty() {
            return None;
        }
    }
    acc.cost_of(x, y)
}

/// Recover the cheapest junction sequence `x, w1, …, wk, y` through the
/// segment relations, with its total cost. The `wi` are the disconnection
/// set nodes the optimal path crosses — the paper's border cities.
pub fn best_waypoints(
    segments: &[Relation<PathTuple>],
    x: NodeId,
    y: NodeId,
) -> Option<(Cost, Vec<NodeId>)> {
    // DP layer: node -> (cost from x, waypoints so far including node).
    let mut layer: HashMap<NodeId, (Cost, Vec<NodeId>)> = HashMap::new();
    for t in segments.first()?.rows() {
        if t.src != x {
            continue;
        }
        let entry = layer.entry(t.dst).or_insert((t.cost, vec![x, t.dst]));
        if t.cost < entry.0 {
            *entry = (t.cost, vec![x, t.dst]);
        }
    }
    for seg in &segments[1..] {
        let mut next: HashMap<NodeId, (Cost, Vec<NodeId>)> = HashMap::new();
        for t in seg.rows() {
            let Some((c0, path0)) = layer.get(&t.src) else {
                continue;
            };
            let cand = c0 + t.cost;
            match next.get_mut(&t.dst) {
                Some(best) if best.0 <= cand => {}
                slot => {
                    let mut path = path0.clone();
                    path.push(t.dst);
                    match slot {
                        Some(best) => *best = (cand, path),
                        None => {
                            next.insert(t.dst, (cand, path));
                        }
                    }
                }
            }
        }
        layer = next;
        if layer.is_empty() {
            return None;
        }
    }
    let (cost, mut waypoints) = layer.remove(&y)?;
    // The first segment's source and subsequent layers append dst, so the
    // final node is y already; dedup consecutive repeats (x may equal a
    // border node when the query starts on a border).
    waypoints.dedup();
    Some((cost, waypoints))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn seg(name: &str, rows: &[(u32, u32, u64)]) -> Relation<PathTuple> {
        Relation::from_rows(
            name,
            rows.iter()
                .map(|&(s, d, c)| PathTuple::new(n(s), n(d), c))
                .collect(),
        )
    }

    #[test]
    fn single_segment_chain() {
        let s = seg("s", &[(0, 9, 4)]);
        assert_eq!(chain_cost(std::slice::from_ref(&s), n(0), n(9)), Some(4));
        let (c, w) = best_waypoints(&[s], n(0), n(9)).unwrap();
        assert_eq!(c, 4);
        assert_eq!(w, vec![n(0), n(9)]);
    }

    #[test]
    fn two_segment_chain_picks_cheaper_junction() {
        // Junctions 5 and 6; route via 6 is cheaper in total.
        let s1 = seg("s1", &[(0, 5, 1), (0, 6, 2)]);
        let s2 = seg("s2", &[(5, 9, 10), (6, 9, 3)]);
        assert_eq!(chain_cost(&[s1.clone(), s2.clone()], n(0), n(9)), Some(5));
        let (c, w) = best_waypoints(&[s1, s2], n(0), n(9)).unwrap();
        assert_eq!(c, 5);
        assert_eq!(w, vec![n(0), n(6), n(9)]);
    }

    #[test]
    fn broken_chain_is_none() {
        let s1 = seg("s1", &[(0, 5, 1)]);
        let s2 = seg("s2", &[(6, 9, 1)]); // junction mismatch
        assert_eq!(chain_cost(&[s1.clone(), s2.clone()], n(0), n(9)), None);
        assert_eq!(best_waypoints(&[s1, s2], n(0), n(9)), None);
    }

    #[test]
    fn waypoints_match_chain_cost_on_three_segments() {
        let s1 = seg("s1", &[(0, 1, 2), (0, 2, 1)]);
        let s2 = seg("s2", &[(1, 3, 1), (2, 3, 5), (2, 4, 1)]);
        let s3 = seg("s3", &[(3, 9, 1), (4, 9, 4)]);
        let segs = [s1, s2, s3];
        let cost = chain_cost(&segs, n(0), n(9)).unwrap();
        let (wcost, w) = best_waypoints(&segs, n(0), n(9)).unwrap();
        assert_eq!(cost, wcost);
        assert_eq!(cost, 4); // 0-1 (2), 1-3 (1), 3-9 (1)
        assert_eq!(w, vec![n(0), n(1), n(3), n(9)]);
    }

    #[test]
    fn empty_segment_list() {
        assert_eq!(chain_cost(&[], n(0), n(1)), None);
        assert_eq!(best_waypoints(&[], n(0), n(1)), None);
    }

    #[test]
    fn source_on_border_dedups_waypoints() {
        // x itself is the junction node.
        let s1 = seg("s1", &[(5, 5, 0)]);
        let s2 = seg("s2", &[(5, 9, 2)]);
        let (c, w) = best_waypoints(&[s1, s2], n(5), n(9)).unwrap();
        assert_eq!(c, 2);
        assert_eq!(w, vec![n(5), n(9)]);
    }
}
