//! Update maintenance — the disadvantage the paper acknowledges:
//! "The disadvantage of the disconnection set approach is mainly due to
//! the pre-processing required for building the complementary information
//! and to the careful treatment of updates. … As long as updates are not
//! too frequent, the pre-processing costs may be amortized over many
//! queries." (§2.1)
//!
//! This module makes that treatment concrete:
//!
//! * **Insertions** are truly incremental. Adding a connection can only
//!   *decrease* global distances, and any improved shortest path uses the
//!   new edge; so two Dijkstra runs — one on the reverse graph from the
//!   new edge's source, one forward from its target — refresh every
//!   shortcut: `dist'(a,b) = min(dist(a,b), dist(a,u) + c + dist(v,b))`.
//!   Cost: O(2·(V log V + E)) instead of one Dijkstra per border node.
//! * **Deletions** can increase distances, which per-pair minima cannot
//!   repair locally; the engine falls back to a full complementary
//!   recompute (the paper's amortization argument applies).

use ds_fragment::FragmentId;
use ds_graph::{dijkstra, Cost, CsrGraph, Edge, NodeId};

use crate::api::NetworkUpdate;
use crate::complementary::ComplementaryInfo;
use crate::engine::DisconnectionSetEngine;
use crate::error::ClosureError;
use crate::local::augmented_graph;

/// Outcome of an incremental update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// Shortcut tuples whose cost improved.
    pub shortcuts_improved: usize,
    /// Whether the engine had to fall back to a full recompute.
    pub full_recompute: bool,
}

impl DisconnectionSetEngine {
    /// Insert a connection into fragment `owner`. For symmetric engines
    /// the reverse direction is inserted too.
    ///
    /// Both endpoints must already belong to the owner fragment —
    /// inserting within a region never changes the fragmentation's node
    /// sets, so disconnection sets (and the set of shortcut *pairs*) stay
    /// fixed and only shortcut *costs* can improve. Growing a fragment's
    /// node set is a re-fragmentation concern, out of scope for an
    /// engine-level update.
    pub fn insert_connection(
        &mut self,
        edge: Edge,
        owner: FragmentId,
    ) -> Result<UpdateReport, ClosureError> {
        // 1. Grow the global graph and the owner's fragment (the
        //    validate+mutate path shared with every backend).
        let symmetric = self.is_symmetric();
        self.apply_network_update(&NetworkUpdate::Insert { edge, owner })?;

        // 2. Refresh shortcut costs with two Dijkstra sweeps per inserted
        //    direction.
        let mut improved = self.improve_shortcuts(edge.src, edge.dst, edge.cost);
        if symmetric && !edge.is_loop() {
            improved += self.improve_shortcuts(edge.dst, edge.src, edge.cost);
        }

        // 3. Stored shortcut paths cannot be patched pair-locally; if the
        //    engine keeps them (route reconstruction), recompute in full.
        let full = self.complementary().has_paths() && improved > 0;
        if full {
            self.recompute_complementary();
        } else {
            self.rebuild_augmented();
        }
        Ok(UpdateReport {
            shortcuts_improved: improved,
            full_recompute: full,
        })
    }

    /// Remove every connection `src -> dst` (and the reverse direction on
    /// symmetric engines) from fragment `owner`. Distances may grow, so
    /// complementary information is recomputed in full.
    pub fn remove_connection(
        &mut self,
        src: NodeId,
        dst: NodeId,
        owner: FragmentId,
    ) -> Result<UpdateReport, ClosureError> {
        if !self.apply_network_update(&NetworkUpdate::Remove { src, dst, owner })? {
            return Ok(UpdateReport {
                shortcuts_improved: 0,
                full_recompute: false,
            });
        }
        self.recompute_complementary();
        Ok(UpdateReport {
            shortcuts_improved: 0,
            full_recompute: true,
        })
    }

    /// Lower every shortcut `(a, b)` to
    /// `min(cost, dist(a, u) + c + dist(v, b))` after inserting `u -> v`
    /// with cost `c`. Exact because improved paths must use the new edge.
    fn improve_shortcuts(&mut self, u: NodeId, v: NodeId, c: Cost) -> usize {
        let to_u = dijkstra::single_source(&self.graph().reversed(), u);
        let from_v = dijkstra::single_source(self.graph(), v);
        self.map_shortcuts(|e| {
            let (Some(a_u), Some(v_b)) = (to_u.cost(e.src), from_v.cost(e.dst)) else {
                return None;
            };
            let cand = a_u + c + v_b;
            (cand < e.cost).then_some(cand)
        })
    }
}

/// Crate-internal mutation hooks for the engine (kept out of the public
/// surface; update flows are the only callers).
impl DisconnectionSetEngine {
    pub(crate) fn rebuild_augmented_for(
        graph: &CsrGraph,
        frag: &ds_fragment::Fragmentation,
        symmetric: bool,
        comp: &ComplementaryInfo,
    ) -> Vec<CsrGraph> {
        frag.fragments()
            .iter()
            .map(|f| {
                augmented_graph(
                    graph.node_count(),
                    f.edges(),
                    symmetric,
                    comp.shortcuts(f.id()),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::baseline;
    use crate::engine::{DisconnectionSetEngine, EngineConfig};
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::grid;
    use ds_graph::{Edge, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn build() -> (ds_gen::GeneratedGraph, DisconnectionSetEngine) {
        let g = grid(8, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let e =
            DisconnectionSetEngine::build(g.closure_graph(), frag, true, EngineConfig::default())
                .unwrap();
        (g, e)
    }

    fn check_all(engine: &DisconnectionSetEngine) {
        let csr = engine.graph().clone();
        for x in (0..32).step_by(5) {
            for y in (0..32).step_by(7) {
                assert_eq!(
                    engine.shortest_path(n(x), n(y)).cost,
                    baseline::shortest_path_cost(&csr, n(x), n(y)),
                    "{x}->{y} after update"
                );
            }
        }
    }

    #[test]
    fn insert_within_fragment_stays_exact() {
        let (_, mut engine) = build();
        // Find an in-fragment non-adjacent pair and add a zero-ish cost
        // shortcut between them.
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let report = engine.insert_connection(Edge::new(a, b, 1), 0).unwrap();
        assert!(!report.full_recompute);
        check_all(&engine);
    }

    #[test]
    fn insert_improves_cross_fragment_queries() {
        let (_, mut engine) = build();
        let before = engine.shortest_path(n(0), n(31)).cost.unwrap();
        // A cheap diagonal inside fragment 0 shortens cross-grid routes.
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let report = engine.insert_connection(Edge::new(a, b, 1), 0).unwrap();
        let after = engine.shortest_path(n(0), n(31)).cost.unwrap();
        assert!(after <= before, "insertion cannot lengthen paths");
        if after < before {
            assert!(
                report.shortcuts_improved > 0,
                "improvement must flow via shortcuts"
            );
        }
        check_all(&engine);
    }

    #[test]
    fn insert_endpoint_outside_owner_rejected() {
        let (_, mut engine) = build();
        // Node 31 (last column) is not in fragment 0.
        let err = engine
            .insert_connection(Edge::new(n(0), n(31), 1), 0)
            .unwrap_err();
        assert!(matches!(err, crate::ClosureError::NodeNotInAnyFragment(_)));
    }

    #[test]
    fn remove_connection_stays_exact() {
        let (_, mut engine) = build();
        // Remove a real in-fragment connection.
        let f0 = engine.fragmentation().fragment(0).clone();
        let e = f0.edges()[0];
        let report = engine.remove_connection(e.src, e.dst, 0).unwrap();
        assert!(report.full_recompute);
        check_all(&engine);
    }

    #[test]
    fn remove_missing_connection_is_noop() {
        let (_, mut engine) = build();
        let before = engine.shortest_path(n(0), n(31)).cost;
        let report = engine.remove_connection(n(0), n(0), 0).unwrap();
        assert_eq!(report.shortcuts_improved, 0);
        assert!(!report.full_recompute);
        assert_eq!(engine.shortest_path(n(0), n(31)).cost, before);
    }

    #[test]
    fn updates_with_stored_paths_keep_routes_real() {
        let g = grid(8, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let mut engine = DisconnectionSetEngine::build(
            g.closure_graph(),
            frag,
            true,
            EngineConfig {
                store_paths: true,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        engine.insert_connection(Edge::new(a, b, 1), 0).unwrap();
        let csr = engine.graph().clone();
        let route = engine.route(n(0), n(31)).unwrap().unwrap();
        assert_eq!(
            Some(route.cost),
            baseline::shortest_path_cost(&csr, n(0), n(31))
        );
        let mut total = 0;
        for hop in route.nodes.windows(2) {
            total += csr
                .neighbors(hop[0])
                .filter(|(t, _)| *t == hop[1])
                .map(|(_, c)| c)
                .min()
                .expect("real hop");
        }
        assert_eq!(total, route.cost);
    }
}
