//! Update maintenance — the disadvantage the paper acknowledges:
//! "The disadvantage of the disconnection set approach is mainly due to
//! the pre-processing required for building the complementary information
//! and to the careful treatment of updates. … As long as updates are not
//! too frequent, the pre-processing costs may be amortized over many
//! queries." (§2.1)
//!
//! This module makes that treatment concrete — and *incremental* for both
//! insertions and deletions:
//!
//! * **Insertions** add a connection, which can only *decrease* global
//!   distances, and any improved shortest path uses the new edge; so two
//!   Dijkstra runs — one on the reverse graph from the new edge's source,
//!   one forward from its target — refresh every shortcut:
//!   `dist'(a,b) = min(dist(a,b), dist(a,u) + c + dist(v,b))`. Stored
//!   shortcut paths are patched from the same two sweeps
//!   (`path(a,u) ++ path(v,b)`), so inserts never recompute in full.
//! * **Deletions** can increase distances, which per-pair minima cannot
//!   repair locally — but only for shortcuts whose shortest path *used*
//!   the deleted edge. The **deletion repair rule**: a shortcut `(a, b)`
//!   is affected by removing `u -> v` with cost `c` iff, over the
//!   pre-deletion distances, `dist(a,u) + c + dist(v,b) == dist(a,b)`
//!   (any shortest path through the edge achieves exactly that sum, and
//!   the stored cost *is* `dist(a,b)`). The engine detects the affected
//!   border sources with two Dijkstra sweeps per removed direction, then
//!   re-runs Dijkstra on the post-deletion graph only from those sources.
//!
//! The repair stays within the incremental regime unless one of two
//! fallback conditions holds, in which case the complementary information
//! is recomputed in full and the report says why
//! ([`UpdateReport::fallback_reason`]):
//!
//! * [`FallbackReason::DisconnectionSetCrossing`] — the deleted edge
//!   joins two border nodes (it lies *in* a disconnection-set crossing),
//!   so it may itself support shortcut pairs whose set membership the
//!   per-source repair cannot re-derive.
//! * [`FallbackReason::Disconnected`] — the deletion made a previously
//!   reachable border pair unreachable (e.g. a bridge edge); shortcut
//!   tuples must then be *dropped*, not re-costed, which is the
//!   recompute's job.
//!
//! [`maintain`] is the shared maintenance path: both backends (the inline
//! engine and the message-passing machine) drive their updates through
//! it, so both produce identical [`UpdateReport`] accounting; the machine
//! additionally turns the returned touched-site set into `Delta` messages
//! (see `ds_machine::protocol`).

use std::collections::BTreeSet;
use std::sync::Arc;

use ds_fragment::{FragmentId, Fragmentation};
use ds_graph::{dijkstra, Cost, CsrGraph, Edge, NodeId, ScratchDijkstra};

use crate::api::{apply_update, validate_insert, NetworkUpdate};
use crate::complementary::ComplementaryInfo;
use crate::engine::EngineConfig;
use crate::error::ClosureError;

/// Why an update fell back to a full complementary recompute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The deleted edge connects two border nodes — it lies in a
    /// disconnection-set crossing, outside the repair rule's regime.
    DisconnectionSetCrossing,
    /// The deletion disconnected a previously reachable border pair
    /// (e.g. a bridge edge between fragments' borders).
    Disconnected,
}

/// Outcome of one update, with the accounting both backends populate
/// through the shared [`maintain`] path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// Shortcut tuples whose cost improved (insert maintenance).
    pub shortcuts_improved: usize,
    /// Shortcut tuples whose cost was repaired upward (deletion repair).
    pub shortcuts_repaired: usize,
    /// Whether the engine had to fall back to a full recompute.
    pub full_recompute: bool,
    /// Why the fallback happened; `None` on the incremental path
    /// (invariant: `full_recompute == fallback_reason.is_some()`).
    pub fallback_reason: Option<FallbackReason>,
    /// Sites whose state (fragment edges or shortcut table) changed —
    /// the sites a message-passing backend must ship a delta to.
    pub sites_touched: usize,
    /// Shortcut tuples shipped to refresh the touched sites' tables.
    pub tuples_shipped: usize,
}

impl UpdateReport {
    /// A report for an update that changed nothing (no-op removal).
    pub fn noop() -> Self {
        UpdateReport {
            shortcuts_improved: 0,
            shortcuts_repaired: 0,
            full_recompute: false,
            fallback_reason: None,
            sites_touched: 0,
            tuples_shipped: 0,
        }
    }
}

/// Aggregate outcome of [`crate::api::TcEngine::update_batch`].
#[derive(Clone, Debug, Default)]
pub struct UpdateBatchReport {
    /// One report per update, in application order.
    pub reports: Vec<UpdateReport>,
}

impl UpdateBatchReport {
    /// Updates that fell back to a full recompute.
    pub fn full_recomputes(&self) -> usize {
        self.reports.iter().filter(|r| r.full_recompute).count()
    }

    /// Total shortcut tuples shipped across the batch.
    pub fn tuples_shipped(&self) -> usize {
        self.reports.iter().map(|r| r.tuples_shipped).sum()
    }

    /// Total site touches across the batch.
    pub fn sites_touched(&self) -> usize {
        self.reports.iter().map(|r| r.sites_touched).sum()
    }

    /// Fraction of updates that stayed incremental (1.0 when none fell
    /// back; 1.0 for an empty batch).
    pub fn incremental_fraction(&self) -> f64 {
        if self.reports.is_empty() {
            return 1.0;
        }
        1.0 - self.full_recomputes() as f64 / self.reports.len() as f64
    }
}

/// How one update could have affected the *reachability* relation —
/// the structural facts a reachability-index owner needs to decide
/// keep-vs-rebuild without recomputing anything. [`maintain`] reports
/// them; the owners (`EngineSnapshot::maintain_cow`, the machine
/// coordinator) apply the rules:
///
/// * `Unchanged` — keep the index as-is;
/// * `Inserted` — keep iff the index already answers `src` reaches
///   `dst` (and the reverse on symmetric networks): an edge inside the
///   existing reachability relation adds no pairs;
/// * `Removed` — keep iff `parallel_remains`: a surviving parallel
///   connection carries every path the removed one did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectivityEffect {
    /// No structural change (no-op removal).
    Unchanged,
    /// A connection `src -> dst` was inserted (plus `dst -> src` on
    /// symmetric networks).
    Inserted { src: NodeId, dst: NodeId },
    /// A connection was removed; `parallel_remains` is true when the
    /// post-update global graph still holds an edge for every removed
    /// direction (a parallel connection, e.g. one owned by another
    /// fragment), so reachability is provably unchanged.
    Removed { parallel_remains: bool },
}

/// What a backend must do after [`maintain`] returns: refresh the listed
/// sites. The inline engine rebuilds their augmented graphs; the machine
/// ships them `Delta` messages.
#[derive(Clone, Debug)]
pub struct Maintenance {
    pub report: UpdateReport,
    /// Sites whose shortcut tables changed (all sites after a fallback).
    pub shortcut_sites: Vec<FragmentId>,
    /// The fragment whose edge set changed; `None` for a no-op removal.
    pub owner: Option<FragmentId>,
    /// The structural connectivity facts of this update (for
    /// reachability-index maintenance).
    pub connectivity: ConnectivityEffect,
}

impl Maintenance {
    fn noop() -> Self {
        Maintenance {
            report: UpdateReport::noop(),
            shortcut_sites: Vec::new(),
            owner: None,
            connectivity: ConnectivityEffect::Unchanged,
        }
    }

    fn incremental(
        comp: &ComplementaryInfo,
        owner: FragmentId,
        shortcut_sites: Vec<FragmentId>,
        improved: usize,
        repaired: usize,
    ) -> Self {
        let mut touched: BTreeSet<FragmentId> = shortcut_sites.iter().copied().collect();
        touched.insert(owner);
        let tuples_shipped = shortcut_sites
            .iter()
            .map(|&f| comp.shortcuts(f).len())
            .sum();
        Maintenance {
            report: UpdateReport {
                shortcuts_improved: improved,
                shortcuts_repaired: repaired,
                full_recompute: false,
                fallback_reason: None,
                sites_touched: touched.len(),
                tuples_shipped,
            },
            shortcut_sites,
            owner: Some(owner),
            connectivity: ConnectivityEffect::Unchanged,
        }
    }
}

/// The shared maintenance path: validate and apply the structural change,
/// then keep `comp` exact — incrementally when possible, by full
/// recompute otherwise. Both backends call this with their retained
/// state (including a persistent `scratch` that the deletion repair
/// sweeps reuse); they differ only in how they act on the returned
/// touched sites.
///
/// `graph` and `frag` are owned through [`Arc`] handles: a caller whose
/// state is shared with published snapshots (the serve writer's working
/// copy) pays a copy only for the pieces an update actually replaces —
/// the rebuilt global graph gets a fresh `Arc`, the fragmentation is
/// detached via [`Arc::make_mut`] once per shared epoch, and `comp`
/// detaches per-site tables internally the same way.
pub fn maintain(
    graph: &mut Arc<CsrGraph>,
    frag: &mut Arc<Fragmentation>,
    symmetric: bool,
    cfg: &EngineConfig,
    comp: &mut ComplementaryInfo,
    update: &NetworkUpdate,
    scratch: &mut ScratchDijkstra,
) -> Result<Maintenance, ClosureError> {
    match *update {
        NetworkUpdate::Insert { edge, owner } => {
            // Validation runs against the shared fragmentation before
            // anything is detached, so an invalid update clones nothing.
            validate_insert(frag, edge, owner)?;
            let new_graph = apply_update(graph, Arc::make_mut(frag), symmetric, update)?
                .expect("insertions always change the graph");
            *graph = Arc::new(new_graph);
            let rev = graph.reversed();
            let mut per_site = improve(comp, graph, &rev, edge.src, edge.dst, edge.cost);
            if symmetric && !edge.is_loop() {
                let second = improve(comp, graph, &rev, edge.dst, edge.src, edge.cost);
                for (a, b) in per_site.iter_mut().zip(second) {
                    *a += b;
                }
            }
            let improved = per_site.iter().sum();
            let shortcut_sites = nonzero_sites(&per_site);
            let mut m = Maintenance::incremental(comp, owner, shortcut_sites, improved, 0);
            m.connectivity = ConnectivityEffect::Inserted {
                src: edge.src,
                dst: edge.dst,
            };
            Ok(m)
        }
        NetworkUpdate::Remove { src, dst, owner } => {
            if owner >= frag.fragment_count() {
                return Err(ClosureError::NodeNotInAnyFragment(src));
            }
            let matches = |e: &Edge| e.connects(src, dst, symmetric);
            if !frag.fragment(owner).edges().iter().any(&matches) {
                return Ok(Maintenance::noop());
            }
            // The removed connections as directed edges of the global
            // closure graph (deduplicated — parallel edges of equal cost
            // need one sweep, not two).
            let removed: BTreeSet<(NodeId, NodeId, Cost)> = frag
                .fragment(owner)
                .edges()
                .iter()
                .filter(|e| matches(e))
                .flat_map(|e| {
                    let mut dirs = vec![(e.src, e.dst, e.cost)];
                    if symmetric && !e.is_loop() {
                        dirs.push((e.dst, e.src, e.cost));
                    }
                    dirs
                })
                .collect();
            let crossing = is_border(frag, src) && is_border(frag, dst);
            // Affected-set detection runs on the *pre-deletion* graph: the
            // repair rule compares against the stored (old) distances.
            let affected = if crossing {
                BTreeSet::new()
            } else {
                affected_sources(graph, comp, frag.fragment_count(), &removed)
            };
            let new_graph = apply_update(graph, Arc::make_mut(frag), symmetric, update)?
                .expect("matched edges exist");
            *graph = Arc::new(new_graph);
            // Reachability fact: does the post-update graph still carry
            // every removed direction through a parallel connection?
            let still = |a: NodeId, b: NodeId| graph.out_targets(a).contains(&b);
            let connectivity = ConnectivityEffect::Removed {
                parallel_remains: still(src, dst) && (!symmetric || src == dst || still(dst, src)),
            };
            let mut m = if crossing {
                full_recompute(
                    graph,
                    frag,
                    cfg,
                    comp,
                    owner,
                    FallbackReason::DisconnectionSetCrossing,
                )
            } else {
                match comp.repair_sources(graph, &affected, scratch) {
                    Ok(per_site) => {
                        let repaired = per_site.iter().sum();
                        let shortcut_sites = nonzero_sites(&per_site);
                        Maintenance::incremental(comp, owner, shortcut_sites, 0, repaired)
                    }
                    Err(_) => {
                        full_recompute(graph, frag, cfg, comp, owner, FallbackReason::Disconnected)
                    }
                }
            };
            m.connectivity = connectivity;
            Ok(m)
        }
    }
}

/// Lower every shortcut `(a, b)` to
/// `min(cost, dist(a, u) + c + dist(v, b))` after inserting `u -> v` with
/// cost `c` — exact because improved paths must use the new edge. When
/// paths are stored, the improved path is spliced from the same sweeps.
fn improve(
    comp: &mut ComplementaryInfo,
    graph: &CsrGraph,
    rev: &CsrGraph,
    u: NodeId,
    v: NodeId,
    c: Cost,
) -> Vec<usize> {
    let to_u = dijkstra::single_source(rev, u);
    let from_v = dijkstra::single_source(graph, v);
    let store = comp.has_paths();
    comp.refine(|e| {
        let (Some(a_u), Some(v_b)) = (to_u.cost(e.src), from_v.cost(e.dst)) else {
            return None;
        };
        let cand = a_u + c + v_b;
        if cand >= e.cost {
            return None;
        }
        let path = store.then(|| {
            // `to_u` runs on the reversed graph, so its path u..a reads
            // backwards; flip it to a..u and append v..b.
            let mut p = to_u.path_to(e.src).expect("cost is finite");
            p.reverse();
            p.extend(from_v.path_to(e.dst).expect("cost is finite"));
            p
        });
        Some((cand, path))
    })
}

/// Border sources whose shortcuts could have routed through a removed
/// edge (the deletion repair rule, evaluated on pre-deletion distances).
fn affected_sources(
    graph: &CsrGraph,
    comp: &ComplementaryInfo,
    site_count: usize,
    removed: &BTreeSet<(NodeId, NodeId, Cost)>,
) -> BTreeSet<NodeId> {
    let rev = graph.reversed();
    let mut out = BTreeSet::new();
    for &(u, v, c) in removed {
        let to_u = dijkstra::single_source(&rev, u);
        let from_v = dijkstra::single_source(graph, v);
        for site in 0..site_count {
            for e in comp.shortcuts(site) {
                if out.contains(&e.src) {
                    continue;
                }
                if let (Some(a_u), Some(v_b)) = (to_u.cost(e.src), from_v.cost(e.dst)) {
                    if a_u + c + v_b == e.cost {
                        out.insert(e.src);
                    }
                }
            }
        }
    }
    out
}

fn nonzero_sites(per_site: &[usize]) -> Vec<FragmentId> {
    per_site
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(f, _)| f)
        .collect()
}

fn is_border(frag: &Fragmentation, v: NodeId) -> bool {
    frag.fragments_of_node(v).len() >= 2
}

fn full_recompute(
    graph: &CsrGraph,
    frag: &Fragmentation,
    cfg: &EngineConfig,
    comp: &mut ComplementaryInfo,
    owner: FragmentId,
    reason: FallbackReason,
) -> Maintenance {
    *comp = ComplementaryInfo::compute_with_threads(
        graph,
        frag,
        cfg.scope,
        cfg.store_paths,
        cfg.precompute_threads,
    );
    let shortcut_sites: Vec<FragmentId> = (0..frag.fragment_count()).collect();
    let tuples_shipped = shortcut_sites
        .iter()
        .map(|&f| comp.shortcuts(f).len())
        .sum();
    Maintenance {
        report: UpdateReport {
            shortcuts_improved: 0,
            shortcuts_repaired: 0,
            full_recompute: true,
            fallback_reason: Some(reason),
            sites_touched: shortcut_sites.len(),
            tuples_shipped,
        },
        shortcut_sites,
        owner: Some(owner),
        connectivity: ConnectivityEffect::Unchanged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::engine::DisconnectionSetEngine;
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::grid;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn build() -> (ds_gen::GeneratedGraph, DisconnectionSetEngine) {
        let g = grid(8, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let e =
            DisconnectionSetEngine::build(g.closure_graph(), frag, true, EngineConfig::default())
                .unwrap();
        (g, e)
    }

    fn check_all(engine: &DisconnectionSetEngine) {
        let csr = engine.graph().clone();
        for x in (0..32).step_by(5) {
            for y in (0..32).step_by(7) {
                assert_eq!(
                    engine.shortest_path(n(x), n(y)).cost,
                    baseline::shortest_path_cost(&csr, n(x), n(y)),
                    "{x}->{y} after update"
                );
            }
        }
    }

    fn consistent(report: &UpdateReport) {
        assert_eq!(
            report.full_recompute,
            report.fallback_reason.is_some(),
            "{report:?}"
        );
    }

    #[test]
    fn insert_within_fragment_stays_exact() {
        let (_, mut engine) = build();
        // Find an in-fragment non-adjacent pair and add a zero-ish cost
        // shortcut between them.
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let report = engine.insert_connection(Edge::new(a, b, 1), 0).unwrap();
        assert!(!report.full_recompute);
        consistent(&report);
        check_all(&engine);
    }

    #[test]
    fn insert_improves_cross_fragment_queries() {
        let (_, mut engine) = build();
        let before = engine.shortest_path(n(0), n(31)).cost.unwrap();
        // A cheap diagonal inside fragment 0 shortens cross-grid routes.
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let report = engine.insert_connection(Edge::new(a, b, 1), 0).unwrap();
        let after = engine.shortest_path(n(0), n(31)).cost.unwrap();
        assert!(after <= before, "insertion cannot lengthen paths");
        if after < before {
            assert!(
                report.shortcuts_improved > 0,
                "improvement must flow via shortcuts"
            );
            assert!(report.sites_touched >= 1);
            assert!(report.tuples_shipped > 0);
        }
        check_all(&engine);
    }

    #[test]
    fn insert_endpoint_outside_owner_rejected() {
        let (_, mut engine) = build();
        // Node 31 (last column) is not in fragment 0.
        let err = engine
            .insert_connection(Edge::new(n(0), n(31), 1), 0)
            .unwrap_err();
        assert!(matches!(err, crate::ClosureError::NodeNotInAnyFragment(_)));
    }

    #[test]
    fn remove_interior_edge_repairs_incrementally() {
        let (_, mut engine) = build();
        // Pick a fragment-0 edge with at least one non-border endpoint:
        // its deletion stays within the repair rule's regime (the grid is
        // 2-edge-connected, so nothing disconnects either).
        let frag = engine.fragmentation().clone();
        let e = *frag
            .fragment(0)
            .edges()
            .iter()
            .find(|e| {
                frag.fragments_of_node(e.src).len() < 2 || frag.fragments_of_node(e.dst).len() < 2
            })
            .expect("grid fragment has interior edges");
        let report = engine.remove_connection(e.src, e.dst, 0).unwrap();
        assert!(!report.full_recompute, "{report:?}");
        assert_eq!(report.fallback_reason, None);
        consistent(&report);
        check_all(&engine);
    }

    #[test]
    fn remove_connection_stays_exact() {
        let (_, mut engine) = build();
        // Remove a real in-fragment connection (whichever comes first —
        // incremental or fallback, answers must stay exact).
        let f0 = engine.fragmentation().fragment(0).clone();
        let e = f0.edges()[0];
        let report = engine.remove_connection(e.src, e.dst, 0).unwrap();
        consistent(&report);
        check_all(&engine);
    }

    #[test]
    fn remove_missing_connection_is_noop() {
        let (_, mut engine) = build();
        let before = engine.shortest_path(n(0), n(31)).cost;
        let report = engine.remove_connection(n(0), n(0), 0).unwrap();
        assert_eq!(report, UpdateReport::noop());
        assert_eq!(engine.shortest_path(n(0), n(31)).cost, before);
    }

    fn routes_real(engine: &DisconnectionSetEngine, x: NodeId, y: NodeId) {
        let csr = engine.graph().clone();
        let route = engine.route(x, y).unwrap().unwrap();
        assert_eq!(
            Some(route.cost),
            baseline::shortest_path_cost(&csr, x, y),
            "route cost {x}->{y}"
        );
        let mut total = 0;
        for hop in route.nodes.windows(2) {
            total += csr
                .neighbors(hop[0])
                .filter(|(t, _)| *t == hop[1])
                .map(|(_, c)| c)
                .min()
                .expect("real hop");
        }
        assert_eq!(total, route.cost);
    }

    #[test]
    fn updates_with_stored_paths_keep_routes_real() {
        let g = grid(8, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let mut engine = DisconnectionSetEngine::build(
            g.closure_graph(),
            frag,
            true,
            EngineConfig {
                store_paths: true,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let report = engine.insert_connection(Edge::new(a, b, 1), 0).unwrap();
        assert!(
            !report.full_recompute,
            "insert maintenance patches stored paths incrementally"
        );
        routes_real(&engine, n(0), n(31));

        // Now delete the shortcut edge again: stored paths that used it
        // must be repaired too.
        let report = engine.remove_connection(a, b, 0).unwrap();
        consistent(&report);
        routes_real(&engine, n(0), n(31));
        check_all(&engine);
    }

    #[test]
    fn update_batch_report_aggregates() {
        let (_, mut engine) = build();
        use crate::api::TcEngine;
        let f0 = engine.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let updates = vec![
            NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            },
            NetworkUpdate::Remove {
                src: a,
                dst: b,
                owner: 0,
            },
        ];
        let batch = engine.update_batch(&updates).unwrap();
        assert_eq!(batch.reports.len(), 2);
        assert!(batch.incremental_fraction() >= 0.0);
        assert_eq!(
            batch.tuples_shipped(),
            batch
                .reports
                .iter()
                .map(|r| r.tuples_shipped)
                .sum::<usize>()
        );
        check_all(&engine);
    }
}
