//! # ds-closure — the disconnection set approach
//!
//! Parallel evaluation of transitive closure queries over a fragmented
//! relation, per Houtsma, Apers & Ceri (VLDB'90) as summarized in §2.1 of
//! the ICDE'93 paper this workspace reproduces:
//!
//! 1. **Precompute** complementary information: shortest distances between
//!    the border nodes of every disconnection set (stored at both adjacent
//!    sites) — [`complementary`].
//! 2. **Plan**: locate the fragments holding the query endpoints and find
//!    the chain(s) of fragments connecting them — [`planner`].
//! 3. **Evaluate locally**, one independent subquery per fragment on the
//!    chain, with *no communication*: each site computes a very small
//!    border-to-border distance relation on its fragment augmented with
//!    its complementary shortcuts — [`local`], [`executor`].
//! 4. **Assemble**: fold the small relations with min-plus joins and read
//!    off the answer — [`assemble`].
//!
//! [`engine::DisconnectionSetEngine`] packages the pipeline; [`baseline`]
//! holds the centralized algorithms the engine is validated against, and
//! [`phe`] implements the Parallel Hierarchical Evaluation extension
//! (ref [12]) for fragmentation graphs too complex to enumerate.
//!
//! [`api`] defines [`TcEngine`], the backend-polymorphic query surface
//! (single queries, routes, updates, and the amortized
//! [`TcEngine::query_batch`]) that both this crate's engine and
//! `ds_machine::Machine` implement, plus the build path and batch driver
//! the backends share. The umbrella crate's `System` builder deploys
//! either backend behind it.
//!
//! ```
//! use ds_closure::engine::{DisconnectionSetEngine, EngineConfig};
//! use ds_fragment::linear::{linear_sweep, LinearConfig};
//! use ds_gen::deterministic::grid;
//! use ds_graph::NodeId;
//!
//! let g = grid(10, 3);
//! let frag = linear_sweep(&g.edge_list(), &LinearConfig { fragments: 3, ..Default::default() })
//!     .unwrap()
//!     .fragmentation;
//! let engine = DisconnectionSetEngine::build(
//!     g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
//! let answer = engine.shortest_path(NodeId(0), NodeId(29));
//! assert_eq!(answer.cost, Some(11)); // corner to corner of the grid
//! ```

pub mod api;
pub mod assemble;
pub mod baseline;
pub mod complementary;
pub mod engine;
pub mod error;
pub mod executor;
pub mod local;
pub mod phe;
pub mod planner;
pub mod snapshot;
pub mod updates;

pub use api::{
    BatchAnswer, BatchStats, BoundedBatchAnswer, NetworkUpdate, QueryRequest, RealHopSet, TcEngine,
};
pub use complementary::{
    ComplementaryInfo, ComplementaryScope, PrecomputeStats, PrecomputeStrategy,
};
pub use engine::{DisconnectionSetEngine, EngineConfig, QueryAnswer, QueryStats, Route};
pub use error::ClosureError;
pub use snapshot::{CowMaintenance, EngineSnapshot};
pub use updates::{ConnectivityEffect, FallbackReason, UpdateBatchReport, UpdateReport};
