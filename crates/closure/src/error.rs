//! Errors of the disconnection set engine.

use std::fmt;
use std::time::Duration;

use ds_graph::NodeId;

/// Errors raised when building or querying the engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClosureError {
    /// The fragmentation's node universe differs from the graph's.
    NodeCountMismatch { graph: usize, fragmentation: usize },
    /// A query endpoint belongs to no fragment (should not happen for
    /// fragmentations produced by this workspace's algorithms, which seed
    /// every node somewhere).
    NodeNotInAnyFragment(NodeId),
    /// Route reconstruction was requested but the engine was built without
    /// shortcut path storage (`EngineConfig::store_paths`).
    RoutesNotEnabled,
    /// The serve worker evaluating this request's micro-batch panicked.
    /// The request was not answered; the worker has been respawned and a
    /// retry will be served normally.
    WorkerFailed,
    /// A machine site thread died (or timed out) while this operation
    /// needed it. The coordinator redeploys the site from its retained
    /// fragment/table state; a retry will be served normally.
    SiteUnavailable { site: usize },
    /// The request sat in the serve queue past its deadline and was shed
    /// without evaluation; `waited` is how long it had been queued.
    DeadlineExceeded { waited: Duration },
    /// The serve writer died: the server is in read-only degraded mode.
    /// Reads keep serving the last published epoch; updates are refused.
    WriterDown,
    /// The serve writer died mid-update and was respawned from the last
    /// published snapshot. This update was *not* applied; a retry will
    /// be served normally by the fresh writer. (With durability enabled
    /// the update may have reached the write-ahead log before the death
    /// — in that case the respawned writer redoes it from the log, so a
    /// retry could apply it twice; check the published state first.)
    WriterRestarted,
    /// The durable write-ahead log refused this update's group commit
    /// (I/O error or injected disk fault). The update was **not**
    /// applied — durability is append-before-apply — and the server
    /// keeps serving reads; a retry goes through the repaired log.
    DurabilityFailed,
}

impl fmt::Display for ClosureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClosureError::NodeCountMismatch {
                graph,
                fragmentation,
            } => write!(
                f,
                "graph has {graph} nodes but the fragmentation covers {fragmentation}"
            ),
            ClosureError::NodeNotInAnyFragment(v) => {
                write!(f, "node {v} belongs to no fragment")
            }
            ClosureError::RoutesNotEnabled => {
                write!(
                    f,
                    "route reconstruction requires EngineConfig::store_paths = true"
                )
            }
            ClosureError::WorkerFailed => {
                write!(f, "serve worker panicked while evaluating this batch")
            }
            ClosureError::SiteUnavailable { site } => {
                write!(f, "site {site} is unavailable (thread dead or timed out)")
            }
            ClosureError::DeadlineExceeded { waited } => {
                write!(f, "request shed after waiting {waited:?} past its deadline")
            }
            ClosureError::WriterDown => {
                write!(f, "writer thread is down; server is read-only (degraded)")
            }
            ClosureError::WriterRestarted => {
                write!(
                    f,
                    "writer died mid-update and was respawned; this update was not applied — retry"
                )
            }
            ClosureError::DurabilityFailed => {
                write!(
                    f,
                    "write-ahead log refused the append; update not applied — retry"
                )
            }
        }
    }
}

impl std::error::Error for ClosureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ClosureError::NodeCountMismatch {
            graph: 5,
            fragmentation: 4,
        };
        assert!(e.to_string().contains('5'));
        assert!(ClosureError::NodeNotInAnyFragment(NodeId(3))
            .to_string()
            .contains('3'));
        assert!(ClosureError::RoutesNotEnabled
            .to_string()
            .contains("store_paths"));
        assert!(ClosureError::WorkerFailed.to_string().contains("worker"));
        assert!(ClosureError::SiteUnavailable { site: 2 }
            .to_string()
            .contains('2'));
        assert!(ClosureError::DeadlineExceeded {
            waited: Duration::from_millis(5)
        }
        .to_string()
        .contains("shed"));
        assert!(ClosureError::WriterDown.to_string().contains("read-only"));
        assert!(ClosureError::WriterRestarted.to_string().contains("retry"));
        assert!(ClosureError::DurabilityFailed
            .to_string()
            .contains("not applied"));
    }
}
