//! Errors of the disconnection set engine.

use std::fmt;

use ds_graph::NodeId;

/// Errors raised when building or querying the engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClosureError {
    /// The fragmentation's node universe differs from the graph's.
    NodeCountMismatch { graph: usize, fragmentation: usize },
    /// A query endpoint belongs to no fragment (should not happen for
    /// fragmentations produced by this workspace's algorithms, which seed
    /// every node somewhere).
    NodeNotInAnyFragment(NodeId),
    /// Route reconstruction was requested but the engine was built without
    /// shortcut path storage (`EngineConfig::store_paths`).
    RoutesNotEnabled,
}

impl fmt::Display for ClosureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClosureError::NodeCountMismatch {
                graph,
                fragmentation,
            } => write!(
                f,
                "graph has {graph} nodes but the fragmentation covers {fragmentation}"
            ),
            ClosureError::NodeNotInAnyFragment(v) => {
                write!(f, "node {v} belongs to no fragment")
            }
            ClosureError::RoutesNotEnabled => {
                write!(
                    f,
                    "route reconstruction requires EngineConfig::store_paths = true"
                )
            }
        }
    }
}

impl std::error::Error for ClosureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ClosureError::NodeCountMismatch {
            graph: 5,
            fragmentation: 4,
        };
        assert!(e.to_string().contains('5'));
        assert!(ClosureError::NodeNotInAnyFragment(NodeId(3))
            .to_string()
            .contains('3'));
        assert!(ClosureError::RoutesNotEnabled
            .to_string()
            .contains("store_paths"));
    }
}
