//! The per-epoch answer cache: identical queries asked again within one
//! snapshot epoch are answered without touching the evaluation kernel.
//!
//! The cache is the cross-micro-batch extension of the worker pool's
//! single-flight coalescing: coalescing deduplicates identical requests
//! *within* one micro-batch, the cache deduplicates them *across*
//! micro-batches (and workers) for as long as the answer stays valid —
//! i.e. until the writer publishes a new snapshot epoch.
//!
//! Keyed by `(query, epoch)`: an entry written at epoch `e` is served
//! only to readers pinned to epoch `e`, which makes every cached answer
//! exactly as consistent as an evaluated one. Invalidation is **lazy and
//! wholesale**: shards tag their contents with the epoch that filled
//! them, and the first probe from a newer epoch clears the shard —
//! publication itself does no cache work, readers still on the previous
//! epoch simply stop matching, and a reader racing a publication can
//! never smuggle a stale answer into the new epoch's cache.
//!
//! Lock-light by sharding: the key hash picks one of [`SHARDS`] small
//! mutexes, so concurrent workers rarely contend, and every critical
//! section is a single hash-map probe or insert.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use ds_closure::QueryAnswer;
use ds_graph::NodeId;

/// Shard count (power of two). 32 shards keep contention negligible for
/// any plausible worker pool while costing ~one cache line of mutexes.
const SHARDS: usize = 32;

struct Shard {
    /// The epoch whose answers this shard currently holds.
    epoch: u64,
    map: HashMap<(NodeId, NodeId), QueryAnswer>,
}

/// A sharded `(query, epoch) -> answer` map, dropped wholesale (lazily,
/// per shard) whenever the epoch advances.
///
/// Bounded: each shard admits at most `per_shard` entries per epoch, so
/// a read-only deployment (whose epoch never advances and therefore
/// never clears a shard) cannot grow memory without bound under a
/// distinct-pair sweep — once a shard is full, further inserts are
/// dropped until the next epoch. First-in wins, which favours exactly
/// the hot head of the traffic distribution the cache exists for.
pub(crate) struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
}

impl AnswerCache {
    /// `max_entries` bounds the whole cache (rounded up to a multiple of
    /// the shard count).
    pub fn new(max_entries: usize) -> Self {
        AnswerCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        epoch: 0,
                        map: HashMap::new(),
                    })
                })
                .collect(),
            per_shard: max_entries.div_ceil(SHARDS).max(1),
        }
    }

    fn shard(&self, key: (NodeId, NodeId)) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// The answer cached for `key` at `epoch`, if any. A shard left over
    /// from an older epoch is cleared on first contact with a newer one.
    pub fn get(&self, epoch: u64, key: (NodeId, NodeId)) -> Option<QueryAnswer> {
        let mut shard = ds_fault::lock_unpoisoned(self.shard(key));
        if shard.epoch != epoch {
            if shard.epoch < epoch {
                shard.map.clear();
                shard.epoch = epoch;
            }
            // A reader still pinned to an older epoch than the shard's
            // contents must not see the newer answers.
            return None;
        }
        shard.map.get(&key).cloned()
    }

    /// Record an answer evaluated at `epoch`. Ignored if the shard has
    /// already moved past that epoch (a reader racing a publication) or
    /// is at its per-epoch capacity (the cache is bounded; overwriting
    /// an existing key is always admitted).
    pub fn insert(&self, epoch: u64, key: (NodeId, NodeId), answer: QueryAnswer) {
        let mut shard = ds_fault::lock_unpoisoned(self.shard(key));
        if shard.epoch < epoch {
            shard.map.clear();
            shard.epoch = epoch;
        }
        if shard.epoch == epoch
            && (shard.map.len() < self.per_shard || shard.map.contains_key(&key))
        {
            shard.map.insert(key, answer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_closure::QueryStats;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn answer(cost: u64) -> QueryAnswer {
        QueryAnswer {
            cost: Some(cost),
            best_chain: None,
            stats: QueryStats::default(),
        }
    }

    #[test]
    fn hit_within_an_epoch_miss_across() {
        let cache = AnswerCache::new(1024);
        assert!(cache.get(0, (n(1), n(2))).is_none(), "cold");
        cache.insert(0, (n(1), n(2)), answer(7));
        assert_eq!(cache.get(0, (n(1), n(2))).unwrap().cost, Some(7));
        // Epoch moved: the old answer is gone, not served.
        assert!(cache.get(1, (n(1), n(2))).is_none());
        // And the shard has been repurposed for the new epoch.
        cache.insert(1, (n(1), n(2)), answer(5));
        assert_eq!(cache.get(1, (n(1), n(2))).unwrap().cost, Some(5));
    }

    /// The cache is bounded within one epoch: with capacity for one
    /// entry per shard, a distinct-pair sweep stops being admitted once
    /// the shards fill, while already-cached keys keep hitting (and can
    /// be overwritten).
    #[test]
    fn full_shards_stop_admitting_within_an_epoch() {
        let cache = AnswerCache::new(SHARDS); // one entry per shard
        for i in 0..200u32 {
            cache.insert(0, (n(i), n(i + 1)), answer(i as u64));
        }
        let cached = (0..200u32)
            .filter(|&i| cache.get(0, (n(i), n(i + 1))).is_some())
            .count();
        assert!(cached <= SHARDS, "bounded: {cached} entries > {SHARDS}");
        assert!(cached >= 1, "the first inserts were admitted");
        // Overwriting an admitted key is always allowed.
        let hit = (0..200u32)
            .find(|&i| cache.get(0, (n(i), n(i + 1))).is_some())
            .unwrap();
        cache.insert(0, (n(hit), n(hit + 1)), answer(999));
        assert_eq!(cache.get(0, (n(hit), n(hit + 1))).unwrap().cost, Some(999));
        // A new epoch clears the shards and admits fresh entries again.
        cache.insert(1, (n(500), n(501)), answer(1));
        assert_eq!(cache.get(1, (n(500), n(501))).unwrap().cost, Some(1));
    }

    #[test]
    fn stale_reader_cannot_poison_a_newer_epoch() {
        let cache = AnswerCache::new(1024);
        cache.insert(3, (n(1), n(2)), answer(9)); // shard now at epoch 3
        cache.insert(2, (n(1), n(2)), answer(1)); // stale insert: dropped
        assert_eq!(cache.get(3, (n(1), n(2))).unwrap().cost, Some(9));
        // A stale reader gets a miss, never the newer answer.
        assert!(cache.get(2, (n(1), n(2))).is_none());
        assert_eq!(
            cache.get(3, (n(1), n(2))).unwrap().cost,
            Some(9),
            "the stale probe did not clear the newer shard"
        );
    }
}
