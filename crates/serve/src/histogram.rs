//! A fixed-bucket latency histogram: power-of-two buckets, O(1) record,
//! mergeable across workers, quantile read-out for p50/p99 reporting.
//!
//! Dependency-free by design (the workspace is offline): 64 geometric
//! buckets cover the full `u64` nanosecond range with ≤ 50% relative
//! error per bucket — plenty for serving-latency percentiles, where the
//! interesting signal is orders of magnitude, not nanoseconds.

/// Histogram over nanosecond samples with power-of-two bucket edges:
/// bucket `i` holds samples in `[2^i, 2^(i+1))`.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (nanoseconds).
    pub fn record(&mut self, ns: u64) {
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest sample seen (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0.0..=1.0`), as the geometric midpoint of the
    /// bucket holding the rank — e.g. `quantile_ns(0.99)` is the p99.
    /// Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Midpoint of [2^i, 2^(i+1)): 1.5 * 2^i.
                let lo = 1u64 << i;
                return (lo + lo / 2).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Fold another histogram into this one (per-worker → global).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        // 99 fast samples around 1µs, one slow 1ms outlier.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5);
        assert!((512..2048).contains(&p50), "p50 {p50} in the 1µs bucket");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 < 10_000, "p99 {p99} still fast");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 500_000, "max quantile {p100} sees the outlier");
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 1..200u64 {
            let ns = i * 977;
            if i % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
            whole.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_ns(), whole.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_ns(q), whole.quantile_ns(q), "q={q}");
        }
    }

    #[test]
    fn extreme_samples_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(0); // clamped into the first bucket
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) > 0);
    }
}
