//! A bounded multi-producer multi-consumer job queue (`Mutex` +
//! `Condvar`, std only), built for micro-batching consumers: a worker
//! takes *everything pending* (up to a cap) in one lock acquisition, so
//! queue depth converts directly into batch size.
//!
//! Producers never block: [`BoundedQueue::try_push`] **rejects** when the
//! queue is at capacity (load shedding) and the caller decides whether to
//! back off and retry or propagate the rejection to its client with a
//! retry-after hint. The queue keeps the shedding accounting — current
//! depth, high-water mark, rejection count — that `ServeStats` reports.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use ds_fault::{lock_unpoisoned, wait_unpoisoned};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Consumers treat the queue as empty while paused (test hook for
    /// deterministically filling the queue; see `pause`).
    paused: bool,
    high_water: usize,
    rejections: u64,
}

/// Why a [`BoundedQueue::try_push`] was refused.
pub(crate) enum PushError<T> {
    /// The queue is at capacity; the item comes back to the caller
    /// (load shedding — back off and retry, or reject upstream).
    Full(T),
    /// The queue has been closed; no further work is accepted.
    Closed(T),
}

/// Bounded FIFO queue. `try_push` sheds load while full; `pop_batch`
/// blocks while empty; closing wakes everyone.
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                paused: false,
                high_water: 0,
                rejections: 0,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without ever blocking: at capacity the item is returned as
    /// [`PushError::Full`] (counted as a rejection), after close as
    /// [`PushError::Closed`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            inner.rejections += 1;
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        inner.high_water = inner.high_water.max(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking dequeue of up to `max` items: `None` when nothing is
    /// pending right now (the consumer can release resources before
    /// falling back to the blocking [`BoundedQueue::pop_batch`]).
    pub fn try_pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.paused || inner.items.is_empty() {
            return None;
        }
        let take = inner.items.len().min(max.max(1));
        let batch: Vec<T> = inner.items.drain(..take).collect();
        drop(inner);
        self.not_empty.notify_one();
        Some(batch)
    }

    /// Dequeue up to `max` items in one lock acquisition, blocking while
    /// the queue is empty. An empty vec means: closed and fully drained —
    /// the consumer should exit.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if !inner.paused && !inner.items.is_empty() {
                let take = inner.items.len().min(max.max(1));
                let batch: Vec<T> = inner.items.drain(..take).collect();
                drop(inner);
                // Wake another consumer, in case items remain.
                self.not_empty.notify_one();
                return batch;
            }
            if inner.closed && !inner.paused {
                return Vec::new();
            }
            inner = wait_unpoisoned(&self.not_empty, inner);
        }
    }

    /// Jobs currently waiting (not yet drained by a consumer).
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.inner).items.len()
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        lock_unpoisoned(&self.inner).high_water
    }

    /// Pushes refused because the queue was at capacity.
    pub fn rejections(&self) -> u64 {
        lock_unpoisoned(&self.inner).rejections
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Test hook: make consumers treat the queue as empty, so producers
    /// can fill it to capacity deterministically.
    #[cfg(test)]
    pub fn pause(&self) {
        lock_unpoisoned(&self.inner).paused = true;
    }

    /// Test hook: release paused consumers.
    #[cfg(test)]
    pub fn unpause(&self) {
        lock_unpoisoned(&self.inner).paused = false;
        self.not_empty.notify_all();
    }

    /// Close the queue: producers get their item back, consumers drain
    /// what is left and then see the empty-vec exit signal. Clears any
    /// test-hook pause so shutdown can never strand a consumer waiting
    /// behind a pause that will not be lifted.
    pub fn close(&self) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.closed = true;
        inner.paused = false;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_a_batch() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).ok().unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(10), vec![3, 4]);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.try_pop_batch(4), None, "empty: no batch, no block");
        q.try_push(9).ok().unwrap();
        assert_eq!(q.try_pop_batch(4), Some(vec![9]));
        q.close();
        assert_eq!(q.try_pop_batch(4), None, "closed and drained");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(8);
        q.try_push(1).ok().unwrap();
        q.close();
        assert!(
            matches!(q.try_push(2), Err(PushError::Closed(2))),
            "closed queue rejects producers"
        );
        assert_eq!(q.pop_batch(4), vec![1], "pending items still drain");
        assert!(q.pop_batch(4).is_empty(), "then the exit signal");
    }

    /// A full queue sheds instead of blocking: the producer gets the item
    /// back immediately, the rejection is counted, and the depth stats
    /// reflect the pressure.
    #[test]
    fn full_queue_sheds_and_counts() {
        let q = BoundedQueue::new(2);
        q.try_push(0).ok().unwrap();
        q.try_push(1).ok().unwrap();
        match q.try_push(2) {
            Err(PushError::Full(item)) => assert_eq!(item, 2, "item handed back"),
            _ => panic!("full queue must shed"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.rejections(), 1);
        assert_eq!(q.capacity(), 2);
        // Space freed: the next push is admitted again.
        assert_eq!(q.pop_batch(1), vec![0]);
        q.try_push(2).ok().unwrap();
        let mut rest = q.pop_batch(4);
        rest.sort();
        assert_eq!(rest, vec![1, 2]);
        assert_eq!(q.rejections(), 1, "admitted pushes are not rejections");
    }

    #[test]
    fn consumers_block_until_work_arrives() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).ok().unwrap();
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }

    /// The pause hook makes consumers ignore pending work, so a test can
    /// fill the queue to capacity deterministically.
    #[test]
    fn paused_consumers_see_an_empty_queue() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        q.pause();
        q.try_push(1).ok().unwrap();
        assert_eq!(q.try_pop_batch(4), None, "paused: nothing to pop");
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.unpause();
        assert_eq!(consumer.join().unwrap(), vec![1]);
    }

    /// Closing overrides a pause: a consumer blocked behind the test
    /// hook still drains and exits, so a panicking test (whose Drop
    /// closes the queue without unpausing) cannot hang the join.
    #[test]
    fn close_releases_paused_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        q.pause();
        q.try_push(5).ok().unwrap();
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || (qc.pop_batch(4), qc.pop_batch(4)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let (drained, exit) = consumer.join().unwrap();
        assert_eq!(drained, vec![5], "pending items drain despite the pause");
        assert!(exit.is_empty(), "then the exit signal");
    }
}
