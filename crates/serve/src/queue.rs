//! A bounded multi-producer multi-consumer job queue (`Mutex` +
//! `Condvar`, std only), built for micro-batching consumers: a worker
//! takes *everything pending* (up to a cap) in one lock acquisition, so
//! queue depth converts directly into batch size.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded FIFO queue. `push` blocks while full; `pop_batch` blocks
/// while empty; closing wakes everyone.
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, blocking while the queue is at capacity. Returns the
    /// item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue poisoned");
        }
    }

    /// Non-blocking dequeue of up to `max` items: `None` when nothing is
    /// pending right now (the consumer can release resources before
    /// falling back to the blocking [`BoundedQueue::pop_batch`]).
    pub fn try_pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.items.is_empty() {
            return None;
        }
        let take = inner.items.len().min(max.max(1));
        let batch: Vec<T> = inner.items.drain(..take).collect();
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_one();
        Some(batch)
    }

    /// Dequeue up to `max` items in one lock acquisition, blocking while
    /// the queue is empty. An empty vec means: closed and fully drained —
    /// the consumer should exit.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.items.is_empty() {
                let take = inner.items.len().min(max.max(1));
                let batch: Vec<T> = inner.items.drain(..take).collect();
                drop(inner);
                // Space freed: wake blocked producers (and another
                // consumer, in case items remain).
                self.not_full.notify_all();
                self.not_empty.notify_one();
                return batch;
            }
            if inner.closed {
                return Vec::new();
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Close the queue: producers get their item back, consumers drain
    /// what is left and then see the empty-vec exit signal.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_a_batch() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(10), vec![3, 4]);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.try_pop_batch(4), None, "empty: no batch, no block");
        q.push(9).unwrap();
        assert_eq!(q.try_pop_batch(4), Some(vec![9]));
        q.close();
        assert_eq!(q.try_pop_batch(4), None, "closed and drained");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2), "closed queue rejects producers");
        assert_eq!(q.pop_batch(4), vec![1], "pending items still drain");
        assert!(q.pop_batch(4).is_empty(), "then the exit signal");
    }

    #[test]
    fn bounded_push_blocks_until_a_consumer_frees_space() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0).unwrap();
        q.push(1).unwrap();
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || qp.push(2).is_ok());
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let first = q.pop_batch(1);
        assert_eq!(first, vec![0]);
        assert!(producer.join().unwrap(), "producer unblocked by the pop");
        let mut rest = q.pop_batch(4);
        rest.sort();
        assert_eq!(rest, vec![1, 2]);
    }

    #[test]
    fn consumers_block_until_work_arrives() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }
}
