// Supervised-tier hygiene: non-test code must not carry implicit panic
// points — failures surface as typed errors (`ServeError`,
// `ClosureError`) or go through an explicit `unreachable!` with its
// invariant spelled out. CI promotes these to errors with -D warnings.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # ds-serve — concurrent query serving over engine snapshots
//!
//! The paper parallelizes the *precompute* across fragment sites; this
//! crate parallelizes the *serving*: many concurrent readers, a live
//! update stream, and the batching-by-fragment-affinity that
//! workload-driven fragmentation work (Peng et al., *Query
//! Workload-based RDF Graph Fragmentation and Allocation*) identifies as
//! the throughput lever of distributed graph querying.
//!
//! Architecture (std-only — no third-party dependencies; threads are
//! hand-rolled like the site threads of `ds_machine`, whose stats
//! conventions — the balance ratio — this crate reuses):
//!
//! ```text
//!  clients ──► bounded job queue ──► worker pool (one scratch each)
//!              (sheds at capacity)      │  micro-batch: coalesce
//!                                       │  duplicates, probe answer
//!                                       │  cache, group misses by
//!                                       │  fragment pair, run_batch
//!                                       ▼
//!              answer cache ◄──► Arc<EngineSnapshot>   (epoch N)
//!              (per epoch)               ▲
//!  updaters ──► writer thread ── maintain() on a private copy
//!               (touched sites detach, everything else stays shared),
//!               publish successor snapshot as epoch N+1 — O(sites)
//! ```
//!
//! * **Snapshot epochs.** The immutable [`EngineSnapshot`] (tables,
//!   augmented graphs, planner — `Send + Sync` by construction, asserted
//!   at compile time in `ds_closure`) is shared via `Arc` and swapped
//!   atomically by the single writer. Readers pin the epoch for the
//!   duration of a micro-batch: every answer is consistent with some
//!   published version, and says which ([`ServedBatch::epoch`]).
//! * **O(touched sites) publication.** Every per-site component of a
//!   snapshot sits behind its own `Arc`, so the writer's per-epoch
//!   publication clone is O(sites) refcount bumps and each epoch
//!   physically shares every untouched site's tables with its
//!   predecessor (`ds_closure::snapshot` documents the sharing
//!   contract; the serve bench gates it at ≥ 5x cheaper than a full
//!   copy).
//! * **Per-epoch answer cache.** Identical queries repeated across
//!   micro-batches within one epoch are answered from a sharded,
//!   lock-light map ([`ServeConfig::answer_cache`]); publication drops
//!   it wholesale (lazily — the writer does no cache work). Hits are
//!   exactly as consistent as evaluations: the key includes the pinned
//!   epoch.
//! * **Workers never lock on the query path.** All mutable evaluation
//!   state (the Dijkstra scratch, batch buffers) is worker-owned; the
//!   publication slot is consulted with one atomic load per micro-batch
//!   and its mutex touched only when the epoch actually moved.
//! * **Micro-batching.** A worker drains everything pending (bounded by
//!   [`ServeConfig::batch_max`]) in one lock acquisition, coalesces
//!   identical requests (single-flight), sorts the distinct cache misses
//!   by fragment pair and feeds them to the shared batch kernel
//!   (`ds_closure::api::run_batch`), which plans each fragment pair once
//!   and evaluates interior chain segments once per chain. Queue depth
//!   converts directly into amortization — the busier the server, the
//!   cheaper the average query.
//! * **Load shedding.** The bounded queue never blocks producers: at
//!   capacity, [`Server::submit`] / [`Server::try_query_batch`] return
//!   [`Overloaded`] with a retry-after hint and the blocking wrappers
//!   back off and retry; queue depth / high-water / rejections are
//!   reported in [`ServeStats`].
//! * **Fault tolerance.** Workers evaluate under `catch_unwind` behind
//!   a supervisor: a panicking micro-batch resolves every in-flight
//!   request with a typed `ClosureError::WorkerFailed` (never a hang)
//!   and the worker is respawned ([`ServeStats::worker_restarts`]).
//!   A writer panic is survivable too: the supervisor rebuilds the
//!   working copy from the last published snapshot and re-arms the
//!   same write channel ([`ServeStats::writer_restarts`]); in-flight
//!   updates of the doomed batch resolve to `WriterRestarted` (not
//!   applied — retry). Only a permanent writer death flips read-only
//!   degraded mode (updates refused with `WriterDown`, reads keep
//!   serving the last published epoch). Jobs queued past
//!   [`ServeConfig::deadline`] are shed with `DeadlineExceeded`, and
//!   the blocking wrappers retry `Overloaded` admissions a bounded
//!   number of times ([`ServeConfig::max_admission_retries`]).
//!   Failures are injectable deterministically through `ds_fault`
//!   ([`ServeConfig::fault`]).
//! * **Durability.** With [`ServeConfig::durability`] set, the writer
//!   appends every folded update batch to `ds_durability`'s checksummed
//!   write-ahead log **before** applying it (group commit: one buffered
//!   write + one fsync per batch) and checkpoints on configurable
//!   thresholds, so a process death is recoverable:
//!   [`ds_durability::recover`] rebuilds the newest checkpoint plus the
//!   surviving WAL suffix, and [`Server::try_start_at`] resumes serving
//!   from it. A refused append fails its batch with the typed
//!   `ClosureError::DurabilityFailed` without applying anything; a
//!   respawned writer redoes any logged-but-unpublished suffix so the
//!   live state always reconverges with the durable one.
//! * **Observability.** [`ServeStats`] reports throughput, p50/p99
//!   latency from the shared fixed-bucket [`LatencyHistogram`]
//!   (promoted to `ds_obs`), per-worker busy time and scratch reuse,
//!   batch amortization and cache hit/miss counters, queue pressure,
//!   and which backend/strategy built the tables being served. Arming
//!   [`ServeConfig::obs`] additionally mints a trace id per admitted
//!   request, files span sets (queue wait, evaluation, per-chain
//!   segment time, cache/coalesce/reach-index markers) into a trace
//!   ring and slow-query log, samples query frequencies into the
//!   workload recorder, and mirrors every counter into the
//!   `ds_obs::MetricsRegistry` for JSON/Prometheus export.
//!
//! ```
//! use ds_closure::{EngineConfig, EngineSnapshot};
//! use ds_fragment::linear::{linear_sweep, LinearConfig};
//! use ds_gen::deterministic::grid;
//! use ds_graph::NodeId;
//! use ds_serve::{ServeConfig, Server};
//!
//! let g = grid(10, 3);
//! let frag = linear_sweep(&g.edge_list(), &LinearConfig { fragments: 3, ..Default::default() })
//!     .unwrap()
//!     .fragmentation;
//! let snap = EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
//! let server = Server::start(snap, ServeConfig::with_workers(2));
//! let served = server.query(NodeId(0), NodeId(29)).unwrap();
//! assert_eq!(served.answer.cost, Some(11));
//! assert_eq!(served.epoch, 0);
//! let stats = server.shutdown();
//! assert_eq!(stats.requests, 1);
//! ```

mod cache;
mod queue;
pub mod server;

/// The fixed-bucket latency histogram was promoted to `ds_obs` (where
/// the whole observability stack shares it); this module keeps the old
/// `ds_serve::histogram::LatencyHistogram` path working.
pub mod histogram {
    pub use ds_obs::LatencyHistogram;
}

pub use ds_closure::snapshot::EngineSnapshot;
pub use ds_durability::{recover, DurabilityConfig, DurabilityError, DurableStore, Recovered};
pub use ds_fault::{FaultPlan, FaultPoint, FaultScenario, FaultUniverse};
pub use ds_obs::LatencyHistogram;
pub use server::{
    Backoff, LatencySummary, Overloaded, PendingBatch, ServeConfig, ServeError, ServeStats,
    ServedAnswer, ServedBatch, ServedUpdate, Server,
};

#[cfg(test)]
mod tests {
    use super::*;
    use ds_closure::api::{NetworkUpdate, QueryRequest};
    use ds_closure::{baseline, EngineConfig};
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::grid;
    use ds_graph::{Edge, NodeId};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ds-serve-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snapshot() -> (ds_gen::GeneratedGraph, EngineSnapshot) {
        let g = grid(10, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let snap =
            EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
        (g, snap)
    }

    #[test]
    fn serves_correct_answers_from_many_threads() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let server = Arc::new(Server::start(snap, ServeConfig::with_workers(3)));
        std::thread::scope(|s| {
            for t in 0..6u32 {
                let server = Arc::clone(&server);
                let csr = &csr;
                s.spawn(move || {
                    for i in 0..25u32 {
                        let (x, y) = (n((i * 7 + t) % 40), n((i * 11) % 40));
                        let served = server.query(x, y).unwrap();
                        assert_eq!(
                            served.answer.cost,
                            baseline::shortest_path_cost(csr, x, y),
                            "thread {t} query {x}->{y}"
                        );
                        assert_eq!(served.epoch, 0, "no updates: epoch stays 0");
                    }
                });
            }
        });
        let stats = Arc::into_inner(server)
            .expect("all clients done")
            .shutdown();
        assert_eq!(stats.requests, 150);
        assert_eq!(stats.jobs, 150);
        assert!(stats.batches > 0 && stats.batches <= 150);
        assert_eq!(
            stats.evaluated + stats.coalesced + stats.cache_hits,
            150,
            "every request is evaluated, coalesced, or cache-served"
        );
        assert_eq!(stats.latency.count, 150);
        assert!(stats.latency.p99_us >= stats.latency.p50_us);
        assert_eq!(stats.backend, "inline");
        assert!(
            stats.scratch.sweeps > 0,
            "workers really used their scratch"
        );
    }

    #[test]
    fn batch_jobs_answer_in_request_order() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let server = Server::start(snap, ServeConfig::with_workers(2));
        let requests: Vec<QueryRequest> = (0..12u32)
            .map(|i| QueryRequest::new(n(i), n(39 - i)))
            .collect();
        let served = server.query_batch(&requests).unwrap();
        assert_eq!(served.answers.len(), 12);
        for (req, a) in requests.iter().zip(&served.answers) {
            assert_eq!(
                a.cost,
                baseline::shortest_path_cost(&csr, req.source, req.target),
                "{}->{}",
                req.source,
                req.target
            );
        }
        server.shutdown();
    }

    #[test]
    fn identical_requests_coalesce_within_a_micro_batch() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        // One job containing the same request 8 times: single-flight.
        let requests = vec![QueryRequest::new(n(0), n(39)); 8];
        let served = server.query_batch(&requests).unwrap();
        assert_eq!(served.answers.len(), 8);
        let cost = served.answers[0].cost;
        assert!(served.answers.iter().all(|a| a.cost == cost));
        let stats = server.shutdown();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.evaluated, 1, "one evaluation for eight answers");
        assert_eq!(stats.coalesced, 7);
        assert!(stats.coalesced_fraction() > 0.8);
    }

    #[test]
    fn updates_bump_the_epoch_and_stay_exact() {
        let (_, snap) = snapshot();
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let server = Server::start(snap, ServeConfig::with_workers(2));
        let before = server.query(n(0), n(39)).unwrap();
        assert_eq!(before.epoch, 0);

        let served = server
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
        assert_eq!(served.epoch, 1);
        assert!(!served.report.full_recompute);
        assert_eq!(server.epoch(), 1);

        let after = server.query(n(0), n(39)).unwrap();
        assert_eq!(after.epoch, 1, "new micro-batches see the new epoch");
        assert!(after.answer.cost <= before.answer.cost);
        // The published snapshot is the post-update network.
        let snap = server.snapshot();
        assert_eq!(
            after.answer.cost,
            baseline::shortest_path_cost(snap.graph(), n(0), n(39))
        );

        let removed = server
            .update(&NetworkUpdate::Remove {
                src: a,
                dst: b,
                owner: 0,
            })
            .unwrap();
        assert_eq!(removed.epoch, 2);
        let restored = server.query(n(0), n(39)).unwrap();
        assert_eq!(restored.answer.cost, before.answer.cost);
        let stats = server.shutdown();
        assert_eq!(stats.updates, 2);
        assert!(stats.publications >= 1 && stats.publications <= 2);
    }

    #[test]
    fn invalid_updates_error_without_poisoning_the_server() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        let err = server.update(&NetworkUpdate::Insert {
            edge: Edge::new(n(0), n(39), 1),
            owner: 0, // node 39 is not in fragment 0
        });
        assert!(err.is_err());
        assert_eq!(server.epoch(), 0, "failed update publishes nothing");
        // A structural no-op (removing a non-existent connection) is Ok
        // but publishes nothing either.
        let noop = server
            .update(&NetworkUpdate::Remove {
                src: n(0),
                dst: n(0),
                owner: 0,
            })
            .unwrap();
        assert_eq!(noop.report.sites_touched, 0);
        assert_eq!(noop.epoch, 0, "no-op stays on the current epoch");
        assert_eq!(server.epoch(), 0);
        assert!(server.query(n(0), n(39)).unwrap().answer.cost.is_some());
        let stats = server.shutdown();
        assert_eq!(stats.updates, 0, "no effective updates");
        assert_eq!(stats.publications, 0);
    }

    #[test]
    fn stats_report_strategy_and_balance() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(2));
        for i in 0..10u32 {
            server.query(n(i), n(39 - i)).unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.strategy,
            ds_closure::PrecomputeStrategy::Skeleton,
            "serving skeleton-built tables"
        );
        assert!(stats.balance_ratio() >= 1.0);
        assert!(stats.throughput_qps() > 0.0);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn empty_batch_is_answered_inline() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        let served = server.query_batch(&[]).unwrap();
        assert!(served.answers.is_empty());
        // The non-blocking entry points agree: no queue slot is spent,
        // so an empty batch can never be shed.
        server.pause_workers();
        let pending = server.submit(&[]).unwrap();
        assert!(pending.wait().unwrap().answers.is_empty());
        server.unpause_workers();
        let stats = server.stats();
        assert_eq!(stats.queue_high_water, 0, "empty jobs never enqueue");
        server.shutdown();
    }

    /// The per-epoch answer cache serves repeated queries across
    /// micro-batches without re-evaluating them, and the answers stay
    /// identical.
    #[test]
    fn answer_cache_hits_across_micro_batches() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        // Separate jobs → separate micro-batches (single client thread),
        // so the repeats cannot be absorbed by in-batch coalescing.
        let first = server.query(n(0), n(39)).unwrap();
        for _ in 0..5 {
            let again = server.query(n(0), n(39)).unwrap();
            assert_eq!(again.answer.cost, first.answer.cost);
            assert_eq!(again.epoch, 0);
        }
        assert_eq!(
            first.answer.cost,
            baseline::shortest_path_cost(&csr, n(0), n(39))
        );
        let stats = server.shutdown();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.evaluated, 1, "one evaluation, five cache hits");
        assert_eq!(stats.cache_hits, 5);
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.cache_hit_fraction() > 0.8);
    }

    /// Publication drops the cache: a query repeated across an update is
    /// re-evaluated on the new epoch and reflects the new network — the
    /// cache can never serve an answer from a previous epoch.
    #[test]
    fn answer_cache_is_dropped_on_publication() {
        let (_, snap) = snapshot();
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let server = Server::start(snap, ServeConfig::with_workers(1));
        let before = server.query(n(0), n(39)).unwrap();
        let cached = server.query(n(0), n(39)).unwrap();
        assert_eq!(cached.answer.cost, before.answer.cost);

        server
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
        let after = server.query(n(0), n(39)).unwrap();
        assert_eq!(after.epoch, 1);
        let snap_now = server.snapshot();
        assert_eq!(
            after.answer.cost,
            baseline::shortest_path_cost(snap_now.graph(), n(0), n(39)),
            "post-update answer reflects the new epoch, not the cache"
        );
        let stats = server.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.evaluated, 2, "re-evaluated after the epoch moved");
    }

    /// Disabling the knob really disables the cache.
    #[test]
    fn answer_cache_knob_disables_the_cache() {
        let (_, snap) = snapshot();
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                answer_cache: false,
                ..ServeConfig::default()
            },
        );
        for _ in 0..4 {
            server.query(n(0), n(39)).unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.evaluated, 4, "every request evaluated");
        assert_eq!(stats.cache_hit_fraction(), 0.0);
    }

    /// Satellite guarantee: now that `connected` no longer computes a
    /// distance, a cached `shortest_path` answer can never be served
    /// for a `connected` request on the same `(x, y, epoch)` — the fast
    /// path never probes the answer cache, and the fallback path issues
    /// a genuine shortest-path evaluation whose answer it only reads as
    /// a boolean. This pins the fast path down with counters.
    #[test]
    fn connected_never_reads_the_shortest_path_answer_cache() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        // Warm the per-epoch answer cache with genuine shortest-path
        // answers on exactly the pairs we will ask `connected` about.
        let pairs = [(0u32, 39u32), (3, 17), (5, 5)];
        for &(x, y) in &pairs {
            server.query(n(x), n(y)).unwrap();
        }
        let before = server.stats();
        assert!(before.reach_index_fresh, "index published from the start");
        for &(x, y) in &pairs {
            assert_eq!(
                server.connected(n(x), n(y)).unwrap(),
                x == y || baseline::shortest_path_cost(&csr, n(x), n(y)).is_some(),
                "connected({x}, {y})"
            );
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.reach_fast_path - before.reach_fast_path,
            2,
            "both non-trivial pairs hit the index (x == y short-circuits)"
        );
        assert_eq!(
            stats.evaluated, before.evaluated,
            "connected never reached the worker pool"
        );
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            before.cache_hits + before.cache_misses,
            "connected never probed the answer cache"
        );
    }

    /// The writer rebuilds the reachability index once per publication:
    /// after an invalidating update, the *published* snapshot's index is
    /// already fresh, so readers never see a stale-index epoch.
    #[test]
    fn writer_republishes_a_fresh_reach_index() {
        let (_, snap) = snapshot();
        let f0 = snap.fragmentation().fragment(0).clone();
        let e = f0.edges()[0];
        let server = Server::start(snap, ServeConfig::with_workers(1));
        server
            .update(&NetworkUpdate::Remove {
                src: e.src,
                dst: e.dst,
                owner: 0,
            })
            .unwrap();
        assert_eq!(server.epoch(), 1);
        let snap_now = server.snapshot();
        assert!(
            snap_now.reach_index().is_some(),
            "published epoch carries a rebuilt index"
        );
        // And it answers the post-update network.
        for (x, y) in [(0u32, 39u32), (e.src.0, e.dst.0)] {
            assert_eq!(
                server.connected(n(x), n(y)).unwrap(),
                x == y || baseline::shortest_path_cost(snap_now.graph(), n(x), n(y)).is_some(),
                "connected({x}, {y}) after removal"
            );
        }
        server.shutdown();
    }

    /// Load shedding: with the workers frozen, submissions beyond the
    /// queue capacity are rejected with the retry-after hint instead of
    /// blocking the producer, and the depth/rejection stats record the
    /// pressure. Releasing the workers drains the admitted jobs.
    #[test]
    fn full_queue_sheds_with_retry_after_hint() {
        let (_, snap) = snapshot();
        let retry_after = std::time::Duration::from_micros(750);
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                retry_after,
                ..ServeConfig::default()
            },
        );
        server.pause_workers();
        let p1 = server.submit(&[QueryRequest::new(n(0), n(39))]).unwrap();
        let p2 = server.submit(&[QueryRequest::new(n(1), n(38))]).unwrap();
        let rejected = server.submit(&[QueryRequest::new(n(2), n(37))]);
        assert_eq!(rejected.unwrap_err(), server::Overloaded { retry_after });
        assert!(matches!(
            server.try_query_batch(&[QueryRequest::new(n(2), n(37))]),
            Err(server::ServeError::Overloaded { attempts: 1, .. })
        ));
        {
            let stats = server.stats();
            assert_eq!(stats.queue_depth, 2, "both admitted jobs still queued");
            assert_eq!(stats.queue_high_water, 2);
            assert_eq!(stats.queue_capacity, 2);
            assert_eq!(stats.queue_rejections, 2);
        }
        server.unpause_workers();
        assert!(p1.wait().unwrap().answers[0].cost.is_some());
        assert!(p2.wait().unwrap().answers[0].cost.is_some());
        // With space free again, the blocking wrapper goes straight in.
        assert!(server.query(n(2), n(37)).unwrap().answer.cost.is_some());
        let stats = server.shutdown();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.queue_depth, 0, "drained");
        assert_eq!(stats.queue_rejections, 2);
    }

    /// The blocking wrapper's admission retries are bounded: with the
    /// workers frozen and the queue full, `query_batch` backs off
    /// `max_admission_retries` times and then returns the typed
    /// overload error instead of spinning forever.
    #[test]
    fn blocking_wrapper_gives_up_after_bounded_retries() {
        let (_, snap) = snapshot();
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                retry_after: std::time::Duration::from_micros(50),
                max_admission_retries: 3,
                ..ServeConfig::default()
            },
        );
        server.pause_workers();
        let p = server.submit(&[QueryRequest::new(n(0), n(39))]).unwrap();
        match server.query_batch(&[QueryRequest::new(n(1), n(38))]) {
            Err(ServeError::Overloaded { attempts, .. }) => assert_eq!(attempts, 4),
            other => panic!("expected bounded-retry overload, got {other:?}"),
        }
        server.unpause_workers();
        assert!(p.wait().unwrap().answers[0].cost.is_some());
        server.shutdown();
    }

    /// The admission back-off is decorrelated jitter, not lockstep
    /// doubling: deterministic per seed, bounded by `[base, cap]`, and
    /// different seeds produce different sleep sequences.
    #[test]
    fn admission_backoff_is_seeded_bounded_decorrelated_jitter() {
        use std::time::Duration;
        let base = Duration::from_micros(50);
        let cap = base * 64;
        let seq = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(base, cap, seed);
            (0..32).map(|_| b.next_delay()).collect()
        };
        let a = seq(42);
        assert_eq!(a, seq(42), "same seed, same sequence");
        let b = seq(43);
        assert_ne!(a, b, "different seeds decorrelate");
        for (i, d) in a.iter().chain(&b).enumerate() {
            assert!(*d >= base && *d <= cap, "sleep {i} ({d:?}) out of bounds");
        }
        // Jitter actually jitters: the sequence is not the deterministic
        // doubling ladder base, 2*base, 4*base, ...
        assert!(
            a.iter()
                .enumerate()
                .any(|(i, d)| *d != (base * 2u32.pow(i.min(6) as u32)).min(cap)),
            "sequence degenerated to lockstep doubling: {a:?}"
        );
    }

    /// A worker panic mid-batch resolves every in-flight request with
    /// the typed `WorkerFailed` error (no hang), the supervisor keeps
    /// the pool alive, and the server serves correctly afterwards.
    #[test]
    fn worker_panic_is_isolated_and_the_pool_recovers() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let plan = Arc::new(FaultPlan::new().panic_at(FaultPoint::ServeWorker { worker: 0 }, 1));
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                fault: Some(Arc::clone(&plan)),
                ..ServeConfig::default()
            },
        );
        // First job hits the injected panic: typed error, not a hang.
        assert!(matches!(
            server.query(n(0), n(39)),
            Err(ServeError::Request(ds_closure::ClosureError::WorkerFailed))
        ));
        assert!(plan.exhausted());
        // The pool recovered: the same query is now answered exactly.
        let served = server.query(n(0), n(39)).unwrap();
        assert_eq!(
            served.answer.cost,
            baseline::shortest_path_cost(&csr, n(0), n(39))
        );
        let stats = server.shutdown();
        assert_eq!(stats.worker_restarts, 1);
        assert!(!stats.degraded, "a worker panic never degrades writes");
    }

    /// A writer *panic* is survivable: the in-flight update resolves
    /// with the typed `WriterRestarted` (not applied — retry), the
    /// supervisor respawns the writer from the last published
    /// snapshot, and the retried update applies exactly.
    #[test]
    fn writer_panic_respawns_and_updates_resume() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let plan = Arc::new(FaultPlan::new().panic_at(FaultPoint::ServeWriter, 1));
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 2,
                fault: Some(Arc::clone(&plan)),
                ..ServeConfig::default()
            },
        );
        let insert = NetworkUpdate::Insert {
            edge: Edge::new(a, b, 1),
            owner: 0,
        };
        assert!(matches!(
            server.update(&insert),
            Err(ds_closure::ClosureError::WriterRestarted)
        ));
        assert!(plan.exhausted());
        assert_eq!(server.epoch(), 0, "the doomed update published nothing");
        // The retry hits the respawned writer and applies exactly.
        let served = server.update(&insert).unwrap();
        assert_eq!(served.epoch, 1);
        let after = server.query(n(0), n(39)).unwrap();
        assert_eq!(after.epoch, 1);
        let snap_now = server.snapshot();
        assert_eq!(
            after.answer.cost,
            baseline::shortest_path_cost(snap_now.graph(), n(0), n(39))
        );
        assert!(after.answer.cost <= baseline::shortest_path_cost(&csr, n(0), n(39)));
        let stats = server.shutdown();
        assert_eq!(stats.writer_restarts, 1);
        assert!(!stats.degraded, "a writer panic no longer degrades");
        assert_eq!(stats.updates, 1);
        assert!(stats.to_string().contains("1 writer restarts"));
    }

    /// A *non-unwind* writer failure (`FaultAction::Fail`) is the
    /// permanent death: no respawn, read-only degraded mode, every
    /// update — in-flight and future — refused with `WriterDown`.
    #[test]
    fn writer_fail_injection_degrades_to_read_only() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let plan = Arc::new(FaultPlan::new().fail_at(FaultPoint::ServeWriter, 1));
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 2,
                fault: Some(plan),
                ..ServeConfig::default()
            },
        );
        let insert = NetworkUpdate::Insert {
            edge: Edge::new(a, b, 1),
            owner: 0,
        };
        assert!(matches!(
            server.update(&insert),
            Err(ds_closure::ClosureError::WriterDown)
        ));
        assert!(
            matches!(
                server.update(&insert),
                Err(ds_closure::ClosureError::WriterDown)
            ),
            "degraded mode refuses every later update"
        );
        // Reads keep serving the last published epoch.
        let served = server.query(n(0), n(39)).unwrap();
        assert_eq!(served.epoch, 0);
        assert_eq!(
            served.answer.cost,
            baseline::shortest_path_cost(&csr, n(0), n(39))
        );
        let stats = server.shutdown();
        assert!(stats.degraded);
        assert_eq!(stats.writer_restarts, 0, "Fail never respawns");
        assert_eq!(stats.epoch, 0, "the failed update published nothing");
        assert!(stats.to_string().contains("DEGRADED"));
    }

    /// Armed observability: every answered request leaves a trace with
    /// a complete span set, counters land in the registry, the workload
    /// recorder sees the hot pair, and the disarmed server answers
    /// identically (the observability oracle).
    #[test]
    fn armed_observability_traces_requests_end_to_end() {
        use ds_obs::{Observability, Stage, TraceOutcome};
        let (_, snap) = snapshot();
        let disarmed_snap = snap.clone();
        let obs = Observability::armed();
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 2,
                obs: Some(obs.clone()),
                ..ServeConfig::default()
            },
        );
        // A hot pair (repeated → cache hits) plus distinct pairs.
        let mut answers = Vec::new();
        for i in 0..4u32 {
            answers.push(server.query(n(0), n(39)).unwrap().answer.cost);
            answers.push(server.query(n(i), n(30 + i)).unwrap().answer.cost);
        }
        // One update so the writer trace and epoch gauge move too.
        let f0 = server.snapshot().fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        server
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
        assert!(server.connected(n(0), n(39)).unwrap());

        let traces = obs.tracer().recent(64);
        assert!(!traces.is_empty());
        for rt in &traces {
            match rt.outcome {
                TraceOutcome::Answered | TraceOutcome::Unreachable => {
                    if rt.span(Stage::ReachIndex).is_some() {
                        continue; // connected fast path: one marker span
                    }
                    assert!(rt.span(Stage::QueueWait).is_some(), "{rt}");
                    let resolved = rt.span(Stage::Evaluation).is_some()
                        || rt.span(Stage::CacheHit).is_some()
                        || rt.span(Stage::Coalesced).is_some();
                    assert!(resolved, "no resolution span: {rt}");
                }
                TraceOutcome::Applied => {
                    assert!(rt.span(Stage::WriterApply).is_some(), "{rt}");
                    assert!(rt.span(Stage::Publication).is_some(), "{rt}");
                }
                other => panic!("unexpected outcome {other:?} in {rt}"),
            }
        }
        let snap_metrics = obs.snapshot();
        assert_eq!(snap_metrics.counter("serve_requests"), Some(8));
        assert!(snap_metrics.counter("serve_cache_hits").unwrap_or(0) >= 1);
        assert_eq!(snap_metrics.counter("serve_updates"), Some(1));
        assert_eq!(snap_metrics.gauge("serve_epoch"), Some(1));
        assert_eq!(snap_metrics.counter("serve_reach_fast_path"), Some(1));
        let hist = snap_metrics
            .histogram("request_latency_ns")
            .expect("latency histogram registered");
        assert!(hist.count() >= 8);
        let hot = obs.workload().top_vertex_pairs(1);
        assert_eq!(
            (hot[0].a, hot[0].b),
            (0, 39),
            "the repeated pair is the hottest"
        );

        let stats = server.shutdown();
        // Oracle: a disarmed server answers every query identically.
        let disarmed = Server::start(disarmed_snap, ServeConfig::with_workers(2));
        let mut oracle = Vec::new();
        for i in 0..4u32 {
            oracle.push(disarmed.query(n(0), n(39)).unwrap().answer.cost);
            oracle.push(disarmed.query(n(i), n(30 + i)).unwrap().answer.cost);
        }
        assert_eq!(answers, oracle, "tracing never changes answers");
        let dstats = disarmed.shutdown();
        assert_eq!(stats.requests, dstats.requests);
    }

    /// Durable serving end-to-end: updates applied through a WAL-on
    /// server survive a full stop, and a server restarted from
    /// `recover` answers identically at the recovered epoch.
    #[test]
    fn durable_updates_survive_a_restart() {
        let (_, snap) = snapshot();
        let dir = tmpdir("restart");
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let config = ServeConfig {
            workers: 1,
            durability: Some(DurabilityConfig::at(&dir)),
            ..ServeConfig::default()
        };
        let server = Server::start(snap, config.clone());
        for cost in [3u64, 2, 1] {
            server
                .update(&NetworkUpdate::Insert {
                    edge: Edge::new(a, b, cost),
                    owner: 0,
                })
                .unwrap();
        }
        let final_answer = server.query(n(0), n(39)).unwrap();
        let stats = server.shutdown(); // process death, simulated politely
        assert_eq!(stats.epoch, 3);
        assert_eq!(stats.wal_records, 3);
        assert!(stats.wal_commits >= 1 && stats.wal_commits <= 3);
        assert_eq!(stats.wal_failures, 0);
        assert!(stats.to_string().contains("wal 3 records"));

        let rec = recover(&dir).expect("recover the durable state");
        assert_eq!(rec.epoch, 3);
        let revived = Server::try_start_at(rec.snapshot, rec.epoch, config).unwrap();
        let again = revived.query(n(0), n(39)).unwrap();
        assert_eq!(again.epoch, 3, "resumes at the recovered epoch");
        assert_eq!(again.answer.cost, final_answer.answer.cost);
        // And the revived server keeps appending to the same log.
        revived
            .update(&NetworkUpdate::Remove {
                src: a,
                dst: b,
                owner: 0,
            })
            .unwrap();
        revived.shutdown();
        let rec2 = recover(&dir).expect("recover again");
        assert_eq!(rec2.epoch, 4, "the post-restart update is durable too");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected WAL append failure refuses the update with the typed
    /// `DurabilityFailed`, applies nothing, and the server keeps
    /// serving; the repaired log accepts the retry.
    #[test]
    fn wal_append_failure_refuses_the_update_without_applying() {
        let (_, snap) = snapshot();
        let dir = tmpdir("append-fail");
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let plan = Arc::new(FaultPlan::new().fail_at(FaultPoint::WalAppend, 1));
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                durability: Some(DurabilityConfig::at(&dir)),
                fault: Some(Arc::clone(&plan)),
                ..ServeConfig::default()
            },
        );
        let insert = NetworkUpdate::Insert {
            edge: Edge::new(a, b, 1),
            owner: 0,
        };
        assert!(matches!(
            server.update(&insert),
            Err(ds_closure::ClosureError::DurabilityFailed)
        ));
        assert_eq!(server.epoch(), 0, "append-before-apply: nothing applied");
        assert!(server.query(n(0), n(39)).unwrap().answer.cost.is_some());
        // The rule is one-shot: the retry goes through the repaired log.
        assert_eq!(server.update(&insert).unwrap().epoch, 1);
        let stats = server.shutdown();
        assert_eq!(stats.wal_failures, 1);
        assert_eq!(stats.wal_records, 1);
        assert!(!stats.degraded, "a disk fault never degrades the writer");
        let rec = recover(&dir).expect("recover");
        assert_eq!(rec.epoch, 1, "only the acknowledged update is durable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected writer *panic* at the WAL append point kills the
    /// writer before bytes land: the supervisor respawns it, the redo
    /// suffix is empty, and live state still matches the durable state.
    #[test]
    fn writer_panic_at_wal_append_respawns_consistently() {
        let (_, snap) = snapshot();
        let dir = tmpdir("panic-append");
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let plan = Arc::new(FaultPlan::new().panic_at(FaultPoint::WalAppend, 1));
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                durability: Some(DurabilityConfig::at(&dir)),
                fault: Some(Arc::clone(&plan)),
                ..ServeConfig::default()
            },
        );
        let insert = NetworkUpdate::Insert {
            edge: Edge::new(a, b, 1),
            owner: 0,
        };
        assert!(matches!(
            server.update(&insert),
            Err(ds_closure::ClosureError::WriterRestarted)
        ));
        assert_eq!(server.epoch(), 0);
        // Respawned writer, clean log: the retry applies and persists.
        assert_eq!(server.update(&insert).unwrap().epoch, 1);
        let stats = server.shutdown();
        assert_eq!(stats.writer_restarts, 1);
        let rec = recover(&dir).expect("recover");
        assert_eq!(rec.epoch, 1, "durable state matches the live outcome");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Jobs queued past their deadline are shed with the typed
    /// `DeadlineExceeded { waited }` error and counted.
    #[test]
    fn expired_jobs_are_shed_with_a_typed_error() {
        let (_, snap) = snapshot();
        let deadline = std::time::Duration::from_millis(5);
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                deadline: Some(deadline),
                ..ServeConfig::default()
            },
        );
        server.pause_workers();
        let stale = server.submit(&[QueryRequest::new(n(0), n(39))]).unwrap();
        std::thread::sleep(deadline * 4);
        server.unpause_workers();
        match stale.wait() {
            Err(ds_closure::ClosureError::DeadlineExceeded { waited }) => {
                assert!(waited >= deadline, "{waited:?} past the deadline")
            }
            other => panic!("expected a deadline shed, got {other:?}"),
        }
        // A fresh request (no queueing delay) is served normally.
        assert!(server.query(n(0), n(39)).unwrap().answer.cost.is_some());
        let stats = server.shutdown();
        assert_eq!(stats.deadline_shed, 1);
        assert_eq!(stats.requests, 1, "only the fresh request was served");
    }

    /// A delay injected at the worker hook lands *after* the queue-time
    /// shed check but before evaluation: the job is still within its
    /// deadline when drained and only blows it mid-evaluation, where
    /// the cooperative deadline check inside the batch kernel abandons
    /// it — counted in `deadline_cancelled`, not `deadline_shed`.
    #[test]
    fn slow_evaluation_is_cancelled_mid_eval_with_a_typed_error() {
        let (_, snap) = snapshot();
        let deadline = std::time::Duration::from_millis(20);
        let plan = Arc::new(FaultPlan::new().delay_at(
            FaultPoint::ServeWorker { worker: 0 },
            1,
            deadline * 5,
        ));
        let server = Server::start(
            snap,
            ServeConfig {
                workers: 1,
                deadline: Some(deadline),
                fault: Some(plan),
                ..ServeConfig::default()
            },
        );
        match server.query(n(0), n(39)) {
            Err(ServeError::Request(ds_closure::ClosureError::DeadlineExceeded { waited })) => {
                assert!(waited >= deadline, "{waited:?} past the deadline")
            }
            other => panic!("expected a mid-eval cancellation, got {other:?}"),
        }
        // The one-shot delay rule has fired; fresh requests serve
        // normally again.
        assert!(server.query(n(0), n(39)).unwrap().answer.cost.is_some());
        let stats = server.shutdown();
        assert_eq!(stats.deadline_cancelled, 1);
        assert_eq!(
            stats.deadline_shed, 0,
            "the job never queued past its deadline"
        );
    }
}
