//! # ds-serve — concurrent query serving over engine snapshots
//!
//! The paper parallelizes the *precompute* across fragment sites; this
//! crate parallelizes the *serving*: many concurrent readers, a live
//! update stream, and the batching-by-fragment-affinity that
//! workload-driven fragmentation work (Peng et al., *Query
//! Workload-based RDF Graph Fragmentation and Allocation*) identifies as
//! the throughput lever of distributed graph querying.
//!
//! Architecture (std-only — no third-party dependencies; threads are
//! hand-rolled like the site threads of `ds_machine`, whose stats
//! conventions — the balance ratio — this crate reuses):
//!
//! ```text
//!  clients ──► bounded job queue ──► worker pool (one scratch each)
//!                                        │  micro-batch: coalesce
//!                                        │  duplicates, group by
//!                                        │  fragment pair, run_batch
//!                                        ▼
//!                            Arc<EngineSnapshot>   (epoch N)
//!                                        ▲
//!  updaters ──► writer thread ── maintain() on a private copy,
//!               publish successor snapshot as epoch N+1
//! ```
//!
//! * **Snapshot epochs.** The immutable [`EngineSnapshot`] (tables,
//!   augmented graphs, planner — `Send + Sync` by construction, asserted
//!   at compile time in `ds_closure`) is shared via `Arc` and swapped
//!   atomically by the single writer. Readers pin the epoch for the
//!   duration of a micro-batch: every answer is consistent with some
//!   published version, and says which ([`ServedBatch::epoch`]).
//! * **Workers never lock on the query path.** All mutable evaluation
//!   state (the Dijkstra scratch, batch buffers) is worker-owned; the
//!   publication slot is consulted with one atomic load per micro-batch
//!   and its mutex touched only when the epoch actually moved.
//! * **Micro-batching.** A worker drains everything pending (bounded by
//!   [`ServeConfig::batch_max`]) in one lock acquisition, coalesces
//!   identical requests (single-flight), sorts the distinct ones by
//!   fragment pair and feeds them to the shared batch kernel
//!   (`ds_closure::api::run_batch`), which plans each fragment pair once
//!   and evaluates interior chain segments once per chain. Queue depth
//!   converts directly into amortization — the busier the server, the
//!   cheaper the average query.
//! * **Observability.** [`ServeStats`] reports throughput, p50/p99
//!   latency from an in-crate fixed-bucket [`LatencyHistogram`],
//!   per-worker busy time and scratch reuse, batch amortization
//!   counters, and which backend/strategy built the tables being served.
//!
//! ```
//! use ds_closure::{EngineConfig, EngineSnapshot};
//! use ds_fragment::linear::{linear_sweep, LinearConfig};
//! use ds_gen::deterministic::grid;
//! use ds_graph::NodeId;
//! use ds_serve::{ServeConfig, Server};
//!
//! let g = grid(10, 3);
//! let frag = linear_sweep(&g.edge_list(), &LinearConfig { fragments: 3, ..Default::default() })
//!     .unwrap()
//!     .fragmentation;
//! let snap = EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
//! let server = Server::start(snap, ServeConfig::with_workers(2));
//! let served = server.query(NodeId(0), NodeId(29));
//! assert_eq!(served.answer.cost, Some(11));
//! assert_eq!(served.epoch, 0);
//! let stats = server.shutdown();
//! assert_eq!(stats.requests, 1);
//! ```

pub mod histogram;
mod queue;
pub mod server;

pub use ds_closure::snapshot::EngineSnapshot;
pub use histogram::LatencyHistogram;
pub use server::{
    LatencySummary, ServeConfig, ServeStats, ServedAnswer, ServedBatch, ServedUpdate, Server,
};

#[cfg(test)]
mod tests {
    use super::*;
    use ds_closure::api::{NetworkUpdate, QueryRequest};
    use ds_closure::{baseline, EngineConfig};
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::grid;
    use ds_graph::{Edge, NodeId};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn snapshot() -> (ds_gen::GeneratedGraph, EngineSnapshot) {
        let g = grid(10, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let snap =
            EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
        (g, snap)
    }

    #[test]
    fn serves_correct_answers_from_many_threads() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let server = Arc::new(Server::start(snap, ServeConfig::with_workers(3)));
        std::thread::scope(|s| {
            for t in 0..6u32 {
                let server = Arc::clone(&server);
                let csr = &csr;
                s.spawn(move || {
                    for i in 0..25u32 {
                        let (x, y) = (n((i * 7 + t) % 40), n((i * 11) % 40));
                        let served = server.query(x, y);
                        assert_eq!(
                            served.answer.cost,
                            baseline::shortest_path_cost(csr, x, y),
                            "thread {t} query {x}->{y}"
                        );
                        assert_eq!(served.epoch, 0, "no updates: epoch stays 0");
                    }
                });
            }
        });
        let stats = Arc::into_inner(server)
            .expect("all clients done")
            .shutdown();
        assert_eq!(stats.requests, 150);
        assert_eq!(stats.jobs, 150);
        assert!(stats.batches > 0 && stats.batches <= 150);
        assert_eq!(stats.evaluated + stats.coalesced, 150);
        assert_eq!(stats.latency.count, 150);
        assert!(stats.latency.p99_us >= stats.latency.p50_us);
        assert_eq!(stats.backend, "inline");
        assert!(
            stats.scratch.sweeps > 0,
            "workers really used their scratch"
        );
    }

    #[test]
    fn batch_jobs_answer_in_request_order() {
        let (g, snap) = snapshot();
        let csr = g.closure_graph();
        let server = Server::start(snap, ServeConfig::with_workers(2));
        let requests: Vec<QueryRequest> = (0..12u32)
            .map(|i| QueryRequest::new(n(i), n(39 - i)))
            .collect();
        let served = server.query_batch(&requests);
        assert_eq!(served.answers.len(), 12);
        for (req, a) in requests.iter().zip(&served.answers) {
            assert_eq!(
                a.cost,
                baseline::shortest_path_cost(&csr, req.source, req.target),
                "{}->{}",
                req.source,
                req.target
            );
        }
        server.shutdown();
    }

    #[test]
    fn identical_requests_coalesce_within_a_micro_batch() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        // One job containing the same request 8 times: single-flight.
        let requests = vec![QueryRequest::new(n(0), n(39)); 8];
        let served = server.query_batch(&requests);
        assert_eq!(served.answers.len(), 8);
        let cost = served.answers[0].cost;
        assert!(served.answers.iter().all(|a| a.cost == cost));
        let stats = server.shutdown();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.evaluated, 1, "one evaluation for eight answers");
        assert_eq!(stats.coalesced, 7);
        assert!(stats.coalesced_fraction() > 0.8);
    }

    #[test]
    fn updates_bump_the_epoch_and_stay_exact() {
        let (_, snap) = snapshot();
        let f0 = snap.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let server = Server::start(snap, ServeConfig::with_workers(2));
        let before = server.query(n(0), n(39));
        assert_eq!(before.epoch, 0);

        let served = server
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
        assert_eq!(served.epoch, 1);
        assert!(!served.report.full_recompute);
        assert_eq!(server.epoch(), 1);

        let after = server.query(n(0), n(39));
        assert_eq!(after.epoch, 1, "new micro-batches see the new epoch");
        assert!(after.answer.cost <= before.answer.cost);
        // The published snapshot is the post-update network.
        let snap = server.snapshot();
        assert_eq!(
            after.answer.cost,
            baseline::shortest_path_cost(snap.graph(), n(0), n(39))
        );

        let removed = server
            .update(&NetworkUpdate::Remove {
                src: a,
                dst: b,
                owner: 0,
            })
            .unwrap();
        assert_eq!(removed.epoch, 2);
        let restored = server.query(n(0), n(39));
        assert_eq!(restored.answer.cost, before.answer.cost);
        let stats = server.shutdown();
        assert_eq!(stats.updates, 2);
        assert!(stats.publications >= 1 && stats.publications <= 2);
    }

    #[test]
    fn invalid_updates_error_without_poisoning_the_server() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        let err = server.update(&NetworkUpdate::Insert {
            edge: Edge::new(n(0), n(39), 1),
            owner: 0, // node 39 is not in fragment 0
        });
        assert!(err.is_err());
        assert_eq!(server.epoch(), 0, "failed update publishes nothing");
        // A structural no-op (removing a non-existent connection) is Ok
        // but publishes nothing either.
        let noop = server
            .update(&NetworkUpdate::Remove {
                src: n(0),
                dst: n(0),
                owner: 0,
            })
            .unwrap();
        assert_eq!(noop.report.sites_touched, 0);
        assert_eq!(noop.epoch, 0, "no-op stays on the current epoch");
        assert_eq!(server.epoch(), 0);
        assert!(server.query(n(0), n(39)).answer.cost.is_some());
        let stats = server.shutdown();
        assert_eq!(stats.updates, 0, "no effective updates");
        assert_eq!(stats.publications, 0);
    }

    #[test]
    fn stats_report_strategy_and_balance() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(2));
        for i in 0..10u32 {
            server.query(n(i), n(39 - i));
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.strategy,
            ds_closure::PrecomputeStrategy::Skeleton,
            "serving skeleton-built tables"
        );
        assert!(stats.balance_ratio() >= 1.0);
        assert!(stats.throughput_qps() > 0.0);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn empty_batch_is_answered_inline() {
        let (_, snap) = snapshot();
        let server = Server::start(snap, ServeConfig::with_workers(1));
        let served = server.query_batch(&[]);
        assert!(served.answers.is_empty());
        server.shutdown();
    }
}
