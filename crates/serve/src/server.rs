//! The serving core: epoch-published snapshots, a worker pool with
//! per-worker scratch, a micro-batching dispatcher, and one writer
//! thread driving incremental update maintenance.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ds_closure::api::{BatchStats, NetworkUpdate, QueryRequest};
use ds_closure::complementary::PrecomputeStrategy;
use ds_closure::snapshot::EngineSnapshot;
use ds_closure::updates::UpdateReport;
use ds_closure::{ClosureError, QueryAnswer};
use ds_durability::{DurabilityConfig, DurabilityError, DurableStore};
use ds_fault::{lock_unpoisoned, FaultPlan, FaultPoint};
use ds_fragment::FragmentId;
use ds_graph::{NodeId, ScratchDijkstra, ScratchStats};
use ds_obs::{
    Counter, EvalTrace, Gauge, LatencyHistogram, Observability, RequestTrace, SpanRecord, Stage,
    TraceId, TraceOutcome,
};

use crate::cache::AnswerCache;
use crate::queue::{BoundedQueue, PushError};

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Reader worker threads (each owns its scratch kernel).
    pub workers: usize,
    /// Bounded submission queue depth, in jobs. When the pool falls this
    /// far behind, further submissions are **shed**: [`Server::submit`] /
    /// [`Server::try_query_batch`] return [`Overloaded`] with a
    /// retry-after hint instead of blocking the producer.
    pub queue_capacity: usize,
    /// Most jobs one worker folds into a single micro-batch.
    pub batch_max: usize,
    /// Most pending updates the writer folds into one publication.
    pub write_batch_max: usize,
    /// Per-epoch answer cache: identical queries repeated within one
    /// snapshot epoch are served from a lock-light shared map instead of
    /// re-evaluated; the cache is dropped wholesale whenever the writer
    /// publishes a new epoch. Hit/miss counters land in [`ServeStats`].
    pub answer_cache: bool,
    /// Most answers the cache holds per epoch (bounds memory on
    /// read-only deployments, whose epoch never advances and would
    /// otherwise accumulate every distinct pair ever queried; once full,
    /// further inserts are dropped until the next epoch).
    pub answer_cache_entries: usize,
    /// The retry-after hint handed to shed producers (and the back-off
    /// the blocking convenience wrappers sleep between admission
    /// attempts).
    pub retry_after: Duration,
    /// Request deadline, stamped at admission. A job still queued past
    /// its deadline is **shed by the worker that drains it** with
    /// [`ClosureError::DeadlineExceeded`] instead of being evaluated
    /// (counted in [`ServeStats::deadline_shed`]). `None` (the default)
    /// disables shedding.
    pub deadline: Option<Duration>,
    /// How many times the blocking [`Server::query_batch`] wrapper
    /// retries an [`Overloaded`] admission (with exponential back-off
    /// starting at [`ServeConfig::retry_after`]) before giving up and
    /// returning [`ServeError::Overloaded`]. 0 = no retry.
    pub max_admission_retries: u32,
    /// Durable storage (`ds_durability`): when set, the writer appends
    /// every folded update batch to the write-ahead log **before**
    /// applying it (one buffered write + one fsync per group commit) and
    /// checkpoints on the configured thresholds, so
    /// [`ds_durability::recover`] can rebuild the served state after a
    /// process death. `None` (the default) keeps the tier memory-only.
    pub durability: Option<DurabilityConfig>,
    /// Armed fault-injection plan (tests only; `None` in production).
    /// The hooks are a single `Option` branch when disarmed — the serve
    /// bench's fault-overhead row measures exactly this.
    pub fault: Option<Arc<FaultPlan>>,
    /// Observability bundle (`ds_obs`). When armed, every admission
    /// mints a [`TraceId`], workers file per-request span sets (queue
    /// wait, evaluation, per-chain segment time, cache/coalesce/
    /// reach-index markers) into the trace ring and slow-query log,
    /// the hot path samples the workload recorder, and every `ServeStats`
    /// counter is mirrored into the metrics registry. `None` (the
    /// default) reduces every hook to one `Option` branch — the serve
    /// bench's `obs-disarmed` row gates exactly this.
    pub obs: Option<Arc<Observability>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 1024,
            batch_max: 64,
            write_batch_max: 16,
            answer_cache: true,
            answer_cache_entries: 65_536,
            retry_after: Duration::from_micros(200),
            deadline: None,
            max_admission_retries: 16,
            durability: None,
            fault: None,
            obs: None,
        }
    }
}

impl ServeConfig {
    /// Default configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers: workers.max(1),
            ..ServeConfig::default()
        }
    }
}

/// One answered request, stamped with the epoch it was served at.
#[derive(Clone, Debug)]
pub struct ServedAnswer {
    pub answer: QueryAnswer,
    /// The published snapshot version the answer is consistent with.
    pub epoch: u64,
}

/// One answered job: answers in request order, all evaluated against the
/// same snapshot epoch (that is the consistency unit).
#[derive(Clone, Debug)]
pub struct ServedBatch {
    pub answers: Vec<QueryAnswer>,
    pub epoch: u64,
}

/// One applied update: the maintenance report plus the epoch at which
/// its effect became visible to readers.
#[derive(Clone, Debug)]
pub struct ServedUpdate {
    pub report: UpdateReport,
    pub epoch: u64,
}

/// The load-shedding rejection: the submission queue is at capacity.
/// Retry no sooner than `retry_after` (the hint is
/// [`ServeConfig::retry_after`]); the blocking wrappers do exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    pub retry_after: Duration,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve queue at capacity; retry after {:?}",
            self.retry_after
        )
    }
}

impl std::error::Error for Overloaded {}

/// Why a blocking query wrapper failed. Admission exhaustion and
/// request-level failures (worker panic, deadline shed) are distinct:
/// the former never entered the queue, the latter consumed a slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Every admission attempt was shed; `attempts` counts them.
    Overloaded {
        retry_after: Duration,
        attempts: u32,
    },
    /// The job was admitted but resolved to a typed failure instead of
    /// an answer (worker panic, deadline shed, ...).
    Request(ClosureError),
}

impl ServeError {
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                retry_after,
                attempts,
            } => write!(
                f,
                "serve queue still at capacity after {attempts} attempts; retry after {retry_after:?}"
            ),
            ServeError::Request(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Bounded decorrelated-jitter back-off for the blocking wrappers'
/// admission retries: each sleep is drawn uniformly from
/// `[base, prev * 3]` and capped, so concurrent shed clients spread
/// out instead of re-colliding in lockstep the way deterministic
/// doubling makes them (every client that was shed together retries
/// together, forever). Deterministic given its seed — a SplitMix64
/// stream — so tests can assert exact sequences.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        let base = base.max(Duration::from_nanos(1));
        Backoff {
            base,
            cap: cap.max(base),
            prev: base,
            state: seed,
        }
    }

    /// The next sleep: uniform in `[base, 3 * previous]`, clamped to
    /// `[base, cap]`.
    pub fn next_delay(&mut self) -> Duration {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let lo = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(lo);
        let pick = lo + if hi > lo { z % (hi - lo + 1) } else { 0 };
        let next = Duration::from_nanos(pick).clamp(self.base, self.cap);
        self.prev = next;
        next
    }
}

/// Per-process seed stream for [`Backoff`]: every blocking call gets
/// its own jitter sequence, decorrelating concurrent retriers.
fn next_backoff_seed() -> u64 {
    static SEED: AtomicU64 = AtomicU64::new(0x005E_ED0F_B0FF);
    SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// An admitted (but not yet answered) job: the handle
/// [`Server::submit`] returns. [`PendingBatch::wait`] blocks until the
/// worker pool replies.
#[derive(Debug)]
pub struct PendingBatch {
    rx: mpsc::Receiver<Result<ServedBatch, ClosureError>>,
}

impl PendingBatch {
    /// Block until the pool resolves this job — with the answers, or
    /// with the typed error the supervisor attached (worker panic,
    /// deadline shed). Never hangs: if the worker holding the job died
    /// without replying, the dropped channel reports
    /// [`ClosureError::WorkerFailed`].
    pub fn wait(self) -> Result<ServedBatch, ClosureError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(mpsc::RecvError) => Err(ClosureError::WorkerFailed),
        }
    }
}

/// Latency percentiles over every request served so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
}

/// A point-in-time report of the serving subsystem.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Reader workers in the pool.
    pub workers: usize,
    /// Current published epoch (updates applied since start).
    pub epoch: u64,
    /// Updates applied by the writer thread.
    pub updates: u64,
    /// Snapshot publications (≤ `updates`: the writer folds pending
    /// updates into one copy-on-write publication).
    pub publications: u64,
    /// Jobs answered.
    pub jobs: u64,
    /// Requests answered (a job carries ≥ 1 request).
    pub requests: u64,
    /// Micro-batches evaluated.
    pub batches: u64,
    /// Distinct requests actually evaluated.
    pub evaluated: u64,
    /// Requests answered by coalescing onto an identical batch-mate
    /// (single-flight within a micro-batch).
    pub coalesced: u64,
    /// Distinct requests answered from the per-epoch answer cache
    /// (`requests == evaluated + coalesced + cache_hits`).
    pub cache_hits: u64,
    /// Distinct requests probed against the cache without a usable entry
    /// (they were then evaluated). 0 when the cache is disabled.
    pub cache_misses: u64,
    /// `connected` calls answered by the published snapshot's SCC/chain
    /// reachability index — no queue, no worker, no Dijkstra sweep.
    pub reach_fast_path: u64,
    /// Whether the published snapshot currently carries a fresh
    /// reachability index (false = disabled, or the writer has not yet
    /// republished after an invalidating update).
    pub reach_index_fresh: bool,
    /// Aggregated plan/segment amortization across every micro-batch.
    pub batch: BatchStats,
    /// Jobs waiting in the submission queue right now.
    pub queue_depth: usize,
    /// The deepest the submission queue has ever been.
    pub queue_high_water: usize,
    /// The configured queue capacity (the shedding threshold).
    pub queue_capacity: usize,
    /// Submissions shed because the queue was at capacity (each rejected
    /// admission attempt counts once; a blocking wrapper that backs off
    /// and retries can count several times for one job).
    pub queue_rejections: u64,
    /// Wall time since the server started.
    pub elapsed: Duration,
    /// Per-worker evaluation time (index = worker id).
    pub busy: Vec<Duration>,
    /// Writer-thread time spent on maintenance + publication. Since
    /// structural sharing, publication itself is O(sites) refcount bumps;
    /// the dominant cost is the incremental maintenance, which detaches
    /// only the touched sites' tables from the published epoch.
    pub writer_busy: Duration,
    /// Merged per-worker scratch-kernel reuse counters.
    pub scratch: ScratchStats,
    /// Request latency (submit → reply) percentiles.
    pub latency: LatencySummary,
    /// Which backend's build path produced the tables being served.
    pub backend: &'static str,
    /// Which precompute strategy built (or last rebuilt) those tables.
    pub strategy: PrecomputeStrategy,
    /// Times a worker was respawned by its supervisor after a panic.
    /// Every request of the doomed micro-batch resolved to
    /// [`ClosureError::WorkerFailed`] first — nothing hangs.
    pub worker_restarts: u64,
    /// Times the writer thread was respawned by its supervisor after a
    /// panic: the working copy is rebuilt from the last published
    /// snapshot and the write channel stays armed, so updates keep
    /// flowing. The in-flight updates of the doomed batch resolved to
    /// [`ClosureError::WriterRestarted`] (not applied — retry) first.
    pub writer_restarts: u64,
    /// Jobs shed at the worker because they sat queued past
    /// [`ServeConfig::deadline`] (each resolved to
    /// [`ClosureError::DeadlineExceeded`]).
    pub deadline_shed: u64,
    /// Requests abandoned *mid-evaluation* because the chain loop
    /// noticed the admission-stamped deadline had passed (each resolved
    /// to [`ClosureError::DeadlineExceeded`]). Distinct from
    /// [`ServeStats::deadline_shed`], which counts queue-time sheds that
    /// never started evaluating.
    pub deadline_cancelled: u64,
    /// Update records durably appended to the write-ahead log (0 when
    /// durability is off).
    pub wal_records: u64,
    /// WAL group commits: one buffered write + one fsync each,
    /// amortized across the writer's folded update batch
    /// (`wal_records / wal_commits` = achieved group-commit factor).
    pub wal_commits: u64,
    /// WAL appends or checkpoint writes that failed (I/O error, torn
    /// write, injected disk fault). Each failed append refused its whole
    /// batch with [`ClosureError::DurabilityFailed`] without applying
    /// anything; each failed checkpoint left the previous checkpoint +
    /// full log authoritative.
    pub wal_failures: u64,
    /// Checkpoints durably written (each prunes the log behind it).
    pub checkpoints: u64,
    /// `true` once the writer thread died: the server is read-only.
    /// Reads keep serving the last published epoch; updates are refused
    /// with [`ClosureError::WriterDown`].
    pub degraded: bool,
}

impl ServeStats {
    /// Aggregate request throughput since start.
    pub fn throughput_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }

    /// Worker imbalance: max busy over mean busy (1.0 = balanced);
    /// the same measure the machine backend reports per site.
    pub fn balance_ratio(&self) -> f64 {
        ds_machine::stats::balance_ratio(&self.busy)
    }

    /// Fraction of requests answered without their own evaluation.
    pub fn coalesced_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.coalesced as f64 / self.requests as f64
        }
    }

    /// Fraction of cache probes that hit (0.0 when the cache is off or
    /// never probed).
    pub fn cache_hit_fraction(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    /// One-line summary, like `MaterializeStats` and `MachineStats`:
    /// `epoch 2 (4 workers, inline): 150 requests (120 evaluated, 20
    /// coalesced, 10 cached), 2 updates, p50 8.1us p99 40.2us, balance
    /// 1.10`, with degrade/restart/shed markers appended only when
    /// non-zero.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {} ({} workers, {}): {} requests ({} evaluated, {} coalesced, \
             {} cached), {} updates, p50 {:.1}us p99 {:.1}us, balance {:.2}",
            self.epoch,
            self.workers,
            self.backend,
            self.requests,
            self.evaluated,
            self.coalesced,
            self.cache_hits,
            self.updates,
            self.latency.p50_us,
            self.latency.p99_us,
            self.balance_ratio(),
        )?;
        if self.queue_rejections > 0 {
            write!(f, ", {} shed", self.queue_rejections)?;
        }
        if self.deadline_shed > 0 {
            write!(f, ", {} past deadline", self.deadline_shed)?;
        }
        if self.deadline_cancelled > 0 {
            write!(f, ", {} cancelled mid-eval", self.deadline_cancelled)?;
        }
        if self.wal_commits > 0 {
            write!(
                f,
                ", wal {} records/{} commits/{} checkpoints",
                self.wal_records, self.wal_commits, self.checkpoints
            )?;
        }
        if self.wal_failures > 0 {
            write!(f, ", {} wal failures", self.wal_failures)?;
        }
        if self.worker_restarts > 0 {
            write!(f, ", {} worker restarts", self.worker_restarts)?;
        }
        if self.writer_restarts > 0 {
            write!(f, ", {} writer restarts", self.writer_restarts)?;
        }
        if self.degraded {
            write!(f, ", DEGRADED (read-only)")?;
        }
        Ok(())
    }
}

struct QueryJob {
    requests: Vec<QueryRequest>,
    /// One trace id per request, minted at admission; empty when
    /// observability is disarmed.
    traces: Vec<TraceId>,
    reply: mpsc::Sender<Result<ServedBatch, ClosureError>>,
    submitted: Instant,
}

struct WriteJob {
    update: NetworkUpdate,
    reply: mpsc::Sender<Result<ServedUpdate, ClosureError>>,
}

/// The publication slot: an epoch-stamped `Arc<EngineSnapshot>` behind a
/// mutex, plus an atomic epoch mirror so readers can detect staleness
/// with one relaxed load. The mutex is touched only when the epoch
/// actually changed (publication is writer-rate, not query-rate), so the
/// steady-state query path never blocks on it.
struct Published {
    epoch: AtomicU64,
    slot: Mutex<(u64, Arc<EngineSnapshot>)>,
}

impl Published {
    fn new(epoch: u64, snapshot: Arc<EngineSnapshot>) -> Self {
        Published {
            epoch: AtomicU64::new(epoch),
            slot: Mutex::new((epoch, snapshot)),
        }
    }

    /// Ensure a worker's cached `(epoch, snapshot)` is present and
    /// current; the cached pair keeps in-flight evaluation pinned to one
    /// version. Costs one atomic load when already fresh; workers clear
    /// the cache before blocking idle (see `worker_loop`), so only
    /// workers with work in hand keep an epoch alive.
    fn pin<'a>(
        &self,
        cached: &'a mut Option<(u64, Arc<EngineSnapshot>)>,
    ) -> &'a (u64, Arc<EngineSnapshot>) {
        let current = self.epoch.load(Ordering::Acquire);
        let fresh = matches!(cached, Some((epoch, _)) if *epoch == current);
        if !fresh {
            let slot = lock_unpoisoned(&self.slot);
            *cached = Some((slot.0, Arc::clone(&slot.1)));
        }
        match cached {
            Some(pair) => pair,
            None => unreachable!("pin fills the slot above"),
        }
    }

    fn current(&self) -> (u64, Arc<EngineSnapshot>) {
        let slot = lock_unpoisoned(&self.slot);
        (slot.0, Arc::clone(&slot.1))
    }

    fn publish(&self, epoch: u64, snapshot: Arc<EngineSnapshot>) {
        let mut slot = lock_unpoisoned(&self.slot);
        *slot = (epoch, snapshot);
        drop(slot);
        self.epoch.store(epoch, Ordering::Release);
    }
}

#[derive(Default)]
struct WorkerLog {
    jobs: u64,
    requests: u64,
    batches: u64,
    evaluated: u64,
    coalesced: u64,
    cache_hits: u64,
    cache_misses: u64,
    busy: Duration,
    batch: BatchStats,
    hist: LatencyHistogram,
    scratch: ScratchStats,
}

#[derive(Default)]
struct WriterLog {
    updates: u64,
    publications: u64,
    busy: Duration,
}

struct Shared {
    queue: BoundedQueue<QueryJob>,
    published: Published,
    /// `connected` calls the reachability index answered directly.
    reach_fast_path: AtomicU64,
    /// The per-epoch answer cache, shared by every worker; `None` when
    /// disabled by [`ServeConfig::answer_cache`].
    cache: Option<AnswerCache>,
    worker_logs: Vec<Mutex<WorkerLog>>,
    writer_log: Mutex<WriterLog>,
    batch_max: usize,
    retry_after: Duration,
    /// See [`ServeConfig::deadline`].
    deadline: Option<Duration>,
    /// See [`ServeConfig::max_admission_retries`].
    max_admission_retries: u32,
    /// Armed fault-injection plan (`None` in production).
    fault: Option<Arc<FaultPlan>>,
    /// The durable store (when durability is on). Logically owned by the
    /// writer thread — the mutex exists so the supervisor can reach it
    /// across a writer respawn; it is never contended.
    store: Option<Mutex<DurableStore>>,
    /// The LSN through which the *published* state incorporates the
    /// durable log. A respawned writer redoes the WAL suffix beyond this
    /// so the live state reconverges with what [`ds_durability::recover`]
    /// would rebuild.
    published_lsn: AtomicU64,
    /// Records appended to the WAL.
    wal_records: AtomicU64,
    /// WAL group commits (one fsync each).
    wal_commits: AtomicU64,
    /// Failed WAL appends/syncs and failed checkpoint writes.
    wal_failures: AtomicU64,
    /// Checkpoints durably written.
    checkpoints: AtomicU64,
    /// Workers respawned after a panic.
    worker_restarts: AtomicU64,
    /// Writers respawned after a panic (working copy rebuilt from the
    /// last published snapshot).
    writer_restarts: AtomicU64,
    /// Jobs shed past their deadline.
    deadline_shed: AtomicU64,
    /// Requests abandoned mid-evaluation at a deadline check inside the
    /// chain loop.
    deadline_cancelled: AtomicU64,
    /// Set when the writer is *permanently* down: read-only degraded
    /// mode. A writer panic respawns and never sets this; only an
    /// injected non-unwind failure (`FaultAction::Fail`) does.
    degraded: AtomicBool,
    /// Armed observability plus pre-created metric handles (`None` =
    /// disarmed: every hook is one `Option` branch).
    obs: Option<ObsHandles>,
    started: Instant,
}

/// The armed observability bundle with its metric handles created once
/// at server start, so the hot path pays one relaxed atomic op per
/// event and never touches the registry lock.
struct ObsHandles {
    obs: Arc<Observability>,
    requests: Counter,
    jobs: Counter,
    batches: Counter,
    evaluated: Counter,
    coalesced: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    reach_fast_path: Counter,
    queue_rejections: Counter,
    deadline_shed: Counter,
    worker_restarts: Counter,
    writer_restarts: Counter,
    updates: Counter,
    publications: Counter,
    deadline_cancelled: Counter,
    wal_records: Counter,
    wal_commits: Counter,
    wal_failures: Counter,
    checkpoints: Counter,
    epoch: Gauge,
    queue_depth: Gauge,
}

impl ObsHandles {
    fn new(obs: Arc<Observability>) -> Self {
        let r = obs.registry();
        ObsHandles {
            requests: r.counter("serve_requests"),
            jobs: r.counter("serve_jobs"),
            batches: r.counter("serve_batches"),
            evaluated: r.counter("serve_evaluated"),
            coalesced: r.counter("serve_coalesced"),
            cache_hits: r.counter("serve_cache_hits"),
            cache_misses: r.counter("serve_cache_misses"),
            reach_fast_path: r.counter("serve_reach_fast_path"),
            queue_rejections: r.counter("serve_queue_rejections"),
            deadline_shed: r.counter("serve_deadline_shed"),
            worker_restarts: r.counter("serve_worker_restarts"),
            writer_restarts: r.counter("serve_writer_restarts"),
            updates: r.counter("serve_updates"),
            publications: r.counter("serve_publications"),
            deadline_cancelled: r.counter("serve_deadline_cancelled"),
            wal_records: r.counter("serve_wal_records"),
            wal_commits: r.counter("serve_wal_commits"),
            wal_failures: r.counter("serve_wal_failures"),
            checkpoints: r.counter("serve_checkpoints"),
            epoch: r.gauge("serve_epoch"),
            queue_depth: r.gauge("serve_queue_depth"),
            obs,
        }
    }
}

/// A running query-serving subsystem over one engine snapshot lineage.
///
/// `Server` is `Sync`: share it by reference (or `Arc`) across any
/// number of client threads. Reads go to the worker pool through the
/// bounded queue; updates go to the single writer thread, which applies
/// the incremental maintenance of `ds_closure::updates` to a private
/// copy and atomically publishes the successor snapshot under a bumped
/// epoch. In-flight queries finish on the epoch they started with —
/// every answer is consistent with *some* published version, reported in
/// [`ServedBatch::epoch`].
pub struct Server {
    shared: Arc<Shared>,
    write_tx: Mutex<Option<mpsc::Sender<WriteJob>>>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn the worker pool and writer thread over `snapshot`.
    ///
    /// With [`ServeConfig::durability`] set, this attaches (or creates)
    /// the durable store first and **panics** if that fails — use
    /// [`Server::try_start_at`] to handle the error. A fresh directory
    /// gets an initial checkpoint of `snapshot`; an existing one must be
    /// the directory `snapshot` was recovered from
    /// ([`ds_durability::recover`] / `System::open` produce exactly
    /// that), in which case prefer [`Server::try_start_at`] with the
    /// recovered epoch.
    pub fn start(snapshot: EngineSnapshot, config: ServeConfig) -> Server {
        match Server::try_start_at(snapshot, 0, config) {
            Ok(server) => server,
            Err(e) => panic!("durable store init failed: {e}"),
        }
    }

    /// [`Server::start`] resuming at a given published epoch (the one
    /// [`ds_durability::Recovered::epoch`] reports), with durable-store
    /// attachment failures surfaced instead of panicking.
    pub fn try_start_at(
        snapshot: EngineSnapshot,
        epoch: u64,
        config: ServeConfig,
    ) -> Result<Server, DurabilityError> {
        let store = match &config.durability {
            Some(cfg) => {
                let store =
                    DurableStore::attach(cfg.clone(), &snapshot, epoch, config.fault.clone())?;
                Some(store)
            }
            None => None,
        };
        let initial_lsn = store.as_ref().map_or(0, DurableStore::last_lsn);
        let workers = config.workers.max(1);
        let initial = Arc::new(snapshot);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity.max(workers)),
            published: Published::new(epoch, initial),
            reach_fast_path: AtomicU64::new(0),
            cache: config
                .answer_cache
                .then(|| AnswerCache::new(config.answer_cache_entries)),
            worker_logs: (0..workers)
                .map(|_| Mutex::new(WorkerLog::default()))
                .collect(),
            writer_log: Mutex::new(WriterLog::default()),
            batch_max: config.batch_max.max(1),
            retry_after: config.retry_after,
            deadline: config.deadline,
            max_admission_retries: config.max_admission_retries,
            fault: config.fault.clone(),
            store: store.map(Mutex::new),
            published_lsn: AtomicU64::new(initial_lsn),
            wal_records: AtomicU64::new(0),
            wal_commits: AtomicU64::new(0),
            wal_failures: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            writer_restarts: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            deadline_cancelled: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            obs: config.obs.clone().map(ObsHandles::new),
            started: Instant::now(),
        });
        let mut handles = Vec::with_capacity(workers + 1);
        for id in 0..workers {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || supervised_worker(&shared, id)));
        }
        let (write_tx, write_rx) = mpsc::channel::<WriteJob>();
        {
            let shared = Arc::clone(&shared);
            let max = config.write_batch_max.max(1);
            handles.push(std::thread::spawn(move || {
                // Writer supervisor: a panicking writer loses only its
                // private working copy, so the respawn rebuilds one from
                // the last *published* snapshot and re-enters the loop on
                // the same write channel — updates keep flowing. The
                // in-flight updates of the doomed batch resolve through
                // their dropped reply senders as `WriterRestarted` (not
                // applied — retry; see `Server::update`). Only a clean
                // return leaves the loop: shutdown (channel closed) or an
                // injected non-unwind failure (`FaultAction::Fail`),
                // which flips permanent read-only degraded mode first.
                loop {
                    // With durability on, the log may hold records the
                    // doomed writer appended but never published (it
                    // died between append and publish). Redo that
                    // suffix first so the live state reconverges with
                    // what `recover` would rebuild from disk. On first
                    // entry the suffix is empty (attach == recovered).
                    redo_wal_suffix(&shared);
                    let working = (*shared.published.current().1).clone();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        writer_loop(&shared, working, &write_rx, max)
                    }));
                    match outcome {
                        Ok(()) => return,
                        Err(_) => {
                            shared.writer_restarts.fetch_add(1, Ordering::SeqCst);
                            if let Some(h) = &shared.obs {
                                h.writer_restarts.inc();
                            }
                        }
                    }
                }
            }));
        }
        Ok(Server {
            shared,
            write_tx: Mutex::new(Some(write_tx)),
            handles,
        })
    }

    /// Answer one shortest-path request (blocking).
    pub fn query(&self, x: NodeId, y: NodeId) -> Result<ServedAnswer, ServeError> {
        let mut batch = self.query_batch(&[QueryRequest::new(x, y)])?;
        match batch.answers.pop() {
            Some(answer) => Ok(ServedAnswer {
                answer,
                epoch: batch.epoch,
            }),
            None => Err(ServeError::Request(ClosureError::WorkerFailed)),
        }
    }

    /// Connection query — "is `x` connected to `y`?".
    ///
    /// Answered on the calling thread from the published snapshot's
    /// SCC/chain reachability index when it is fresh — no queue slot, no
    /// worker dispatch, no Dijkstra sweep, and never a cached
    /// shortest-path answer (the fast path does not touch the answer
    /// cache at all). Falls back to a full shortest-path query through
    /// the pool when the index is disabled or stale.
    pub fn connected(&self, x: NodeId, y: NodeId) -> Result<bool, ServeError> {
        if x == y {
            return Ok(true);
        }
        let (epoch, snap) = self.shared.published.current();
        if let Some(reach) = snap.reach_index() {
            if x.index() < reach.node_count() && y.index() < reach.node_count() {
                self.shared.reach_fast_path.fetch_add(1, Ordering::Relaxed);
                let connected = reach.reaches(x, y);
                if let Some(h) = &self.shared.obs {
                    h.reach_fast_path.inc();
                    let tracer = h.obs.tracer();
                    let trace = tracer.mint();
                    let now = tracer.now_ns();
                    h.obs.record_request(RequestTrace {
                        trace,
                        source: x.index() as u64,
                        target: y.index() as u64,
                        epoch,
                        total_ns: 0,
                        outcome: if connected {
                            TraceOutcome::Answered
                        } else {
                            TraceOutcome::Unreachable
                        },
                        spans: vec![SpanRecord {
                            trace,
                            stage: Stage::ReachIndex,
                            start_ns: now,
                            dur_ns: 0,
                        }],
                    });
                    let w = h.obs.workload();
                    if w.should_sample() {
                        w.record_vertex_pair(x.index() as u64, y.index() as u64);
                    }
                }
                return Ok(connected);
            }
        }
        Ok(self.query(x, y)?.answer.cost.is_some())
    }

    /// Admit a batch of requests as one job without blocking: `Ok` hands
    /// back a [`PendingBatch`] to wait on, `Err` means the submission
    /// queue is at capacity and the job was **shed** — nothing was
    /// enqueued; retry after the hinted back-off. All answers of one job
    /// come from the same snapshot epoch.
    pub fn submit(&self, requests: &[QueryRequest]) -> Result<PendingBatch, Overloaded> {
        let (tx, rx) = mpsc::channel();
        if requests.is_empty() {
            // Nothing to evaluate: answer inline instead of spending a
            // queue slot (and never shed a job that carries no work).
            let _ = tx.send(Ok(ServedBatch {
                answers: Vec::new(),
                epoch: self.epoch(),
            }));
            return Ok(PendingBatch { rx });
        }
        let traces: Vec<TraceId> = match &self.shared.obs {
            Some(h) => requests.iter().map(|_| h.obs.tracer().mint()).collect(),
            None => Vec::new(),
        };
        let job = QueryJob {
            requests: requests.to_vec(),
            traces,
            reply: tx,
            submitted: Instant::now(),
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(PendingBatch { rx }),
            Err(PushError::Full(job)) => {
                if let Some(h) = &self.shared.obs {
                    h.queue_rejections.inc();
                    // Shed admissions still close their traces (outcome
                    // only — nothing ran, so there are no spans and no
                    // latency sample).
                    let epoch = self.epoch();
                    for (r, &trace) in job.requests.iter().zip(&job.traces) {
                        h.obs.tracer().finish(RequestTrace {
                            trace,
                            source: r.source.index() as u64,
                            target: r.target.index() as u64,
                            epoch,
                            total_ns: 0,
                            outcome: TraceOutcome::Shed,
                            spans: Vec::new(),
                        });
                    }
                }
                Err(Overloaded {
                    retry_after: self.shared.retry_after,
                })
            }
            Err(PushError::Closed(job)) => {
                // Only reachable during shutdown (which requires owning
                // the server, so no client can still hold `&self` —
                // except through a leaked Arc). Resolve instead of hang.
                let _ = job.reply.send(Err(ClosureError::WorkerFailed));
                Ok(PendingBatch { rx })
            }
        }
    }

    /// [`Server::query_batch`] that sheds instead of backing off: at
    /// capacity, returns [`ServeError::Overloaded`] immediately.
    pub fn try_query_batch(&self, requests: &[QueryRequest]) -> Result<ServedBatch, ServeError> {
        let pending = self.submit(requests).map_err(|o| ServeError::Overloaded {
            retry_after: o.retry_after,
            attempts: 1,
        })?;
        pending.wait().map_err(ServeError::Request)
    }

    /// Answer a batch of requests as one job (blocking convenience): a
    /// shed submission is retried with bounded decorrelated-jitter
    /// back-off (see [`Backoff`]; base [`ServeConfig::retry_after`],
    /// capped at 64x) up to [`ServeConfig::max_admission_retries`]
    /// times — each rejected attempt still counts in
    /// [`ServeStats::queue_rejections`]. All answers come from the same
    /// snapshot epoch.
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Result<ServedBatch, ServeError> {
        let base = self.shared.retry_after.max(Duration::from_micros(10));
        let mut backoff = Backoff::new(base, base * 64, next_backoff_seed());
        let mut attempts = 0u32;
        loop {
            match self.submit(requests) {
                Ok(pending) => return pending.wait().map_err(ServeError::Request),
                Err(Overloaded { retry_after }) => {
                    attempts += 1;
                    if attempts > self.shared.max_admission_retries {
                        return Err(ServeError::Overloaded {
                            retry_after,
                            attempts,
                        });
                    }
                    std::thread::sleep(backoff.next_delay());
                }
            }
        }
    }

    /// Apply a network update (blocking until its effect is published).
    /// Readers never wait on this: they keep answering from the previous
    /// epoch until the successor snapshot is swapped in.
    ///
    /// A writer *panic* is survivable: the supervisor respawns the
    /// writer with a working copy rebuilt from the last published
    /// snapshot, the in-flight updates of the doomed batch resolve to
    /// [`ClosureError::WriterRestarted`] (not applied — retry this
    /// call), and later updates apply normally
    /// ([`ServeStats::writer_restarts`] counts the respawns). Only a
    /// *permanent* writer death (an injected non-unwind failure, or
    /// shutdown) leaves the server read-only
    /// ([`ServeStats::degraded`]): from then on every update — queued,
    /// in-flight, or future — resolves to
    /// [`ClosureError::WriterDown`]; reads keep serving the last
    /// published epoch.
    pub fn update(&self, update: &NetworkUpdate) -> Result<ServedUpdate, ClosureError> {
        if self.shared.degraded.load(Ordering::SeqCst) {
            return Err(ClosureError::WriterDown);
        }
        let tx = match lock_unpoisoned(&self.write_tx).clone() {
            Some(tx) => tx,
            // Shutdown already took the writer handle.
            None => return Err(ClosureError::WriterDown),
        };
        let (reply, rx) = mpsc::channel();
        if tx
            .send(WriteJob {
                update: *update,
                reply,
            })
            .is_err()
        {
            return Err(ClosureError::WriterDown);
        }
        // A dead writer drops every queued job's reply sender — recv()
        // then errors instead of hanging. Which error depends on what
        // killed it: a panic was respawned by the supervisor (this
        // update was NOT applied — the typed error says retry), while a
        // permanent death already flipped degraded mode.
        match rx.recv() {
            Ok(outcome) => outcome,
            Err(mpsc::RecvError) => {
                // The update died with the writer; leave a Failed trace
                // so the loss is visible in the ring, not just the
                // caller's error.
                if let Some(h) = &self.shared.obs {
                    let tracer = h.obs.tracer();
                    tracer.finish(RequestTrace {
                        trace: tracer.mint(),
                        source: 0,
                        target: 0,
                        epoch: self.shared.published.epoch.load(Ordering::Acquire),
                        total_ns: 0,
                        outcome: TraceOutcome::Failed,
                        spans: Vec::new(),
                    });
                }
                if self.shared.degraded.load(Ordering::SeqCst) {
                    Err(ClosureError::WriterDown)
                } else {
                    Err(ClosureError::WriterRestarted)
                }
            }
        }
    }

    /// The currently published epoch (= updates applied since start).
    pub fn epoch(&self) -> u64 {
        self.shared.published.epoch.load(Ordering::Acquire)
    }

    /// The currently published snapshot (readers may already be on a
    /// newer one by the time you look at it).
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.shared.published.current().1
    }

    /// Aggregate serving statistics up to now.
    pub fn stats(&self) -> ServeStats {
        let (epoch, snap) = self.shared.published.current();
        let mut stats = ServeStats {
            workers: self.shared.worker_logs.len(),
            epoch,
            updates: 0,
            publications: 0,
            jobs: 0,
            requests: 0,
            batches: 0,
            evaluated: 0,
            coalesced: 0,
            cache_hits: 0,
            cache_misses: 0,
            reach_fast_path: self.shared.reach_fast_path.load(Ordering::Relaxed),
            reach_index_fresh: snap.reach_index().is_some(),
            batch: BatchStats::default(),
            queue_depth: self.shared.queue.depth(),
            queue_high_water: self.shared.queue.high_water(),
            queue_capacity: self.shared.queue.capacity(),
            queue_rejections: self.shared.queue.rejections(),
            elapsed: self.shared.started.elapsed(),
            busy: Vec::with_capacity(self.shared.worker_logs.len()),
            writer_busy: Duration::ZERO,
            scratch: ScratchStats::default(),
            latency: LatencySummary::default(),
            backend: snap.source_backend(),
            strategy: snap.precompute_stats().strategy,
            worker_restarts: self.shared.worker_restarts.load(Ordering::SeqCst),
            writer_restarts: self.shared.writer_restarts.load(Ordering::SeqCst),
            deadline_shed: self.shared.deadline_shed.load(Ordering::SeqCst),
            deadline_cancelled: self.shared.deadline_cancelled.load(Ordering::SeqCst),
            wal_records: self.shared.wal_records.load(Ordering::SeqCst),
            wal_commits: self.shared.wal_commits.load(Ordering::SeqCst),
            wal_failures: self.shared.wal_failures.load(Ordering::SeqCst),
            checkpoints: self.shared.checkpoints.load(Ordering::SeqCst),
            degraded: self.shared.degraded.load(Ordering::SeqCst),
        };
        let mut hist = LatencyHistogram::new();
        for log in &self.shared.worker_logs {
            let log = lock_unpoisoned(log);
            stats.jobs += log.jobs;
            stats.requests += log.requests;
            stats.batches += log.batches;
            stats.evaluated += log.evaluated;
            stats.coalesced += log.coalesced;
            stats.cache_hits += log.cache_hits;
            stats.cache_misses += log.cache_misses;
            stats.busy.push(log.busy);
            stats.scratch.merge(log.scratch);
            add_batch_stats(&mut stats.batch, &log.batch);
            hist.merge(&log.hist);
        }
        {
            let w = lock_unpoisoned(&self.shared.writer_log);
            stats.updates = w.updates;
            stats.publications = w.publications;
            stats.writer_busy = w.busy;
        }
        stats.latency = LatencySummary {
            count: hist.count(),
            mean_us: hist.mean_ns() / 1e3,
            p50_us: hist.quantile_ns(0.5) as f64 / 1e3,
            p99_us: hist.quantile_ns(0.99) as f64 / 1e3,
            max_us: hist.max_ns() as f64 / 1e3,
        };
        stats
    }

    /// Stop accepting work, drain the queue, join every thread and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.finish();
        let stats = self.stats();
        // Drop runs afterwards; finish() is idempotent.
        stats
    }

    /// Test hook: freeze the worker pool (consumers treat the queue as
    /// empty) so tests can fill the submission queue deterministically.
    #[cfg(test)]
    pub(crate) fn pause_workers(&self) {
        self.shared.queue.pause();
    }

    /// Test hook: release a paused worker pool.
    #[cfg(test)]
    pub(crate) fn unpause_workers(&self) {
        self.shared.queue.unpause();
    }

    fn finish(&mut self) {
        self.shared.queue.close();
        *lock_unpoisoned(&self.write_tx) = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.shared.worker_logs.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// `Server` is shared by reference across client threads; keep that a
/// compile-time guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<Shared>();
};

fn add_batch_stats(into: &mut BatchStats, from: &BatchStats) {
    into.queries += from.queries;
    into.plans_computed += from.plans_computed;
    into.plans_reused += from.plans_reused;
    into.segments_computed += from.segments_computed;
    into.segments_reused += from.segments_reused;
}

/// The supervisor wrapping one reader worker: respawn the worker body
/// after any panic that escapes the per-batch isolation inside, so the
/// pool never shrinks. In-flight jobs of the doomed batch resolve
/// through their dropped reply senders ([`PendingBatch::wait`] maps
/// that to [`ClosureError::WorkerFailed`]); the respawn gets fresh
/// scratch state and counts in [`ServeStats::worker_restarts`].
fn supervised_worker(shared: &Shared, id: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, id))) {
            Ok(()) => return, // queue closed and drained: clean exit
            Err(_) => {
                shared.worker_restarts.fetch_add(1, Ordering::SeqCst);
                if let Some(h) = &shared.obs {
                    h.worker_restarts.inc();
                }
            }
        }
    }
}

/// One reader worker: drain a micro-batch of jobs, shed the ones queued
/// past their deadline, then evaluate the rest under `catch_unwind` so
/// a panicking batch resolves every in-flight request with a typed
/// [`ClosureError::WorkerFailed`] (never a hang) and the worker lives
/// on with reset state — the in-place equivalent of a respawn, counted
/// in [`ServeStats::worker_restarts`].
fn worker_loop(shared: &Shared, id: usize) {
    let mut scratch = ScratchDijkstra::new();
    let mut cached: Option<(u64, Arc<EngineSnapshot>)> = None;
    loop {
        let jobs = match shared.queue.try_pop_batch(shared.batch_max) {
            Some(jobs) => jobs,
            None => {
                // About to block idle: release the pinned snapshot so a
                // publication arriving now is not kept alive by
                // sleeping workers — only in-flight evaluation pins an
                // epoch.
                cached = None;
                let jobs = shared.queue.pop_batch(shared.batch_max);
                if jobs.is_empty() {
                    break; // closed and drained
                }
                jobs
            }
        };
        // Deadline shedding: a job that already waited past its
        // deadline gets a typed refusal instead of stale evaluation.
        let jobs = match shared.deadline {
            None => jobs,
            Some(deadline) => {
                let mut live = Vec::with_capacity(jobs.len());
                for job in jobs {
                    let waited = job.submitted.elapsed();
                    if waited > deadline {
                        shared.deadline_shed.fetch_add(1, Ordering::SeqCst);
                        if let Some(h) = &shared.obs {
                            h.deadline_shed.inc();
                            close_failed_traces(h, &job, Some(waited));
                        }
                        let _ = job
                            .reply
                            .send(Err(ClosureError::DeadlineExceeded { waited }));
                    } else {
                        live.push(job);
                    }
                }
                live
            }
        };
        if jobs.is_empty() {
            continue;
        }
        // Panic isolation: the fault hook and the evaluation run under
        // catch_unwind with the jobs held outside, so the doomed batch
        // can still be resolved. `Ok(true)` is an injected non-unwind
        // failure (FaultAction::Fail); `Err` is a real panic.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut injected = false;
            for _ in &jobs {
                injected |= ds_fault::fire(&shared.fault, FaultPoint::ServeWorker { worker: id });
            }
            if !injected {
                process_batch(shared, id, &jobs, &mut scratch, &mut cached);
            }
            injected
        }));
        match outcome {
            Ok(false) => {}
            failed => {
                for job in &jobs {
                    if let Some(h) = &shared.obs {
                        close_failed_traces(h, job, None);
                    }
                    let _ = job.reply.send(Err(ClosureError::WorkerFailed));
                }
                // Reset state exactly as a thread respawn would.
                scratch = ScratchDijkstra::new();
                cached = None;
                if failed.is_err() {
                    shared.worker_restarts.fetch_add(1, Ordering::SeqCst);
                    if let Some(h) = &shared.obs {
                        h.worker_restarts.inc();
                    }
                }
            }
        }
    }
}

/// Close every trace of a job that resolved to a typed failure instead
/// of an answer (deadline shed when `waited` is given, worker panic
/// otherwise). Outcome-only: failed requests leave no latency sample.
fn close_failed_traces(h: &ObsHandles, job: &QueryJob, waited: Option<Duration>) {
    let tracer = h.obs.tracer();
    for (r, &trace) in job.requests.iter().zip(&job.traces) {
        let wait_ns = waited.map_or(0, |w| w.as_nanos() as u64);
        let spans = match waited {
            Some(_) => vec![SpanRecord {
                trace,
                stage: Stage::QueueWait,
                start_ns: tracer.now_ns().saturating_sub(wait_ns),
                dur_ns: wait_ns,
            }],
            None => Vec::new(),
        };
        tracer.finish(RequestTrace {
            trace,
            source: r.source.index() as u64,
            target: r.target.index() as u64,
            epoch: 0,
            total_ns: wait_ns,
            outcome: TraceOutcome::Failed,
            spans,
        });
    }
}

/// The isolated per-batch evaluation: pin a snapshot epoch, coalesce
/// identical requests, group the distinct ones by fragment pair,
/// evaluate through the shared batch kernel, fan the answers back out
/// per job.
fn process_batch(
    shared: &Shared,
    id: usize,
    jobs: &[QueryJob],
    scratch: &mut ScratchDijkstra,
    cached: &mut Option<(u64, Arc<EngineSnapshot>)>,
) {
    let t0 = Instant::now();
    let obs = shared.obs.as_ref();
    // Tracing context: the batch start on the tracer clock, and each
    // job's queue wait (admission → drain) — the QueueWait span.
    let batch_start_ns = obs.map_or(0, |h| h.obs.tracer().now_ns());
    let waits: Vec<u64> = match obs {
        Some(_) => jobs
            .iter()
            .map(|j| j.submitted.elapsed().as_nanos() as u64)
            .collect(),
        None => Vec::new(),
    };
    let (epoch, snap) = {
        let pair = shared.published.pin(cached);
        (pair.0, &pair.1)
    };

    // Coalesce: identical (source, target) pairs across the whole
    // micro-batch are evaluated once (single-flight). The first
    // occurrence's trace id becomes the slot's *primary* trace — the
    // one the evaluation spans are attributed to; later occurrences
    // get a `Coalesced` marker span.
    let mut distinct: Vec<QueryRequest> = Vec::new();
    let mut distinct_traces: Vec<TraceId> = Vec::new();
    // Per distinct slot, the *latest* admission time among the jobs
    // sharing it (tracked only when a deadline is configured): the
    // in-evaluation deadline check keeps evaluating while any
    // interested job is still within its deadline.
    let mut slot_submitted: Vec<Instant> = Vec::new();
    let mut index: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    let mut slots: Vec<Vec<u32>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut js = Vec::with_capacity(job.requests.len());
        for (ri, r) in job.requests.iter().enumerate() {
            let slot = match index.get(&(r.source, r.target)) {
                Some(&slot) => {
                    if shared.deadline.is_some() {
                        let s = &mut slot_submitted[slot as usize];
                        *s = (*s).max(job.submitted);
                    }
                    slot
                }
                None => {
                    let slot = distinct.len() as u32;
                    index.insert((r.source, r.target), slot);
                    distinct.push(*r);
                    distinct_traces.push(job.traces.get(ri).copied().unwrap_or(TraceId::NONE));
                    if shared.deadline.is_some() {
                        slot_submitted.push(job.submitted);
                    }
                    slot
                }
            };
            js.push(slot);
        }
        slots.push(js);
    }
    let total_requests: usize = slots.iter().map(Vec::len).sum();
    let coalesced = (total_requests - distinct.len()) as u64;

    // Probe the per-epoch answer cache: a distinct request already
    // answered at this epoch (by any worker, in any earlier
    // micro-batch) skips evaluation entirely. The cache key includes
    // the pinned epoch, so a hit is exactly as consistent as an
    // evaluated answer.
    let mut answers_by_slot: Vec<Option<QueryAnswer>> = vec![None; distinct.len()];
    let mut miss: Vec<u32> = Vec::with_capacity(distinct.len());
    let mut cache_hits = 0u64;
    if let Some(cache) = &shared.cache {
        for (i, r) in distinct.iter().enumerate() {
            match cache.get(epoch, (r.source, r.target)) {
                Some(a) => {
                    answers_by_slot[i] = Some(a);
                    cache_hits += 1;
                }
                None => miss.push(i as u32),
            }
        }
    } else {
        miss.extend(0..distinct.len() as u32);
    }
    let cache_misses = if shared.cache.is_some() {
        miss.len() as u64
    } else {
        0
    };
    // Which slots the cache answered (set before evaluation fills the
    // rest) — those requests get a `CacheHit` span.
    let cached_slots: Vec<bool> = match obs {
        Some(_) => answers_by_slot.iter().map(Option::is_some).collect(),
        None => Vec::new(),
    };

    // Group the remaining misses by fragment pair. The sharing itself
    // is order-independent (the batch kernel caches chain plans per
    // fragment pair and interior segments per chain for the whole
    // call); the sort makes same-pair queries evaluate back-to-back
    // while their interior relations are CPU-cache-hot, and makes a
    // batch's evaluation order independent of client arrival
    // interleaving.
    let planner = snap.planner();
    // Workload recorder: sampled per *request* (not per distinct slot —
    // hot duplicates are exactly the signal), one vertex pair and one
    // fragment pair each. `should_sample` is a single relaxed
    // fetch_add.
    if let Some(h) = obs {
        let w = h.obs.workload();
        for job in jobs {
            for r in &job.requests {
                if w.should_sample() {
                    w.record_vertex_pair(r.source.index() as u64, r.target.index() as u64);
                    let fs = planner.fragments_of(r.source);
                    let ft = planner.fragments_of(r.target);
                    if let (Some(&a), Some(&b)) = (fs.first(), ft.first()) {
                        w.record_fragment_pair(a as u64, b as u64);
                    }
                }
            }
        }
    }
    let keys: Vec<(Vec<FragmentId>, Vec<FragmentId>)> = miss
        .iter()
        .map(|&i| {
            let r = &distinct[i as usize];
            (
                planner.fragments_of(r.source),
                planner.fragments_of(r.target),
            )
        })
        .collect();
    let mut order: Vec<u32> = (0..miss.len() as u32).collect();
    order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
    let sorted: Vec<QueryRequest> = order
        .iter()
        .map(|&k| distinct[miss[k as usize] as usize])
        .collect();

    // `eval_traces[j]` carries the per-chain timing of `sorted[j]`;
    // `slot_eval` maps a distinct slot back to that index.
    let mut eval_traces: Vec<EvalTrace> = Vec::new();
    let mut slot_eval: Vec<Option<u32>> = match obs {
        Some(_) => vec![None; distinct.len()],
        None => Vec::new(),
    };
    let batch_stats = if sorted.is_empty() {
        BatchStats::default()
    } else {
        // Each sorted request carries its slot's absolute deadline so
        // the batch kernel can abandon a pathological evaluation at
        // the next chain boundary (cooperative cancellation).
        let sorted_deadlines: Vec<Option<Instant>> = match shared.deadline {
            None => Vec::new(),
            Some(d) => order
                .iter()
                .map(|&k| Some(slot_submitted[miss[k as usize] as usize] + d))
                .collect(),
        };
        let batch = match obs {
            Some(_) => {
                let sorted_traces: Vec<TraceId> = order
                    .iter()
                    .map(|&k| distinct_traces[miss[k as usize] as usize])
                    .collect();
                snap.query_batch_bounded(
                    &sorted,
                    scratch,
                    &sorted_traces,
                    Some(&mut eval_traces),
                    &sorted_deadlines,
                )
            }
            None => snap.query_batch_bounded(&sorted, scratch, &[], None, &sorted_deadlines),
        };
        for (j, (&k, a)) in order.iter().zip(batch.answers).enumerate() {
            let slot = miss[k as usize] as usize;
            if obs.is_some() {
                slot_eval[slot] = Some(j as u32);
            }
            // A `None` answer is a request cancelled mid-evaluation at
            // its deadline: leave the slot unanswered (the fan-out
            // resolves it with `DeadlineExceeded`) and cache nothing.
            if let Some(a) = a {
                if let Some(cache) = &shared.cache {
                    let r = &distinct[slot];
                    cache.insert(epoch, (r.source, r.target), a.clone());
                }
                answers_by_slot[slot] = Some(a);
            }
        }
        batch.stats
    };
    let busy = t0.elapsed();

    // Log before fanning out: a blocking client that reads `stats()`
    // right after its reply must already see this batch accounted for.
    // Latency is submit → reply (well, the instant before the send),
    // recorded per request so percentiles weight by traffic.
    {
        let mut log = lock_unpoisoned(&shared.worker_logs[id]);
        log.jobs += jobs.len() as u64;
        log.requests += total_requests as u64;
        log.batches += 1;
        log.evaluated += sorted.len() as u64;
        log.coalesced += coalesced;
        log.cache_hits += cache_hits;
        log.cache_misses += cache_misses;
        log.busy += busy;
        add_batch_stats(&mut log.batch, &batch_stats);
        for (job, js) in jobs.iter().zip(&slots) {
            let ns = job.submitted.elapsed().as_nanos() as u64;
            for _ in 0..js.len() {
                log.hist.record(ns);
            }
        }
        log.scratch = scratch.stats();
    }

    // Registry mirror + per-request trace assembly (armed only; the
    // whole block is one `Option` branch when disarmed). Runs before
    // the fan-out for the same reason the log does: a client that
    // inspects the trace ring right after its reply sees its own trace.
    if let Some(h) = obs {
        h.jobs.add(jobs.len() as u64);
        h.requests.add(total_requests as u64);
        h.batches.inc();
        h.evaluated.add(sorted.len() as u64);
        h.coalesced.add(coalesced);
        h.cache_hits.add(cache_hits);
        h.cache_misses.add(cache_misses);
        h.queue_depth.set(shared.queue.depth() as u64);
        for (ji, (job, js)) in jobs.iter().zip(&slots).enumerate() {
            for (ri, &slot) in js.iter().enumerate() {
                let slot = slot as usize;
                let trace = job.traces.get(ri).copied().unwrap_or(TraceId::NONE);
                let r = &job.requests[ri];
                let wait_ns = waits[ji];
                let mut spans = vec![SpanRecord {
                    trace,
                    stage: Stage::QueueWait,
                    start_ns: batch_start_ns.saturating_sub(wait_ns),
                    dur_ns: wait_ns,
                }];
                if cached_slots[slot] {
                    spans.push(SpanRecord {
                        trace,
                        stage: Stage::CacheHit,
                        start_ns: batch_start_ns,
                        dur_ns: 0,
                    });
                } else if distinct_traces[slot] == trace {
                    // The slot's primary request carries the evaluation
                    // and per-chain segment spans.
                    if let Some(j) = slot_eval[slot] {
                        let et = &eval_traces[j as usize];
                        spans.push(SpanRecord {
                            trace,
                            stage: Stage::Evaluation,
                            start_ns: batch_start_ns,
                            dur_ns: et.eval_ns,
                        });
                        for c in &et.chains {
                            spans.push(SpanRecord {
                                trace,
                                stage: Stage::ChainSegment { chain: c.chain },
                                start_ns: batch_start_ns,
                                dur_ns: c.ns,
                            });
                        }
                    }
                } else {
                    spans.push(SpanRecord {
                        trace,
                        stage: Stage::Coalesced,
                        start_ns: batch_start_ns,
                        dur_ns: 0,
                    });
                }
                h.obs.record_request(RequestTrace {
                    trace,
                    source: r.source.index() as u64,
                    target: r.target.index() as u64,
                    epoch,
                    total_ns: job.submitted.elapsed().as_nanos() as u64,
                    outcome: match &answers_by_slot[slot] {
                        Some(a) if a.cost.is_some() => TraceOutcome::Answered,
                        Some(_) => TraceOutcome::Unreachable,
                        // Cancelled mid-evaluation at the deadline.
                        None => TraceOutcome::Shed,
                    },
                    spans,
                });
            }
        }
    }

    for (job, js) in jobs.iter().zip(&slots) {
        // A job touching any slot cancelled mid-evaluation resolves
        // with `DeadlineExceeded` — distinct from the queue-time shed
        // in `worker_loop`, and counted separately
        // ([`ServeStats::deadline_cancelled`]).
        if js
            .iter()
            .any(|&slot| answers_by_slot[slot as usize].is_none())
        {
            let waited = job.submitted.elapsed();
            shared.deadline_cancelled.fetch_add(1, Ordering::SeqCst);
            if let Some(h) = obs {
                h.deadline_cancelled.inc();
            }
            let _ = job
                .reply
                .send(Err(ClosureError::DeadlineExceeded { waited }));
            continue;
        }
        let answers: Vec<QueryAnswer> = js
            .iter()
            .map(|&slot| match &answers_by_slot[slot as usize] {
                Some(a) => a.clone(),
                None => unreachable!("cancelled jobs resolved above"),
            })
            .collect();
        let _ = job.reply.send(Ok(ServedBatch { answers, epoch }));
    }
}

/// The single writer: drain pending updates (bounded), apply the shared
/// incremental maintenance to a private working copy, publish the
/// successor snapshot once, acknowledge every updater with the epoch at
/// which its change became visible.
fn writer_loop(
    shared: &Shared,
    mut working: EngineSnapshot,
    rx: &mpsc::Receiver<WriteJob>,
    write_batch_max: usize,
) {
    let mut scratch = ScratchDijkstra::new();
    // Resume from the *published* epoch: on first entry that is 0, and
    // after a supervisor respawn (whose working copy was rebuilt from
    // the published snapshot) it is wherever the last publication left
    // the readers — epochs never repeat or rewind across writer deaths.
    let mut epoch = shared.published.epoch.load(Ordering::Acquire);
    while let Ok(first) = rx.recv() {
        let t0 = Instant::now();
        let mut jobs = vec![first];
        while jobs.len() < write_batch_max {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // Fault hook, one firing per publication attempt: `Panic`
        // unwinds (writer death — the supervisor wrapper in
        // `Server::start` flips degraded mode and every waiter resolves
        // through its dropped reply sender); `Fail` refuses this batch
        // with a typed error and degrades without unwinding.
        if ds_fault::fire(&shared.fault, FaultPoint::ServeWriter) {
            shared.degraded.store(true, Ordering::SeqCst);
            for job in jobs {
                let _ = job.reply.send(Err(ClosureError::WriterDown));
            }
            return;
        }
        // Append-before-apply: the whole folded batch goes to the
        // write-ahead log as one group commit (one buffered write, one
        // fsync) before any update touches the working copy. A refused
        // append — I/O error, torn write, injected disk fault — fails
        // every job of the batch with a typed error and applies nothing:
        // the durable log never lags the acknowledged state. (An
        // injected `Panic` at a disk fault point unwinds here instead —
        // the supervisor respawns the writer and redoes any durable
        // suffix, see `redo_wal_suffix`.)
        let wal_range = match &shared.store {
            Some(store) => {
                let updates: Vec<NetworkUpdate> = jobs.iter().map(|j| j.update).collect();
                let mut store = lock_unpoisoned(store);
                match store.append_batch(epoch, &updates) {
                    Ok(first) => {
                        let n = updates.len() as u64;
                        shared.wal_records.fetch_add(n, Ordering::SeqCst);
                        shared.wal_commits.fetch_add(1, Ordering::SeqCst);
                        if let Some(h) = &shared.obs {
                            h.wal_records.add(n);
                            h.wal_commits.inc();
                        }
                        Some(first + n - 1)
                    }
                    Err(_) => {
                        shared.wal_failures.fetch_add(1, Ordering::SeqCst);
                        if let Some(h) = &shared.obs {
                            h.wal_failures.inc();
                        }
                        for job in jobs {
                            let _ = job.reply.send(Err(ClosureError::DurabilityFailed));
                        }
                        continue;
                    }
                }
            }
            None => None,
        };
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut applied = 0u64;
        for job in jobs {
            match working.maintain(&job.update, &mut scratch) {
                Ok(report) if report.sites_touched == 0 && !report.full_recompute => {
                    // Structural no-op (e.g. removing a connection that
                    // does not exist): nothing changed, so nothing to
                    // publish — answer at the current epoch for free.
                    outcomes.push((job.reply, Ok(report)));
                }
                Ok(report) => {
                    // Validation precedes mutation in the maintenance
                    // path, so the working copy is unchanged on Err and
                    // exact on Ok; every effective Ok advances the epoch.
                    epoch += 1;
                    applied += 1;
                    outcomes.push((job.reply, Ok(report)));
                }
                Err(e) => outcomes.push((job.reply, Err(e))),
            }
        }
        let apply_ns = t0.elapsed().as_nanos() as u64;
        let publish_t = Instant::now();
        if applied > 0 {
            // One reachability-index rebuild per publication, not per
            // update: every update this batch that could have changed
            // reachability dropped the working copy's index; rebuilding
            // here amortizes the linear cost across the whole batch and
            // publishes the epoch with `connected` already sweep-free.
            working.ensure_reach();
            // Copy-on-write publication: readers on the previous Arc
            // finish undisturbed; new micro-batches pick up this epoch.
            // The clone is O(sites) — every component of the working
            // snapshot is Arc-shared, and the maintenance above already
            // detached exactly the sites it touched, so this publication
            // shares everything else with the previous epoch. Publishing
            // also implicitly drops the per-epoch answer cache: entries
            // are keyed by epoch and lazily cleared on first contact
            // with the new one.
            shared.published.publish(epoch, Arc::new(working.clone()));
        }
        if let Some(last) = wal_range {
            // The published state now reflects every logged record up to
            // `last` (no-ops and per-update errors included — replay
            // treats them identically): a respawn redoes nothing before
            // this point.
            shared.published_lsn.store(last, Ordering::SeqCst);
        }
        let busy = t0.elapsed();
        {
            let mut log = lock_unpoisoned(&shared.writer_log);
            log.updates += applied;
            log.publications += (applied > 0) as u64;
            log.busy += busy;
        }
        if let Some(h) = &shared.obs {
            h.updates.add(applied);
            h.publications.add((applied > 0) as u64);
            h.epoch.set(epoch);
            if applied > 0 {
                // One writer trace per publication: maintenance and
                // publication spans land in the trace ring (never in the
                // request latency histogram — that is reads only).
                let tracer = h.obs.tracer();
                let trace = tracer.mint();
                let publish_ns = publish_t.elapsed().as_nanos() as u64;
                let end_ns = tracer.now_ns();
                tracer.finish(RequestTrace {
                    trace,
                    source: 0,
                    target: 0,
                    epoch,
                    total_ns: busy.as_nanos() as u64,
                    outcome: TraceOutcome::Applied,
                    spans: vec![
                        SpanRecord {
                            trace,
                            stage: Stage::WriterApply,
                            start_ns: end_ns.saturating_sub(apply_ns + publish_ns),
                            dur_ns: apply_ns,
                        },
                        SpanRecord {
                            trace,
                            stage: Stage::Publication,
                            start_ns: end_ns.saturating_sub(publish_ns),
                            dur_ns: publish_ns,
                        },
                    ],
                });
            }
        }
        for (reply, outcome) in outcomes {
            let _ = reply.send(outcome.map(|report| ServedUpdate { report, epoch }));
        }
        // Checkpoint *after* acknowledging the batch: a failed (or
        // fault-killed) checkpoint must never take acknowledged updates
        // down with it. Failure here is non-fatal to durability — the
        // previous checkpoint plus the full log still recover; the
        // thresholds stay tripped so the next batch retries.
        if let Some(store) = &shared.store {
            let mut store = lock_unpoisoned(store);
            if store.should_checkpoint() {
                match store.checkpoint(&working, epoch) {
                    Ok(()) => {
                        shared.checkpoints.fetch_add(1, Ordering::SeqCst);
                        if let Some(h) = &shared.obs {
                            h.checkpoints.inc();
                        }
                    }
                    Err(_) => {
                        shared.wal_failures.fetch_add(1, Ordering::SeqCst);
                        if let Some(h) = &shared.obs {
                            h.wal_failures.inc();
                        }
                    }
                }
            }
        }
    }
}

/// Reconverge the published state with the durable log after a writer
/// death: replay every WAL record beyond [`Shared::published_lsn`] onto a
/// copy of the published snapshot and publish the result. These are
/// records the doomed writer group-committed but never applied/published
/// — their callers were told [`ClosureError::WriterRestarted`], yet the
/// records are durable, so a later [`ds_durability::recover`] *will*
/// replay them; the live state must agree. No-op when durability is off
/// or the suffix is empty (every clean start).
fn redo_wal_suffix(shared: &Shared) {
    let Some(store) = &shared.store else { return };
    let mut store = lock_unpoisoned(store);
    let after = shared.published_lsn.load(Ordering::SeqCst);
    let suffix = match store.read_suffix(after) {
        Ok(suffix) => suffix,
        Err(_) => {
            shared.wal_failures.fetch_add(1, Ordering::SeqCst);
            return;
        }
    };
    if suffix.is_empty() {
        return;
    }
    let mut working = (*shared.published.current().1).clone();
    let mut scratch = ScratchDijkstra::new();
    let mut epoch = shared.published.epoch.load(Ordering::Acquire);
    let mut applied = 0u64;
    let mut last = after;
    for rec in &suffix {
        // Mirror the writer's apply loop: effective updates bump the
        // epoch, per-update errors are skipped (their callers already
        // saw the error).
        if let Ok(report) = working.maintain(&rec.update, &mut scratch) {
            if report.sites_touched > 0 || report.full_recompute {
                epoch += 1;
                applied += 1;
            }
        }
        last = rec.lsn;
    }
    if applied > 0 {
        working.ensure_reach();
        shared.published.publish(epoch, Arc::new(working));
    }
    shared.published_lsn.store(last, Ordering::SeqCst);
    let mut log = lock_unpoisoned(&shared.writer_log);
    log.updates += applied;
    log.publications += (applied > 0) as u64;
}
