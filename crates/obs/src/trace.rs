//! Request tracing: trace ids minted at admission, per-stage span
//! records collected as a request crosses tiers, a bounded ring of
//! finished traces, and a slow-query log with a configurable (or
//! adaptive p999) latency threshold.
//!
//! A [`TraceId`] is a plain `u64` so it can ride inside micro-batch
//! jobs and machine protocol messages without allocation; `TraceId::NONE`
//! (zero) marks untraced requests and costs the carrying structs
//! nothing. Spans are recorded as offsets from the [`Tracer`]'s birth
//! instant, so records from different threads land on one time axis.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::registry::HistogramHandle;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identity of one traced request. Zero ([`TraceId::NONE`]) means "not
/// traced": carrying structs can hold a `TraceId` unconditionally and
/// pay nothing when observability is disarmed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// `true` when this id was minted by a [`Tracer`].
    #[inline]
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The pipeline stage a span measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Request accepted into the serve queue.
    Admission,
    /// Time between admission and a worker picking the job up.
    QueueWait,
    /// The answer came from the worker's answer cache (marker span).
    CacheHit,
    /// The request coalesced onto a duplicate in the same micro-batch
    /// and rode its evaluation (marker span).
    Coalesced,
    /// A `connected` probe answered by the SCC/chain reachability index.
    ReachIndex,
    /// Chain-program evaluation of the whole request.
    Evaluation,
    /// Evaluation time of one disconnection-set chain.
    ChainSegment { chain: u32 },
    /// One site's busy time answering a phase-one sub-query (machine
    /// backend; from the protocol reply).
    SitePhaseOne { site: u32 },
    /// The serve writer applying an update batch to its working copy.
    WriterApply,
    /// The serve writer publishing the new epoch.
    Publication,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Admission => write!(f, "admission"),
            Stage::QueueWait => write!(f, "queue-wait"),
            Stage::CacheHit => write!(f, "cache-hit"),
            Stage::Coalesced => write!(f, "coalesced"),
            Stage::ReachIndex => write!(f, "reach-index"),
            Stage::Evaluation => write!(f, "evaluation"),
            Stage::ChainSegment { chain } => write!(f, "chain-{chain}"),
            Stage::SitePhaseOne { site } => write!(f, "site-{site}-phase1"),
            Stage::WriterApply => write!(f, "writer-apply"),
            Stage::Publication => write!(f, "publication"),
        }
    }
}

/// One timed stage of one traced request. `start_ns` is an offset from
/// the minting [`Tracer`]'s birth instant; marker spans (cache hit,
/// coalesced) carry `dur_ns == 0`.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub stage: Stage,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// How a traced request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered with a path / cost.
    Answered,
    /// Answered: no path exists.
    Unreachable,
    /// The evaluating worker failed (fault injection, panic).
    Failed,
    /// Shed at the deadline before evaluation.
    Shed,
    /// An update applied and published by the writer.
    Applied,
}

/// The finished record of one request: identity, endpoints, the epoch
/// it was answered against, end-to-end latency, and its span set.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    pub trace: TraceId,
    /// Source vertex (0 for writer/update traces).
    pub source: u64,
    /// Target vertex (0 for writer/update traces).
    pub target: u64,
    /// Snapshot epoch the request was served against.
    pub epoch: u64,
    /// End-to-end latency, admission → reply.
    pub total_ns: u64,
    pub outcome: TraceOutcome,
    pub spans: Vec<SpanRecord>,
}

impl RequestTrace {
    /// The first span of `stage`, if recorded.
    pub fn span(&self, stage: Stage) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.stage == stage)
    }
}

impl fmt::Display for RequestTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}->{} @epoch {} {:?} {:.1}us:",
            self.trace,
            self.source,
            self.target,
            self.epoch,
            self.outcome,
            self.total_ns as f64 / 1_000.0
        )?;
        for s in &self.spans {
            write!(f, " {}={:.1}us", s.stage, s.dur_ns as f64 / 1_000.0)?;
        }
        Ok(())
    }
}

/// Per-request evaluation timing produced by a traced `run_batch`:
/// total chain-program time plus per-chain segment times. Collected by
/// `ds_closure` without knowing anything else about observability.
#[derive(Clone, Debug, Default)]
pub struct EvalTrace {
    pub trace: TraceId,
    /// Total evaluation time of this request, nanoseconds.
    pub eval_ns: u64,
    /// Per-chain segment time, in plan order.
    pub chains: Vec<ChainEval>,
}

/// Evaluation time of one disconnection-set chain of one request.
#[derive(Clone, Copy, Debug)]
pub struct ChainEval {
    pub chain: u32,
    pub ns: u64,
}

/// Mints trace ids, owns the shared time axis, and keeps a bounded
/// ring of finished [`RequestTrace`]s for inspection.
#[derive(Debug)]
pub struct Tracer {
    t0: Instant,
    next: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<RequestTrace>>,
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        Tracer {
            t0: Instant::now(),
            next: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Mint a fresh id (never [`TraceId::NONE`]).
    #[inline]
    pub fn mint(&self) -> TraceId {
        TraceId(self.next.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Nanoseconds since the tracer was created — the shared time axis
    /// all span offsets are expressed on.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Ids minted so far.
    pub fn minted(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// File a finished trace into the ring (oldest evicted at
    /// capacity).
    pub fn finish(&self, trace: RequestTrace) {
        let mut ring = lock(&self.ring);
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The most recent `k` finished traces, oldest first.
    pub fn recent(&self, k: usize) -> Vec<RequestTrace> {
        let ring = lock(&self.ring);
        ring.iter()
            .skip(ring.len().saturating_sub(k))
            .cloned()
            .collect()
    }

    /// Finished traces currently retained.
    pub fn len(&self) -> usize {
        lock(&self.ring).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How many requests between adaptive-threshold recomputations.
const ADAPTIVE_RECOMPUTE_EVERY: u64 = 64;

/// Ring-buffered log of requests slower than a latency threshold.
///
/// With a fixed threshold (`ObsConfig::slow_threshold`), every request
/// at or above it is logged. With the adaptive default, the threshold
/// tracks the interpolated p999 of the request-latency histogram,
/// recomputed every [`ADAPTIVE_RECOMPUTE_EVERY`] requests; until the
/// first recomputation nothing is logged (no stable tail estimate yet).
#[derive(Debug)]
pub struct SlowQueryLog {
    fixed: Option<u64>,
    threshold: AtomicU64,
    observed: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<RequestTrace>>,
}

impl SlowQueryLog {
    pub fn new(capacity: usize, fixed_threshold_ns: Option<u64>) -> Self {
        SlowQueryLog {
            fixed: fixed_threshold_ns,
            threshold: AtomicU64::new(fixed_threshold_ns.unwrap_or(u64::MAX)),
            observed: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The currently effective threshold in nanoseconds (`u64::MAX`
    /// while the adaptive estimate is still warming up).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold.load(Ordering::Relaxed)
    }

    /// Consider one finished request. `latency` is the histogram the
    /// adaptive threshold reads its p999 from.
    pub fn observe(&self, trace: &RequestTrace, latency: &HistogramHandle) {
        let n = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        if trace.total_ns >= self.threshold.load(Ordering::Relaxed) {
            let mut ring = lock(&self.ring);
            if ring.len() >= self.capacity {
                ring.pop_front();
            }
            ring.push_back(trace.clone());
        }
        // Recompute after the check: a fresh threshold applies from the
        // next request on, so a request never races its own estimate.
        if self.fixed.is_none() && n.is_multiple_of(ADAPTIVE_RECOMPUTE_EVERY) {
            let p999 = latency.snapshot().p999_ns().max(1);
            self.threshold.store(p999, Ordering::Relaxed);
        }
    }

    /// The most recent `k` slow queries, oldest first.
    pub fn recent(&self, k: usize) -> Vec<RequestTrace> {
        let ring = lock(&self.ring);
        ring.iter()
            .skip(ring.len().saturating_sub(k))
            .cloned()
            .collect()
    }

    /// Slow queries currently retained.
    pub fn len(&self) -> usize {
        lock(&self.ring).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(trace: TraceId, total_ns: u64) -> RequestTrace {
        RequestTrace {
            trace,
            source: 1,
            target: 2,
            epoch: 0,
            total_ns,
            outcome: TraceOutcome::Answered,
            spans: Vec::new(),
        }
    }

    #[test]
    fn mint_never_returns_none() {
        let t = Tracer::new(8);
        for _ in 0..100 {
            assert!(t.mint().is_traced());
        }
        assert_eq!(t.minted(), 100);
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::new(3);
        for i in 1..=5u64 {
            t.finish(rt(TraceId(i), i));
        }
        let recent = t.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|r| r.trace.0).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(t.recent(2).len(), 2);
    }

    #[test]
    fn fixed_threshold_logs_at_or_above() {
        let log = SlowQueryLog::new(8, Some(1_000));
        let lat = HistogramHandle::new();
        log.observe(&rt(TraceId(1), 999), &lat);
        log.observe(&rt(TraceId(2), 1_000), &lat);
        log.observe(&rt(TraceId(3), 5_000), &lat);
        let slow = log.recent(10);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].trace, TraceId(2));
        assert_eq!(slow[1].trace, TraceId(3));
    }

    #[test]
    fn adaptive_threshold_warms_up_then_tracks_p999() {
        let log = SlowQueryLog::new(8, None);
        let lat = HistogramHandle::new();
        assert_eq!(log.threshold_ns(), u64::MAX);
        // 64 fast requests arm the estimate; nothing logged during
        // warm-up.
        for i in 0..64u64 {
            lat.record(1_000);
            log.observe(&rt(TraceId(i + 1), 1_000), &lat);
        }
        assert!(log.is_empty(), "warm-up logs nothing");
        let thr = log.threshold_ns();
        assert!(thr <= 2_048, "p999 of uniform 1us load, got {thr}");
        // A genuine outlier now gets logged.
        lat.record(1_000_000);
        log.observe(&rt(TraceId(100), 1_000_000), &lat);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn trace_display_lists_spans() {
        let mut t = rt(TraceId(7), 4200);
        t.spans.push(SpanRecord {
            trace: TraceId(7),
            stage: Stage::QueueWait,
            start_ns: 0,
            dur_ns: 1000,
        });
        t.spans.push(SpanRecord {
            trace: TraceId(7),
            stage: Stage::ChainSegment { chain: 2 },
            start_ns: 1000,
            dur_ns: 3000,
        });
        let s = t.to_string();
        assert!(s.contains("t7"), "{s}");
        assert!(s.contains("queue-wait=1.0us"), "{s}");
        assert!(s.contains("chain-2=3.0us"), "{s}");
    }

    #[test]
    fn span_lookup_by_stage() {
        let mut t = rt(TraceId(1), 10);
        t.spans.push(SpanRecord {
            trace: TraceId(1),
            stage: Stage::Evaluation,
            start_ns: 5,
            dur_ns: 5,
        });
        assert!(t.span(Stage::Evaluation).is_some());
        assert!(t.span(Stage::QueueWait).is_none());
    }
}
