//! The metrics registry: named, lock-free counters, gauges, and atomic
//! histograms, with point-in-time snapshot export as JSON and
//! Prometheus text exposition.
//!
//! The hot-path contract mirrors the `ds_fault` hook idiom: a metric
//! handle is an `Arc` around one or more atomics, so bumping it is a
//! single relaxed atomic op; when a tier runs without observability it
//! carries `Option<Arc<Observability>>::None` and pays one `Option`
//! branch. Handles are clonable and detachable — a [`Counter`] works
//! identically whether or not it was minted through a registry, which
//! lets components keep exact internal stats on the same type they
//! export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::LatencyHistogram;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; all operations are `Relaxed` — counters are statistics, not
/// synchronization.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A freestanding counter, not attached to any registry.
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (queue depth, current epoch, …). Same cost
/// model as [`Counter`]; `set` overwrites.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A freestanding gauge, not attached to any registry.
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Concurrent power-of-two-bucket histogram: the atomic twin of
/// [`LatencyHistogram`]. `record` is three relaxed atomic ops plus a
/// `fetch_max`; [`HistogramHandle::snapshot`] folds it back into the
/// plain mergeable form for quantile read-out.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 64],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    #[inline]
    fn record(&self, ns: u64) {
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        LatencyHistogram::from_parts(
            buckets,
            self.sum_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// Clonable handle on a shared [`AtomicHistogram`].
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// A freestanding histogram, not attached to any registry.
    pub fn new() -> Self {
        HistogramHandle::default()
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.0.record(ns);
    }

    /// Fold the atomics into a plain [`LatencyHistogram`] for quantile
    /// read-out. Concurrent recorders may land between bucket loads;
    /// the snapshot is internally consistent enough for statistics.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.snapshot()
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

/// Name → metric map. Registration is get-or-create: asking twice for
/// the same name returns handles on the same atomic, which is how
/// several workers share one counter. Registration takes a lock;
/// components therefore mint handles once at startup and bump the
/// lock-free handles on the hot path.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`. If the name is already
    /// taken by a different metric kind, a detached handle is returned
    /// (recorded values are then invisible to snapshots — a naming bug,
    /// not a crash).
    pub fn counter(&self, name: &str) -> Counter {
        match lock(&self.metrics)
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Get or create the gauge named `name` (kind mismatch → detached,
    /// as for [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        match lock(&self.metrics)
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Get or create the histogram named `name` (kind mismatch →
    /// detached, as for [`Self::counter`]).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match lock(&self.metrics)
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramHandle::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => HistogramHandle::new(),
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in lock(&self.metrics).iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// A point-in-time export of a [`MetricsRegistry`]: all counters,
/// gauges, and histograms, sorted by name, renderable as JSON
/// ([`Self::to_json`]) or Prometheus text exposition
/// ([`Self::to_prometheus`]).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)`, sorted by name.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// Look up a counter by name (testing/scripting convenience).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Render as a JSON object (hand-rolled; the workspace is offline
    /// and dependency-free). Histograms export their aggregates and
    /// interpolated p50/p99/p999 rather than raw buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", sanitize(name), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", sanitize(name), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \
                 \"mean_ns\": {:.1}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \"p999_ns\": {}}}",
                sanitize(name),
                h.count(),
                h.sum_ns(),
                h.max_ns(),
                h.mean_ns(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.p999_ns(),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Render as Prometheus text exposition format. Counters become
    /// `counter`, gauges `gauge`, histograms `histogram` with
    /// cumulative power-of-two `le` buckets plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let buckets = h.buckets();
            let last = buckets.iter().rposition(|&c| c != 0);
            let mut cumulative = 0u64;
            if let Some(last) = last {
                for (i, &c) in buckets.iter().enumerate().take(last + 1) {
                    cumulative += c;
                    // Bucket i holds [2^i, 2^(i+1)): upper bound 2^(i+1).
                    let le = (1u128 << (i + 1)).to_string();
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", h.sum_ns()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_atomic_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("requests").get(), 3);
        let g = reg.gauge("depth");
        g.set(7);
        assert_eq!(reg.gauge("depth").get(), 7);
        let h = reg.histogram("lat");
        h.record(1000);
        assert_eq!(reg.histogram("lat").snapshot().count(), 1);
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_clobbering() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        let g = reg.gauge("x"); // wrong kind: detached handle
        g.set(99);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(1));
        assert_eq!(snap.gauge("x"), None);
    }

    #[test]
    fn snapshot_is_sorted_and_point_in_time() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 1), ("b".to_string(), 2)]
        );
        reg.counter("a").add(10);
        assert_eq!(snap.counter("a"), Some(1), "snapshot does not move");
    }

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let h = HistogramHandle::new();
        let mut plain = LatencyHistogram::new();
        for i in 1..500u64 {
            let ns = i * 313;
            h.record(ns);
            plain.record(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum_ns(), plain.sum_ns());
        assert_eq!(snap.max_ns(), plain.max_ns());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(snap.quantile(q), plain.quantile(q));
        }
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = reg.counter("hits");
            let h = reg.histogram("lat");
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    c.inc();
                    h.record(i + 1);
                }
            }));
        }
        for t in handles {
            t.join().expect("recorder thread");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), Some(4000));
        assert_eq!(snap.histogram("lat").map(|h| h.count()), Some(4000));
    }

    #[test]
    fn prometheus_export_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(5);
        reg.gauge("epoch").set(3);
        let h = reg.histogram("latency_ns");
        h.record(3); // bucket [2,4) → le=4
        h.record(1000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE serve_requests counter"));
        assert!(text.contains("serve_requests 5"));
        assert!(text.contains("# TYPE epoch gauge\nepoch 3"));
        assert!(text.contains("latency_ns_bucket{le=\"4\"} 1"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("latency_ns_sum 1003"));
        assert!(text.contains("latency_ns_count 2"));
        // Cumulative counts are non-decreasing in le order.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("latency_ns_bucket")) {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .expect("bucket count");
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn json_export_parses_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(1);
        reg.gauge("g").set(2);
        reg.histogram("h").record(100);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"c\": 1"));
        assert!(json.contains("\"g\": 2"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
