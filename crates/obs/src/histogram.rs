//! A fixed-bucket latency histogram: power-of-two buckets, O(1) record,
//! mergeable across workers, quantile read-out for p50/p99 reporting.
//!
//! Dependency-free by design (the workspace is offline): 64 geometric
//! buckets cover the full `u64` nanosecond range with ≤ 50% relative
//! error per bucket — plenty for serving-latency percentiles, where the
//! interesting signal is orders of magnitude, not nanoseconds.
//!
//! This type started life inside `ds_serve`; it lives here so every
//! tier (and the [`crate::registry`] atomics) can share one histogram
//! shape. `ds_serve` re-exports it for compatibility.

/// Histogram over nanosecond samples with power-of-two bucket edges:
/// bucket `i` holds samples in `[2^i, 2^(i+1))`.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a histogram from raw parts (bucket counts plus the exact
    /// aggregates). Used by [`crate::registry::AtomicHistogram`] to
    /// snapshot its atomics into the plain mergeable form.
    pub(crate) fn from_parts(buckets: [u64; 64], sum_ns: u64, max_ns: u64) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            count,
            sum_ns,
            max_ns,
        }
    }

    /// Record one sample (nanoseconds).
    pub fn record(&mut self, ns: u64) {
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest sample seen (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// The `q`-quantile (`0.0..=1.0`), as the geometric midpoint of the
    /// bucket holding the rank — e.g. `quantile_ns(0.99)` is the p99.
    /// Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Midpoint of [2^i, 2^(i+1)): 1.5 * 2^i.
                let lo = 1u64 << i;
                return (lo + lo / 2).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// The `q`-quantile (`0.0..=1.0`) with linear interpolation inside
    /// the rank's bucket: where [`Self::quantile_ns`] always answers the
    /// bucket midpoint, this spreads the bucket's samples uniformly over
    /// `[2^i, 2^(i+1))` and reads off the rank's position — tighter for
    /// tail quantiles like p999, where a midpoint answer can be off by
    /// 50%. Clamped to `max_ns` so `quantile(1.0)` is the exact maximum.
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = (1u64 << i) as f64;
                // Position of the rank inside this bucket, in (0, 1].
                let within = (rank - seen) as f64 / c as f64;
                let value = lo + lo * within;
                return value.min(self.max_ns as f64);
            }
            seen += c;
        }
        self.max_ns as f64
    }

    /// Interpolated p999 in nanoseconds — the slow-query log's default
    /// adaptive threshold.
    pub fn p999_ns(&self) -> u64 {
        self.quantile(0.999).round() as u64
    }

    /// Fold another histogram into this one (per-worker → global).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.p999_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        // 99 fast samples around 1µs, one slow 1ms outlier.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5);
        assert!((512..2048).contains(&p50), "p50 {p50} in the 1µs bucket");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 < 10_000, "p99 {p99} still fast");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 500_000, "max quantile {p100} sees the outlier");
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 1..200u64 {
            let ns = i * 977;
            if i % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
            whole.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_ns(), whole.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_ns(q), whole.quantile_ns(q), "q={q}");
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn extreme_samples_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(0); // clamped into the first bucket
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) > 0);
        assert!(h.quantile(1.0) > 0.0);
    }

    #[test]
    fn interpolated_quantile_stays_inside_the_bucket() {
        let mut h = LatencyHistogram::new();
        // 1000 samples all exactly at a bucket's lower edge.
        for _ in 0..1000 {
            h.record(1024);
        }
        // Every quantile of a constant distribution is that constant:
        // interpolation may wander inside [1024, 2048) but the max_ns
        // clamp pins it to the exact sample value.
        for q in [0.0, 0.001, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 1024.0, "q={q}");
        }
        assert_eq!(h.p999_ns(), 1024);
    }

    #[test]
    fn interpolated_quantile_is_monotone_and_bracketed() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1_000); // 1µs .. 1ms
        }
        let mut prev = 0.0;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "monotone at q={q}: {v} >= {prev}");
            assert!(v <= h.max_ns() as f64, "bracketed at q={q}");
            prev = v;
        }
        // p999 of 1..=1000 µs is in the top bucket and beats the p50.
        assert!(h.p999_ns() > h.quantile(0.5) as u64);
        assert!(h.p999_ns() <= h.max_ns());
    }

    #[test]
    fn bucket_boundary_cases() {
        let mut h = LatencyHistogram::new();
        // Exact powers of two land in the bucket they open.
        h.record(1);
        h.record(2);
        h.record(4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        // One below a power of two stays in the bucket below.
        let mut g = LatencyHistogram::new();
        g.record(1023);
        g.record(1024);
        assert_eq!(g.buckets()[9], 1, "1023 in [512, 1024)");
        assert_eq!(g.buckets()[10], 1, "1024 in [1024, 2048)");
        // Interpolated quantiles never escape [min bucket lo, max_ns].
        assert!(g.quantile(0.0) >= 512.0);
        assert!(g.quantile(1.0) <= 1024.0);
    }
}
