//! The workload recorder: a sharded, bounded sketch of which fragment
//! pairs and vertex pairs the serve tier is actually asked about.
//!
//! This is the input a workload-adaptive re-fragmenter needs (ROADMAP:
//! score candidate fragmentations against *observed* queried paths, à
//! la Peng et al.): per-pair frequencies, cheap enough to sample from
//! the hot path. Recording is sampled ([`WorkloadRecorder::should_sample`]
//! is one relaxed atomic op), sharded to keep lock contention off the
//! worker pool, and bounded per shard so an adversarial key stream
//! cannot grow memory — new pairs arriving at a full shard are counted
//! in `dropped` instead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One hot pair and its observed frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotPair {
    pub a: u64,
    pub b: u64,
    pub count: u64,
}

/// SplitMix64 finalizer — shard selection only.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct PairSketch {
    shards: Vec<Mutex<HashMap<(u64, u64), u64>>>,
    per_shard_cap: usize,
    dropped: AtomicU64,
}

impl PairSketch {
    fn new(shards: usize, per_shard_cap: usize) -> Self {
        PairSketch {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            per_shard_cap: per_shard_cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    fn record(&self, a: u64, b: u64, n: u64) {
        let shard =
            (mix(a.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(b)) as usize) % self.shards.len();
        let mut map = lock(&self.shards[shard]);
        if let Some(c) = map.get_mut(&(a, b)) {
            *c += n;
        } else if map.len() < self.per_shard_cap {
            map.insert((a, b), n);
        } else {
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn top_k(&self, k: usize) -> Vec<HotPair> {
        let mut all: Vec<HotPair> = Vec::new();
        for shard in &self.shards {
            for (&(a, b), &count) in lock(shard).iter() {
                all.push(HotPair { a, b, count });
            }
        }
        // Deterministic order: frequency desc, then pair asc.
        all.sort_by(|x, y| y.count.cmp(&x.count).then((x.a, x.b).cmp(&(y.a, y.b))));
        all.truncate(k);
        all
    }

    fn distinct(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }
}

/// Sampled frequency sketch of the served query stream, keyed two
/// ways: by vertex pair (who asks for what) and by fragment pair
/// (which fragment-to-fragment routes are hot).
#[derive(Debug)]
pub struct WorkloadRecorder {
    vertex_pairs: PairSketch,
    fragment_pairs: PairSketch,
    sample_every: u64,
    tick: AtomicU64,
}

impl WorkloadRecorder {
    /// `sample_every` = record every Nth request (1 = all);
    /// `per_shard_cap` bounds each of the `shards` maps of each sketch.
    pub fn new(shards: usize, per_shard_cap: usize, sample_every: u64) -> Self {
        WorkloadRecorder {
            vertex_pairs: PairSketch::new(shards, per_shard_cap),
            fragment_pairs: PairSketch::new(shards, per_shard_cap),
            sample_every: sample_every.max(1),
            tick: AtomicU64::new(0),
        }
    }

    /// Hot-path sampling gate: one relaxed atomic op. Returns `true`
    /// on every `sample_every`-th call.
    #[inline]
    pub fn should_sample(&self) -> bool {
        self.tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
    }

    /// Count one (sampled) query for vertex pair `(source, target)`.
    pub fn record_vertex_pair(&self, source: u64, target: u64) {
        self.vertex_pairs.record(source, target, 1);
    }

    /// Count one (sampled) query routed from fragment `a` to fragment
    /// `b`.
    pub fn record_fragment_pair(&self, a: u64, b: u64) {
        self.fragment_pairs.record(a, b, 1);
    }

    /// The `k` most frequently queried vertex pairs, hottest first
    /// (ties broken by pair for determinism).
    pub fn top_vertex_pairs(&self, k: usize) -> Vec<HotPair> {
        self.vertex_pairs.top_k(k)
    }

    /// The `k` hottest fragment-to-fragment routes, hottest first.
    pub fn top_fragment_pairs(&self, k: usize) -> Vec<HotPair> {
        self.fragment_pairs.top_k(k)
    }

    /// Distinct vertex pairs currently tracked.
    pub fn distinct_vertex_pairs(&self) -> usize {
        self.vertex_pairs.distinct()
    }

    /// Distinct fragment pairs currently tracked.
    pub fn distinct_fragment_pairs(&self) -> usize {
        self.fragment_pairs.distinct()
    }

    /// Samples lost to full shards (vertex sketch + fragment sketch).
    pub fn dropped(&self) -> u64 {
        self.vertex_pairs.dropped.load(Ordering::Relaxed)
            + self.fragment_pairs.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_accumulate_and_rank() {
        let w = WorkloadRecorder::new(4, 64, 1);
        for _ in 0..5 {
            w.record_vertex_pair(1, 2);
        }
        for _ in 0..3 {
            w.record_vertex_pair(3, 4);
        }
        w.record_vertex_pair(5, 6);
        let top = w.top_vertex_pairs(2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].a, top[0].b, top[0].count), (1, 2, 5));
        assert_eq!((top[1].a, top[1].b, top[1].count), (3, 4, 3));
        assert_eq!(w.distinct_vertex_pairs(), 3);
    }

    #[test]
    fn fragment_and_vertex_sketches_are_independent() {
        let w = WorkloadRecorder::new(2, 64, 1);
        w.record_fragment_pair(0, 1);
        w.record_fragment_pair(0, 1);
        assert_eq!(w.top_fragment_pairs(5).len(), 1);
        assert_eq!(w.top_fragment_pairs(5)[0].count, 2);
        assert!(w.top_vertex_pairs(5).is_empty());
    }

    #[test]
    fn sampling_gate_fires_every_nth() {
        let w = WorkloadRecorder::new(1, 8, 4);
        let fired = (0..16).filter(|_| w.should_sample()).count();
        assert_eq!(fired, 4);
        let always = WorkloadRecorder::new(1, 8, 1);
        assert!((0..10).all(|_| always.should_sample()));
    }

    #[test]
    fn full_shards_drop_new_pairs_but_keep_counting_known_ones() {
        let w = WorkloadRecorder::new(1, 2, 1);
        w.record_vertex_pair(1, 1);
        w.record_vertex_pair(2, 2);
        w.record_vertex_pair(3, 3); // shard full → dropped
        assert_eq!(w.distinct_vertex_pairs(), 2);
        assert_eq!(w.dropped(), 1);
        w.record_vertex_pair(1, 1); // known pair still counts
        assert_eq!(w.top_vertex_pairs(1)[0].count, 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let w = WorkloadRecorder::new(8, 64, 1);
        w.record_vertex_pair(9, 9);
        w.record_vertex_pair(1, 1);
        let top = w.top_vertex_pairs(2);
        assert_eq!((top[0].a, top[1].a), (1, 9), "equal counts sort by pair");
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        let w = std::sync::Arc::new(WorkloadRecorder::new(8, 1024, 1));
        let mut threads = Vec::new();
        for t in 0..4u64 {
            let w = std::sync::Arc::clone(&w);
            threads.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    w.record_vertex_pair(i % 10, t);
                }
            }));
        }
        for t in threads {
            t.join().expect("recorder thread");
        }
        let total: u64 = w.top_vertex_pairs(usize::MAX).iter().map(|p| p.count).sum();
        assert_eq!(total, 2000);
        assert_eq!(w.dropped(), 0);
    }
}
