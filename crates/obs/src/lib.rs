//! `ds_obs` — unified observability for every tier of the workspace:
//! a metrics registry, request tracing with a slow-query log, and a
//! workload recorder feeding future re-fragmentation.
//!
//! Like `ds_fault`, this crate is std-only and follows the same
//! arming idiom: each tier carries an `Option<Arc<Observability>>`.
//! Disarmed (`None`, the production default) every hook is a single
//! `Option` branch; armed, the hot-path cost is one relaxed atomic op
//! per metric bump. The three instruments share one [`Observability`]
//! bundle:
//!
//! * [`MetricsRegistry`] — named lock-free [`Counter`]s, [`Gauge`]s and
//!   atomic [`LatencyHistogram`]s, exported point-in-time as JSON or
//!   Prometheus text via [`MetricsSnapshot`];
//! * [`Tracer`] — [`TraceId`]s minted at serve admission and threaded
//!   through micro-batches, `run_batch`, the machine protocol, and
//!   writer publication, yielding per-request [`RequestTrace`] span
//!   sets plus a ring-buffered [`SlowQueryLog`];
//! * [`WorkloadRecorder`] — a sharded, bounded sketch of per-vertex-pair
//!   and per-fragment-pair query frequencies sampled from the serve hot
//!   path.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod histogram;
pub mod registry;
pub mod trace;
pub mod workload;

pub use histogram::LatencyHistogram;
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry, MetricsSnapshot};
pub use trace::{
    ChainEval, EvalTrace, RequestTrace, SlowQueryLog, SpanRecord, Stage, TraceId, TraceOutcome,
    Tracer,
};
pub use workload::{HotPair, WorkloadRecorder};

use std::sync::Arc;
use std::time::Duration;

/// Tuning for an [`Observability`] bundle. `Default` is sized for
/// tests and examples; long-running servers may want larger rings.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Finished request traces retained by the [`Tracer`] ring.
    pub trace_ring: usize,
    /// Entries retained by the [`SlowQueryLog`] ring.
    pub slow_ring: usize,
    /// Fixed slow-query threshold; `None` (default) tracks the
    /// interpolated p999 of the request-latency histogram adaptively.
    pub slow_threshold: Option<Duration>,
    /// Record every Nth request into the [`WorkloadRecorder`] (1 =
    /// every request).
    pub workload_sample_every: u64,
    /// Shards per workload sketch (lock-contention knob).
    pub workload_shards: usize,
    /// Distinct pairs per workload shard before new pairs are dropped.
    pub workload_per_shard_cap: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace_ring: 1024,
            slow_ring: 128,
            slow_threshold: None,
            workload_sample_every: 1,
            workload_shards: 16,
            workload_per_shard_cap: 4096,
        }
    }
}

/// The shared observability bundle one system (or test) arms across
/// its tiers: registry + tracer + slow-query log + workload recorder.
///
/// The request-latency histogram is registered as
/// `request_latency_ns`; [`Observability::record_request`] feeds it,
/// the slow-query log, and the trace ring in one call.
#[derive(Debug)]
pub struct Observability {
    registry: MetricsRegistry,
    tracer: Tracer,
    slow: SlowQueryLog,
    workload: WorkloadRecorder,
    latency: HistogramHandle,
}

impl Observability {
    pub fn new(cfg: ObsConfig) -> Self {
        let registry = MetricsRegistry::new();
        let latency = registry.histogram("request_latency_ns");
        Observability {
            tracer: Tracer::new(cfg.trace_ring),
            slow: SlowQueryLog::new(
                cfg.slow_ring,
                cfg.slow_threshold.map(|d| d.as_nanos() as u64),
            ),
            workload: WorkloadRecorder::new(
                cfg.workload_shards,
                cfg.workload_per_shard_cap,
                cfg.workload_sample_every,
            ),
            registry,
            latency,
        }
    }

    /// A default-configured bundle, ready to hand to
    /// `ServeConfig`/`MachineOptions`/`MaterializeConfig`.
    pub fn armed() -> Arc<Self> {
        Arc::new(Self::new(ObsConfig::default()))
    }

    /// A bundle with explicit tuning.
    pub fn with_config(cfg: ObsConfig) -> Arc<Self> {
        Arc::new(Self::new(cfg))
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn slow_queries(&self) -> &SlowQueryLog {
        &self.slow
    }

    pub fn workload(&self) -> &WorkloadRecorder {
        &self.workload
    }

    /// The shared end-to-end request latency histogram
    /// (`request_latency_ns`).
    pub fn latency(&self) -> &HistogramHandle {
        &self.latency
    }

    /// File one finished request: records its latency, runs it past
    /// the slow-query log, and retains the trace in the ring.
    pub fn record_request(&self, trace: RequestTrace) {
        self.latency.record(trace.total_ns);
        self.slow.observe(&trace, &self.latency);
        self.tracer.finish(trace);
    }

    /// Point-in-time export of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_request_feeds_all_three_instruments() {
        let obs = Observability::with_config(ObsConfig {
            slow_threshold: Some(Duration::from_micros(10)),
            ..ObsConfig::default()
        });
        let t = obs.tracer().mint();
        obs.record_request(RequestTrace {
            trace: t,
            source: 1,
            target: 2,
            epoch: 0,
            total_ns: 50_000, // 50us: over the 10us slow threshold
            outcome: TraceOutcome::Answered,
            spans: vec![SpanRecord {
                trace: t,
                stage: Stage::Evaluation,
                start_ns: 0,
                dur_ns: 50_000,
            }],
        });
        assert_eq!(obs.tracer().len(), 1);
        assert_eq!(obs.slow_queries().len(), 1);
        let snap = obs.snapshot();
        let lat = snap.histogram("request_latency_ns").expect("registered");
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.max_ns(), 50_000);
    }

    #[test]
    fn snapshot_includes_dynamic_registrations() {
        let obs = Observability::armed();
        obs.registry().counter("serve_requests_total").add(3);
        obs.registry().gauge("epoch").set(2);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("serve_requests_total"), Some(3));
        assert_eq!(snap.gauge("epoch"), Some(2));
        assert!(snap.to_prometheus().contains("serve_requests_total 3"));
        assert!(snap.to_json().contains("\"epoch\": 2"));
    }

    #[test]
    fn workload_flows_through_the_bundle() {
        let obs = Observability::armed();
        assert!(obs.workload().should_sample());
        obs.workload().record_vertex_pair(4, 7);
        obs.workload().record_fragment_pair(0, 1);
        assert_eq!(obs.workload().top_vertex_pairs(1)[0].count, 1);
        assert_eq!(obs.workload().top_fragment_pairs(1)[0].count, 1);
    }
}
