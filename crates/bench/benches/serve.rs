//! Serving throughput vs worker count × read/write mix, plus the
//! per-epoch publication-cost metric.
//!
//! A **closed-loop load test with think time** — the standard load-model
//! of TPC-style benchmarks — of the `ds_serve` subsystem. A deployment
//! with `W` pool workers fronts `4·W` synchronous connections (listener
//! pools are sized against executor pools); each connection issues one
//! job at a time from a hot-route-skewed read stream (optionally with a
//! 5% update mix) and then "thinks" for `THINK_US` before its next
//! request, capping every connection at ≈ 1/THINK_US requests per
//! second, the way real clients do.
//!
//! The question the sweep answers is the operational one: *how much
//! aggregate traffic does the deployment serve as the worker pool (and
//! the connection population it carries) grows?* Small pools are
//! offered-load-bound; larger pools push the serving core toward
//! saturation, where queue depth converts into micro-batch size and
//! micro-batch size into work elimination — identical in-flight requests
//! coalesce (single-flight), repeats across micro-batches hit the
//! per-epoch answer cache, queries between the same fragment pair share
//! one chain plan and one set of interior segments per batch
//! (`run_batch`) — and, on many-core hardware, into genuine phase-one
//! parallelism on top.
//!
//! **Seed sweep.** Every workload is generated at `SEEDS.len()` (≥ 3)
//! generator seeds; per-seed rows land in the JSON next to one aggregate
//! row per configuration carrying min/median/max across the seed
//! medians, and the CI gates use the **conservative bound** (the worst
//! seed), not a single median.
//!
//! **Publication cost.** The writer publishes one structurally-shared
//! snapshot clone per epoch (O(touched sites) — every untouched
//! component is `Arc`-shared with the previous epoch). The bench
//! measures that clone against `EngineSnapshot::unshared_clone` — the
//! deep copy a publication used to cost — on a post-update working
//! snapshot of the transportation workload, reports approximate bytes
//! copied per epoch, and **fails** unless shared publication is ≥ 5x
//! cheaper on every seed.
//!
//! After measuring, the bench also **fails** (non-zero exit, failing the
//! CI job) if the 4-worker deployment does not reach the required
//! speedup over 1 worker on the transportation workload at the 95/5 mix
//! on its worst seed.
//!
//! **Observability overhead.** The transportation 95/5 row at 4 workers
//! is re-measured with *paired interleaved sampling*: every round runs
//! `obs-baseline` (obs unset), `obs-disarmed` (obs unset again — the
//! hooks compile in either way, so this prices the measurement floor),
//! and `obs-armed` (a live `ds_obs` bundle tracing every request)
//! back-to-back, so slow drift (thermal, allocator state) hits all
//! three equally. The gate compares best-of-samples against the paired
//! baseline — `obs-disarmed` must stay ≤ 5% over it on the worst seed;
//! `obs-armed` is reported, non-gating.
//!
//! **Durability overhead.** The transportation workload is re-measured
//! as a pure write path (16 closed-loop updaters, 100% update mix)
//! with the write-ahead log armed (`wal-on`: a fresh log directory,
//! fsync'd group commits, append-before-apply on the writer) against a
//! paired `wal-off` baseline, and the bench **fails** unless the
//! durable write path keeps ≥ 70% of the WAL-off throughput on its
//! worst seed — the group-commit amortization gate.
//!
//! Emits a committed perf snapshot to `BENCH_serve.json` (repo root).
//!
//! ```text
//! cargo bench -p ds-bench --bench serve
//! ```

use ds_bench::harness::{render, write_json, Bench};
use ds_closure::api::{NetworkUpdate, QueryRequest};
use ds_closure::{EngineConfig, EngineSnapshot};
use ds_fragment::center::{center_based, CenterConfig};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::{semantic, CrossingPolicy};
use ds_gen::{
    generate_ellipse, generate_general, generate_transportation, EllipseConfig, GeneralConfig,
    TransportationConfig,
};
use ds_graph::{NodeId, ScratchDijkstra};
use ds_obs::Observability;
use ds_serve::{DurabilityConfig, FaultPlan, FaultPoint, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Synchronous connections per pool worker (closed loop).
const CLIENTS_PER_WORKER: usize = 4;
/// Per-connection think time between jobs (closed-loop client model:
/// ≈ 1.6k requests/s per connection at most).
const THINK_US: u64 = 600;
/// Hot exact routes per workload.
const HOT_ROUTES: usize = 6;
/// Worker counts swept per workload.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Generator seeds swept per workload (the aggregate rows and both CI
/// gates run across all of them).
const SEEDS: [u64; 3] = [1, 2, 3];
/// Required 4-worker speedup over 1 worker, transportation @ 95/5, on
/// the **worst** seed.
const GATE_SPEEDUP: f64 = 2.0;
/// Required full-clone / shared-clone publication cost ratio, on the
/// **worst** seed.
const GATE_PUBLICATION: f64 = 5.0;
/// Ceiling on the disarmed-observability throughput ratio vs the
/// *paired* baseline (best-of-samples, worst seed): carrying the
/// unarmed hooks must cost ≤ 5%. The armed row is informational only.
const GATE_OBS_DISARMED: f64 = 1.05;
/// Interleaved rounds per seed for the observability overhead rows.
const OBS_ROUNDS: usize = 5;
/// Floor on the WAL-on / WAL-off write-path throughput ratio
/// (best-of-samples, worst seed): durable serving — fsync'd group
/// commits on every write batch plus append-before-apply on the writer
/// — may cost at most 30% of pure update throughput. Group commit is
/// what holds this: concurrent updaters share one append+fdatasync per
/// writer micro-batch.
const GATE_WAL: f64 = 0.7;
/// Interleaved rounds per seed for the WAL overhead rows.
const WAL_ROUNDS: usize = 3;

#[derive(Clone)]
enum Op {
    Read(QueryRequest),
    Write(NetworkUpdate),
}

/// One benchmark workload: a snapshot plus the node pools the traffic
/// generator draws from.
struct Workload {
    label: &'static str,
    seed: u64,
    snapshot: EngineSnapshot,
    /// Hot exact routes — the head of the traffic distribution, shared
    /// by every client (that sharing is what coalescing and the answer
    /// cache exploit).
    hot: Vec<QueryRequest>,
    /// Endpoint pools of the hot fragment pair (random endpoints, same
    /// chain — shares interior segments with the hot routes).
    pool_a: Vec<NodeId>,
    pool_b: Vec<NodeId>,
    nodes: usize,
    /// Delete/re-insert pairs that stay incremental, one per writing
    /// client (disjoint ownership keeps updates conflict-free).
    update_pairs: Vec<(NetworkUpdate, NetworkUpdate)>,
    /// Operations served per configuration (divisible by every client
    /// count; smaller for workloads with expensive queries).
    ops_total: usize,
}

/// Interior fragment edges whose delete stays incremental, probed on a
/// private snapshot clone (same recipe as `benches/updates.rs`).
fn safe_update_pairs(snap: &EngineSnapshot, want: usize) -> Vec<(NetworkUpdate, NetworkUpdate)> {
    let frag = snap.fragmentation().clone();
    let border = |v: NodeId| frag.fragments_of_node(v).len() >= 2;
    let mut scratch = ScratchDijkstra::new();
    let mut out = Vec::new();
    'outer: for f in frag.fragments() {
        for e in f.edges() {
            if out.len() >= want {
                break 'outer;
            }
            if border(e.src) && border(e.dst) {
                continue; // DS-crossing deletions fall back by design
            }
            let matched = f
                .edges()
                .iter()
                .filter(|x| {
                    (x.src == e.src && x.dst == e.dst) || (x.src == e.dst && x.dst == e.src)
                })
                .count();
            if matched != 1 {
                continue;
            }
            let remove = NetworkUpdate::Remove {
                src: e.src,
                dst: e.dst,
                owner: f.id(),
            };
            let mut probe = snap.clone();
            match probe.maintain(&remove, &mut scratch) {
                Ok(report) if !report.full_recompute => {}
                _ => continue, // bridge or otherwise fallback-prone
            }
            out.push((
                remove,
                NetworkUpdate::Insert {
                    edge: *e,
                    owner: f.id(),
                },
            ));
        }
    }
    out
}

/// Pre-generate one client's operation stream. Reads: 70% a hot exact
/// route, 15% random endpoints on the hot fragment pair, 15% uniform.
/// Writes (when `write_permille > 0`): the client's private delete /
/// re-insert pair, strictly alternating.
fn client_stream(w: &Workload, client: usize, ops: usize, write_permille: u32) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(0xC11E27 ^ (client as u64) << 3 ^ w.seed << 17);
    let pair = &w.update_pairs[client % w.update_pairs.len()];
    let mut removed = false;
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        if (rng.gen_index(1000) as u32) < write_permille {
            let u = if removed { pair.1 } else { pair.0 };
            removed = !removed;
            out.push(Op::Write(u));
            continue;
        }
        let d = rng.gen_index(100);
        let req = if d < 70 {
            w.hot[rng.gen_index(w.hot.len())]
        } else if d < 85 {
            QueryRequest::new(
                w.pool_a[rng.gen_index(w.pool_a.len())],
                w.pool_b[rng.gen_index(w.pool_b.len())],
            )
        } else {
            QueryRequest::new(
                NodeId(rng.gen_index(w.nodes) as u32),
                NodeId(rng.gen_index(w.nodes) as u32),
            )
        };
        out.push(Op::Read(req));
    }
    out
}

/// Serve `w.ops_total` operations through a fresh server with `workers`
/// workers; returns requests answered (for the optimizer). `fault`,
/// `obs` and `durability` are `None` on every speedup-gated row; the
/// overhead rows pass an armed-but-silent plan / an armed
/// [`Observability`] bundle / a fresh WAL directory to price each
/// subsystem against its paired baseline.
fn run_config(
    w: &Workload,
    workers: usize,
    write_permille: u32,
    fault: Option<Arc<FaultPlan>>,
    obs: Option<Arc<Observability>>,
    durability: Option<DurabilityConfig>,
) -> u64 {
    let clients = workers * CLIENTS_PER_WORKER;
    let ops_per_client = w.ops_total / clients;
    let streams: Vec<Vec<Op>> = (0..clients)
        .map(|c| client_stream(w, c, ops_per_client, write_permille))
        .collect();
    let server = Server::start(
        w.snapshot.clone(),
        ServeConfig {
            workers,
            queue_capacity: 4096,
            batch_max: 128,
            write_batch_max: 16,
            fault,
            obs,
            durability,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|s| {
        for stream in &streams {
            let server = &server;
            s.spawn(move || {
                let think = std::time::Duration::from_micros(THINK_US);
                for op in stream {
                    match op {
                        Op::Read(r) => {
                            server.query(r.source, r.target).expect("healthy pool");
                        }
                        Op::Write(u) => {
                            let _ = server.update(u);
                        }
                    }
                    // Closed-loop think time: the connection processes
                    // the reply before asking again.
                    std::thread::sleep(think);
                }
            });
        }
    });
    let stats = server.shutdown();
    if std::env::var_os("SERVE_BENCH_VERBOSE").is_some() {
        eprintln!(
            "[serve]     {stats} | avg_batch={:.1} plans r/c={}/{} segs r/c={}/{} pubs={}",
            stats.requests as f64 / stats.batches.max(1) as f64,
            stats.batch.plans_reused,
            stats.batch.plans_computed,
            stats.batch.segments_reused,
            stats.batch.segments_computed,
            stats.publications,
        );
    }
    stats.requests + stats.updates
}

/// Build the hot/pool structure from two far-apart node sets.
fn make_workload(
    label: &'static str,
    seed: u64,
    snapshot: EngineSnapshot,
    pool_a: Vec<NodeId>,
    pool_b: Vec<NodeId>,
    nodes: usize,
    ops_total: usize,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(0x407E5 ^ seed);
    let hot = (0..HOT_ROUTES)
        .map(|_| {
            QueryRequest::new(
                pool_a[rng.gen_index(pool_a.len())],
                pool_b[rng.gen_index(pool_b.len())],
            )
        })
        .collect();
    let update_pairs = safe_update_pairs(&snapshot, WORKER_COUNTS[2] * CLIENTS_PER_WORKER + 8);
    assert!(
        update_pairs.len() >= WORKER_COUNTS[2] * CLIENTS_PER_WORKER,
        "{label}/seed-{seed}: only {} disjoint incremental update pairs",
        update_pairs.len()
    );
    Workload {
        label,
        seed,
        snapshot,
        hot,
        pool_a,
        pool_b,
        nodes,
        update_pairs,
        ops_total,
    }
}

fn transportation_workload(seed: u64) -> Workload {
    let clusters = 10usize;
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster: 40,
        target_edges_per_cluster: 150,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    let labels = g.cluster_of.clone().unwrap();
    let frag = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        clusters,
        CrossingPolicy::LowerBlock,
    )
    .unwrap();
    let snap =
        EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
    // Hot traffic crosses the whole cluster chain: first ↔ last country.
    let pool_a: Vec<NodeId> = (0..40u32).map(NodeId).collect();
    let pool_b: Vec<NodeId> = ((g.nodes as u32 - 40)..g.nodes as u32)
        .map(NodeId)
        .collect();
    make_workload("transportation", seed, snap, pool_a, pool_b, g.nodes, 1920)
}

fn spatial_workload(seed: u64) -> Workload {
    let cfg = EllipseConfig {
        nodes: 700,
        target_edges: 2100,
        c2: 0.15,
        a: 900.0,
        b: 40.0,
        ..Default::default()
    };
    let g = generate_ellipse(&cfg, seed + 1);
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 8,
            ..Default::default()
        },
    )
    .unwrap()
    .fragmentation;
    let snap =
        EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default()).unwrap();
    // Hot traffic runs the long axis: leftmost decile ↔ rightmost decile.
    let mut by_x: Vec<u32> = (0..g.nodes as u32).collect();
    by_x.sort_by(|&i, &j| g.coords[i as usize].x.total_cmp(&g.coords[j as usize].x));
    let decile = g.nodes / 10;
    let pool_a: Vec<NodeId> = by_x[..decile].iter().map(|&i| NodeId(i)).collect();
    let pool_b: Vec<NodeId> = by_x[g.nodes - decile..]
        .iter()
        .map(|&i| NodeId(i))
        .collect();
    make_workload("spatial", seed, snap, pool_a, pool_b, g.nodes, 1920)
}

fn general_workload(seed: u64) -> Workload {
    let cfg = GeneralConfig {
        nodes: 200,
        target_edges: 550,
        c2: 0.15,
        ..Default::default()
    };
    let g = generate_general(&cfg, seed + 2);
    let frag = center_based(
        &g.edge_list(),
        &CenterConfig {
            fragments: 4,
            ..Default::default()
        },
    )
    .unwrap()
    .fragmentation;
    // Center growth yields a cyclic fragmentation graph with fat
    // borders; cap the chain enumeration so a single query stays
    // serving-sized (the adversarial point here is batching behaviour,
    // not exhaustive chain coverage).
    let snap = EngineSnapshot::build(
        g.closure_graph(),
        frag,
        true,
        EngineConfig {
            max_chains: 8,
            max_chain_len: 5,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    // No exploitable geometry: hot routes between two random node pools.
    let mut rng = StdRng::seed_from_u64(7 ^ seed);
    let pool_a: Vec<NodeId> = (0..30)
        .map(|_| NodeId(rng.gen_index(g.nodes) as u32))
        .collect();
    let pool_b: Vec<NodeId> = (0..30)
        .map(|_| NodeId(rng.gen_index(g.nodes) as u32))
        .collect();
    make_workload("general", seed, snap, pool_a, pool_b, g.nodes, 240)
}

/// Approximate deep heap size of a snapshot's shareable components (the
/// bytes a *full* per-epoch copy duplicates): CSR storage for the global
/// and per-site augmented graphs, the per-site shortcut tables and
/// real-hop sets. Rough by design — it contextualizes the clone timings
/// as a bytes-per-epoch figure, it is not an allocator audit.
fn approx_snapshot_bytes(snap: &EngineSnapshot) -> usize {
    // CSR ≈ one 8-byte offset per node + ~16 bytes per directed edge.
    let csr = |nodes: usize, edges: usize| nodes * 8 + edges * 16;
    let mut bytes = csr(snap.graph().node_count(), snap.graph().edge_count());
    for f in 0..snap.site_count() {
        let aug = snap.augmented_handle(f);
        bytes += csr(aug.node_count(), aug.edge_count());
        // HashSet entry (NodeId, NodeId, Cost) ≈ 16 bytes × ~2 load slack.
        bytes += snap.real_hops_handle(f).len() * 32;
        // Shortcut Edge = (u32, u32, u64).
        bytes += snap.complementary().shortcuts(f).len() * 16;
    }
    bytes
}

/// Measure the per-epoch publication cost on a transportation working
/// snapshot that has one update's worth of touched sites (the realistic
/// writer state): the structurally-shared clone the writer performs
/// today vs the deep copy it performed before structural sharing.
/// Returns (shared_median_ns, full_median_ns).
fn publication_cost(group: &mut Bench, w: &Workload) -> (f64, f64) {
    // The published predecessor pins the sharing, exactly like the
    // serve writer: `working` was cloned from it, then maintained.
    let published = Arc::new(w.snapshot.clone());
    let mut working = (*published).clone();
    let mut scratch = ScratchDijkstra::new();
    let (remove, insert) = &w.update_pairs[0];
    working.maintain(remove, &mut scratch).unwrap();
    working.maintain(insert, &mut scratch).unwrap();
    let shared = group
        .run(
            &format!("publication/{}/shared-clone/seed-{}", w.label, w.seed),
            || Arc::new(working.clone()),
        )
        .median_ns;
    let full = group
        .run(
            &format!("publication/{}/full-clone/seed-{}", w.label, w.seed),
            || Arc::new(working.unshared_clone()),
        )
        .median_ns;
    let bytes = approx_snapshot_bytes(&working);
    println!(
        "publication/{}/seed-{}: full-clone ≈ {:.0} KiB in {:.1} us, shared-clone {:.2} us \
         ({:.0}x cheaper; O(sites) Arcs vs the deep copy)",
        w.label,
        w.seed,
        bytes as f64 / 1024.0,
        full / 1e3,
        shared / 1e3,
        full / shared,
    );
    (shared, full)
}

fn main() {
    let mut group = Bench::new("serve").sample_size(3);

    // workloads[family][seed index]
    let transportation: Vec<Workload> = SEEDS.iter().map(|&s| transportation_workload(s)).collect();
    eprintln!(
        "[serve] transportation workloads ready ({} seeds)",
        SEEDS.len()
    );
    let spatial: Vec<Workload> = SEEDS.iter().map(|&s| spatial_workload(s)).collect();
    eprintln!("[serve] spatial workloads ready");
    let general: Vec<Workload> = SEEDS.iter().map(|&s| general_workload(s)).collect();
    eprintln!("[serve] general workloads ready");

    // Publication cost: the structural-sharing headline, swept per seed,
    // gated on the worst seed.
    let mut publication_ratios = Vec::with_capacity(transportation.len());
    let (mut shared_meds, mut full_meds) = (Vec::new(), Vec::new());
    for w in &transportation {
        let (shared, full) = publication_cost(&mut group, w);
        publication_ratios.push(full / shared);
        shared_meds.push(shared);
        full_meds.push(full);
    }
    group.record("publication/transportation/shared-clone", &shared_meds);
    group.record("publication/transportation/full-clone", &full_meds);

    // Transportation runs both mixes; the other workloads run the
    // gate-relevant 95/5 mix only.
    let configs: [(&Vec<Workload>, u32); 4] = [
        (&transportation, 0),
        (&transportation, 50),
        (&spatial, 50),
        (&general, 50),
    ];
    // Per (family, mix, workers): the per-seed medians, keyed by name.
    let mut medians: Vec<(String, Vec<f64>)> = Vec::new();
    for (seeds, write_permille) in configs {
        let mix = format!("{}r-{}w", (1000 - write_permille) / 10, write_permille / 10);
        for workers in WORKER_COUNTS {
            let name = format!("{}/{mix}/workers-{workers}", seeds[0].label);
            eprintln!("[serve] measuring {name} across {} seeds", seeds.len());
            let t = std::time::Instant::now();
            let per_seed: Vec<f64> = seeds
                .iter()
                .map(|w| {
                    group
                        .run(&format!("{name}/seed-{}", w.seed), || {
                            run_config(w, workers, write_permille, None, None, None)
                        })
                        .median_ns
                })
                .collect();
            let agg = group.record(&name, &per_seed).clone();
            eprintln!(
                "[serve]   {name}: median {:.0} ms (min {:.0} / max {:.0}), row took {:.1}s",
                agg.median_ns / 1e6,
                agg.min_ns / 1e6,
                agg.max_ns / 1e6,
                t.elapsed().as_secs_f64()
            );
            medians.push((name, per_seed));
        }
    }

    // Fault-hook overhead: the transportation 95/5 row at 4 workers with
    // an armed-but-silent plan (a rule whose occurrence count can never
    // be reached, so every hook takes the armed path without firing).
    // Non-gating — the row keeps the hook's price visible in the JSON.
    let armed_plan =
        Arc::new(FaultPlan::new().panic_at(FaultPoint::ServeWorker { worker: 0 }, u64::MAX));
    eprintln!("[serve] measuring fault-hook overhead (armed-but-silent)");
    let armed: Vec<f64> = transportation
        .iter()
        .map(|w| {
            group
                .run(
                    &format!(
                        "transportation/95r-5w/workers-4/fault-armed/seed-{}",
                        w.seed
                    ),
                    || run_config(w, 4, 50, Some(armed_plan.clone()), None, None),
                )
                .median_ns
        })
        .collect();
    group.record("transportation/95r-5w/workers-4/fault-armed", &armed);

    // Observability overhead, same row, measured as PAIRED interleaved
    // samples: each round runs baseline (obs: None), disarmed (obs:
    // None again — the hooks compile in either way, this prices the
    // measurement floor), and armed (a live registry + tracer +
    // workload recorder fed by every request) back-to-back, so slow
    // drift over the bench's runtime hits all three configurations
    // equally instead of inflating whichever row ran last. The gate
    // compares best-of-samples (the noise-robust estimator) per seed.
    eprintln!("[serve] measuring observability overhead (paired baseline/disarmed/armed)");
    let mut obs_ratios: Vec<(f64, f64)> = Vec::with_capacity(transportation.len());
    let (mut obs_base_meds, mut obs_disarmed_meds, mut obs_armed_meds) =
        (Vec::new(), Vec::new(), Vec::new());
    for w in &transportation {
        let bundle = Observability::armed();
        let mut samples = [Vec::new(), Vec::new(), Vec::new()];
        run_config(w, 4, 50, None, None, None); // warmup, discarded
        for _ in 0..OBS_ROUNDS {
            for (which, out) in samples.iter_mut().enumerate() {
                let obs = (which == 2).then(|| Arc::clone(&bundle));
                let t = std::time::Instant::now();
                std::hint::black_box(run_config(w, 4, 50, None, obs, None));
                out.push(t.elapsed().as_nanos() as f64);
            }
        }
        let min = |s: &[f64]| s.iter().cloned().fold(f64::INFINITY, f64::min);
        obs_ratios.push((
            min(&samples[1]) / min(&samples[0]),
            min(&samples[2]) / min(&samples[0]),
        ));
        for (which, name) in ["obs-baseline", "obs-disarmed", "obs-armed"]
            .iter()
            .enumerate()
        {
            let row = group
                .record(
                    &format!("transportation/95r-5w/workers-4/{name}/seed-{}", w.seed),
                    &samples[which],
                )
                .median_ns;
            match which {
                0 => obs_base_meds.push(row),
                1 => obs_disarmed_meds.push(row),
                _ => obs_armed_meds.push(row),
            }
        }
    }
    group.record(
        "transportation/95r-5w/workers-4/obs-baseline",
        &obs_base_meds,
    );
    group.record(
        "transportation/95r-5w/workers-4/obs-disarmed",
        &obs_disarmed_meds,
    );
    group.record("transportation/95r-5w/workers-4/obs-armed", &obs_armed_meds);

    // Durability overhead on the write path: the transportation
    // workload served as a pure update stream — 16 closed-loop
    // updaters, each alternating its private delete / re-insert pair —
    // with every update appended to a fresh write-ahead log (fsync'd
    // group commits, append-before-apply) before it is applied. Paired
    // interleaved sampling again: each round runs `wal-off` and
    // `wal-on` back-to-back on a fresh log directory, and the gate
    // compares best-of-samples per seed on the worst seed. Group
    // commit is what the row demonstrates: concurrent updaters share
    // one append+fdatasync per writer micro-batch, so the durable
    // write path keeps ≥ 70% of the WAL-off throughput.
    eprintln!("[serve] measuring WAL write-path overhead (paired wal-off/wal-on)");
    let mut wal_ratios: Vec<f64> = Vec::with_capacity(transportation.len());
    let (mut wal_off_meds, mut wal_on_meds) = (Vec::new(), Vec::new());
    for w in &transportation {
        let mut samples = [Vec::new(), Vec::new()];
        for round in 0..WAL_ROUNDS {
            for (which, out) in samples.iter_mut().enumerate() {
                let dir = (which == 1).then(|| {
                    let dir = std::env::temp_dir().join(format!(
                        "discset-serve-bench-wal-{}-{}-{round}",
                        std::process::id(),
                        w.seed
                    ));
                    let _ = std::fs::remove_dir_all(&dir);
                    dir
                });
                let durability = dir.clone().map(DurabilityConfig::at);
                let t = std::time::Instant::now();
                std::hint::black_box(run_config(w, 4, 1000, None, None, durability));
                out.push(t.elapsed().as_nanos() as f64);
                if let Some(dir) = dir {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
        }
        let min = |s: &[f64]| s.iter().cloned().fold(f64::INFINITY, f64::min);
        // Throughput ratio wal-on/wal-off = time-off / time-on.
        wal_ratios.push(min(&samples[0]) / min(&samples[1]));
        for (which, name) in ["wal-off", "wal-on"].iter().enumerate() {
            let row = group
                .record(
                    &format!("transportation/0r-100w/workers-4/{name}/seed-{}", w.seed),
                    &samples[which],
                )
                .median_ns;
            if which == 0 {
                wal_off_meds.push(row);
            } else {
                wal_on_meds.push(row);
            }
        }
    }
    group.record("transportation/0r-100w/workers-4/wal-off", &wal_off_meds);
    group.record("transportation/0r-100w/workers-4/wal-on", &wal_on_meds);

    println!("{}", render(group.results()));
    println!("aggregate throughput (closed loop, {CLIENTS_PER_WORKER} connections/worker, {THINK_US}us think time):");
    let seeds_of = |name: &str| -> &[f64] {
        medians
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_slice())
            .expect("measured")
    };
    let mut gate_speedup = f64::INFINITY;
    for (seeds, write_permille) in configs {
        let label = seeds[0].label;
        let ops_total = seeds[0].ops_total;
        let mix = format!("{}r-{}w", (1000 - write_permille) / 10, write_permille / 10);
        let base = seeds_of(&format!("{label}/{mix}/workers-1"));
        for workers in WORKER_COUNTS {
            let per_seed = seeds_of(&format!("{label}/{mix}/workers-{workers}"));
            // Per-seed speedups pair each seed with its own 1-worker
            // baseline; the conservative bound is the worst seed.
            let speedups: Vec<f64> = base.iter().zip(per_seed).map(|(b, ns)| b / ns).collect();
            let worst = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
            let med = {
                let mut s = per_seed.to_vec();
                s.sort_by(|a, b| a.total_cmp(b));
                s[s.len() / 2]
            };
            let qps = ops_total as f64 / (med / 1e9);
            println!(
                "  {label}/{mix}: {workers} workers = {qps:>9.0} ops/s \
                 (worst-seed {worst:.2}x vs 1 worker)"
            );
            if label == "transportation" && write_permille == 50 && workers == 4 {
                gate_speedup = worst;
            }
        }
    }
    let base4 = seeds_of("transportation/95r-5w/workers-4");
    let worst_overhead = base4
        .iter()
        .zip(&armed)
        .map(|(b, a)| a / b)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "fault hooks: armed-but-silent plan costs {:+.1}% vs baseline on the worst \
         seed (informational, non-gating)",
        (worst_overhead - 1.0) * 100.0
    );
    let worst_obs_disarmed = obs_ratios
        .iter()
        .map(|(d, _)| *d)
        .fold(f64::NEG_INFINITY, f64::max);
    let worst_obs_armed = obs_ratios
        .iter()
        .map(|(_, a)| *a)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "observability: disarmed hooks cost {:+.1}% vs the paired baseline on the worst \
         seed (gated at ≤ {:.0}%), armed bundle {:+.1}% (informational, non-gating)",
        (worst_obs_disarmed - 1.0) * 100.0,
        (GATE_OBS_DISARMED - 1.0) * 100.0,
        (worst_obs_armed - 1.0) * 100.0
    );
    let worst_wal = wal_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "durability: wal-on write-path throughput is {worst_wal:.2}x wal-off on the \
         worst seed (fsync'd group commits; floor {GATE_WAL}x)"
    );
    let worst_publication = publication_ratios
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!(
        "publication cost: shared-clone is {worst_publication:.0}x cheaper than the \
         full copy on the worst seed (floor {GATE_PUBLICATION}x)"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    write_json(path, group.results()).expect("write perf snapshot");
    println!("\nwrote {path}");

    // Regression gates (fail the CI job), both on the conservative
    // (worst-seed) bound: the pool must convert concurrency into
    // throughput on the paper's headline workload, and structural
    // sharing must keep epoch publication ≥ 5x cheaper than a full copy.
    assert!(
        gate_speedup >= GATE_SPEEDUP,
        "transportation 95r-5w: 4 workers reached only {gate_speedup:.2}x the \
         1-worker throughput on the worst seed (floor {GATE_SPEEDUP}x)"
    );
    assert!(
        worst_publication >= GATE_PUBLICATION,
        "structural sharing: shared publication only {worst_publication:.2}x cheaper \
         than a full clone on the worst seed (floor {GATE_PUBLICATION}x)"
    );
    assert!(
        worst_obs_disarmed <= GATE_OBS_DISARMED,
        "observability: disarmed hooks cost {:.1}% vs the paired baseline on the \
         worst seed (ceiling {:.0}%)",
        (worst_obs_disarmed - 1.0) * 100.0,
        (GATE_OBS_DISARMED - 1.0) * 100.0
    );
    assert!(
        worst_wal >= GATE_WAL,
        "durability: wal-on throughput is only {worst_wal:.2}x wal-off on the worst \
         seed (floor {GATE_WAL}x) — group commit is not amortizing the fsyncs"
    );
}
