//! Reachability fast path: SCC/chain index vs Dijkstra-path `connected`.
//!
//! Before the index, `connected(x, y)` ran the full shortest-path
//! machinery — a Dijkstra-grade sweep to learn one boolean. The
//! [`ds_graph::ReachIndex`] answers the same question from the SCC
//! condensation's chain decomposition: one component comparison plus at
//! most one binary search. This bench measures, per seed:
//!
//! * **connected/index** — `EngineSnapshot::connected` with the index
//!   fresh (the shipping fast path);
//! * **connected/dijkstra** — the pre-index evaluation
//!   (`shortest_path(x, y).cost.is_some()`), i.e. what every `connected`
//!   call used to cost;
//! * **index-build** — full index construction (condensation + chain
//!   decomposition + row DP), the price of one rebuild after an
//!   invalidating update;
//! * **index-memory-bytes** — exact index footprint (recorded in the
//!   JSON as a value row; the unit is bytes, not nanoseconds).
//!
//! A pre-flight pass asserts the two `connected` arms answer
//! identically on every query of every seed and — counter-asserted via
//! [`ScratchDijkstra`]'s sweep statistics — that the index arm runs
//! **zero** Dijkstra sweeps.
//!
//! **Regression gate** (fails the CI job): the worst per-seed
//! index-vs-Dijkstra speedup on the read-only workload must stay ≥ 5x.
//!
//! **Million-node mode.** `REACH_MILLION=1` additionally runs the
//! [`ScaleConfig::million`] configuration (~1M nodes, ~2M edges):
//! non-gating, longer-running, exercised by a separate CI row. The same
//! zero-sweep assertion runs there, which is the issue's acceptance
//! criterion at scale.
//!
//! ```text
//! cargo bench -p ds-bench --bench reachability
//! REACH_MILLION=1 cargo bench -p ds-bench --bench reachability
//! ```

use ds_bench::harness::{render, write_json, Bench};
use ds_closure::{EngineConfig, EngineSnapshot};
use ds_fragment::Fragmentation;
use ds_gen::{generate_scale, ScaleConfig};
use ds_graph::{CsrGraph, Edge, NodeId, ReachIndex, ScratchDijkstra};

/// Generator seeds swept per workload.
const SEEDS: [u64; 3] = [1, 2, 3];
/// Conservative (worst-seed) index-vs-Dijkstra speedup floor.
const GATE_INDEX_SPEEDUP: f64 = 5.0;
/// Gated workload size (the million-node run is opt-in, non-gating).
const NODES: usize = 20_000;
/// Query pairs evaluated per measured call.
const QUERIES: usize = 64;

/// Wrap a graph into the trivial one-fragment fragmentation: no borders,
/// so the disconnection-set machinery precomputes nothing and the
/// fallback `connected` is exactly one global Dijkstra sweep.
fn single_fragment(graph: &CsrGraph) -> Fragmentation {
    let edges: Vec<Edge> = graph.edges().collect();
    let seeds: Vec<NodeId> = graph.nodes().collect();
    Fragmentation::new(graph.node_count(), vec![edges], vec![seeds])
}

/// Deterministic query pairs spread over the node range.
fn query_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| {
            (
                NodeId(((i * 7919 + 3) % n) as u32),
                NodeId(((i * 104_729 + 11) % n) as u32),
            )
        })
        .collect()
}

/// Build the snapshot and run the pre-flight equivalence + zero-sweep
/// assertions shared by the gated and the million-node parts.
fn build_and_check(
    label: &str,
    cfg: &ScaleConfig,
    seed: u64,
    dijkstra_checks: usize,
) -> (EngineSnapshot, Vec<(NodeId, NodeId)>) {
    let graph = generate_scale(cfg, seed);
    let frag = single_fragment(&graph);
    let snap = EngineSnapshot::build(graph, frag, false, EngineConfig::default()).unwrap();
    let pairs = query_pairs(cfg.nodes, QUERIES);
    let reach = snap.reach_index().expect("index on by default");

    // Pre-flight 1: the index arm runs zero Dijkstra sweeps — the
    // acceptance criterion, counter-asserted.
    let mut scratch = ScratchDijkstra::new();
    let sweeps_before = scratch.stats().sweeps;
    let mut reachable = 0usize;
    for &(x, y) in &pairs {
        reachable += snap.connected(x, y, &mut scratch) as usize;
    }
    assert_eq!(
        scratch.stats().sweeps,
        sweeps_before,
        "{label}/seed-{seed}: index-path connected ran a Dijkstra sweep"
    );
    assert!(
        reachable > 0 && reachable < pairs.len(),
        "{label}/seed-{seed}: degenerate workload ({reachable}/{} reachable)",
        pairs.len()
    );

    // Pre-flight 2: arm equivalence (capped for the million-node run,
    // where each Dijkstra answer costs a full-graph sweep).
    for &(x, y) in pairs.iter().take(dijkstra_checks) {
        assert_eq!(
            snap.connected(x, y, &mut scratch),
            x == y || snap.shortest_path(x, y, &mut scratch).cost.is_some(),
            "{label}/seed-{seed}: arms disagree on {x} -> {y}"
        );
    }
    println!(
        "{label}/seed-{seed}: {} nodes, {} edges, {} components, {} chains, \
         index {} bytes, {reachable}/{} pairs reachable",
        snap.graph().node_count(),
        snap.graph().edge_count(),
        reach.comp_count(),
        reach.chain_count(),
        reach.memory_bytes(),
        pairs.len()
    );
    (snap, pairs)
}

fn main() {
    let mut group = Bench::new("reachability").sample_size(10);
    let label = "scale-20k";
    let cfg = ScaleConfig {
        nodes: NODES,
        out_degree: 2,
    };

    let (mut index_medians, mut dijkstra_medians, mut build_medians) =
        (Vec::new(), Vec::new(), Vec::new());
    let mut memory = Vec::new();
    for &seed in &SEEDS {
        let (snap, pairs) = build_and_check(label, &cfg, seed, QUERIES);
        let mut scratch = ScratchDijkstra::new();

        let idx = group
            .run(&format!("{label}/connected/index/seed-{seed}"), || {
                let mut hits = 0usize;
                for &(x, y) in &pairs {
                    hits += snap.connected(x, y, &mut scratch) as usize;
                }
                hits
            })
            .median_ns;
        let dij = group
            .run(&format!("{label}/connected/dijkstra/seed-{seed}"), || {
                let mut hits = 0usize;
                for &(x, y) in &pairs {
                    hits +=
                        (x == y || snap.shortest_path(x, y, &mut scratch).cost.is_some()) as usize;
                }
                hits
            })
            .median_ns;
        let build = group
            .run(&format!("{label}/index-build/seed-{seed}"), || {
                ReachIndex::build(snap.graph()).comp_count()
            })
            .median_ns;
        let bytes = snap.reach_index().unwrap().memory_bytes() as f64;
        group.record(&format!("{label}/index-memory-bytes/seed-{seed}"), &[bytes]);
        index_medians.push(idx);
        dijkstra_medians.push(dij);
        build_medians.push(build);
        memory.push(bytes);
    }
    group.record(&format!("{label}/connected/index"), &index_medians);
    group.record(&format!("{label}/connected/dijkstra"), &dijkstra_medians);
    group.record(&format!("{label}/index-build"), &build_medians);
    group.record(&format!("{label}/index-memory-bytes"), &memory);

    // Pair each seed's arms; the conservative bound is the worst seed.
    let worst_speedup = dijkstra_medians
        .iter()
        .zip(&index_medians)
        .map(|(d, i)| d / i)
        .fold(f64::INFINITY, f64::min);
    println!("{label}: worst-seed index speedup {worst_speedup:.0}x (floor {GATE_INDEX_SPEEDUP}x)");

    // Opt-in million-node configuration: the acceptance run. Non-gating
    // on speed (the zero-sweep pre-flight inside build_and_check is the
    // assertion that matters); only a handful of Dijkstra-arm queries —
    // each is a full sweep of a million-node graph.
    if std::env::var("REACH_MILLION").is_ok_and(|v| v == "1") {
        let label = "scale-1m";
        let cfg = ScaleConfig::million();
        let seed = SEEDS[0];
        let (snap, pairs) = build_and_check(label, &cfg, seed, 4);
        let mut scratch = ScratchDijkstra::new();
        group.run(&format!("{label}/connected/index/seed-{seed}"), || {
            let mut hits = 0usize;
            for &(x, y) in &pairs {
                hits += snap.connected(x, y, &mut scratch) as usize;
            }
            hits
        });
        let dij_pairs = &pairs[..4];
        group.run(&format!("{label}/connected/dijkstra/seed-{seed}"), || {
            let mut hits = 0usize;
            for &(x, y) in dij_pairs {
                hits += (x == y || snap.shortest_path(x, y, &mut scratch).cost.is_some()) as usize;
            }
            hits
        });
        group.run(&format!("{label}/index-build/seed-{seed}"), || {
            ReachIndex::build(snap.graph()).comp_count()
        });
        group.record(
            &format!("{label}/index-memory-bytes/seed-{seed}"),
            &[snap.reach_index().unwrap().memory_bytes() as f64],
        );
    } else {
        println!("(set REACH_MILLION=1 to run the million-node configuration)");
    }

    println!("{}", render(group.results()));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reachability.json");
    write_json(path, group.results()).expect("write perf snapshot");
    println!("\nwrote {path}");

    // Regression gate on the conservative bound (fails the CI job).
    assert!(
        worst_speedup >= GATE_INDEX_SPEEDUP,
        "index-backed connected reached only {worst_speedup:.2}x the Dijkstra path \
         on the worst seed (floor {GATE_INDEX_SPEEDUP}x)"
    );
}
