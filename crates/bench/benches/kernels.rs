//! Transitive closure kernel comparison: "at the implementation level one
//! needs an algorithm to efficiently process the transitive closure" (§1).
//!
//! Compares the per-fragment evaluator choices §2.1 leaves open ("any
//! suitable single-processor algorithm may be chosen"): Dijkstra,
//! bit-matrix Warshall, Floyd–Warshall and relational semi-naive.

use criterion::{criterion_group, criterion_main, Criterion};
use ds_gen::{generate_general, GeneralConfig};
use ds_graph::{dijkstra, matrix, NodeId};
use ds_relation::{tc, PathTuple, Relation};

fn bench_kernels(c: &mut Criterion) {
    let g = generate_general(&GeneralConfig::default(), 1); // 100 nodes, ~280 edges
    let csr = g.closure_graph();
    let rel = Relation::from_rows(
        "R",
        csr.edges().map(PathTuple::from).collect::<Vec<_>>(),
    );

    let mut group = c.benchmark_group("kernels-100-nodes");
    group.sample_size(20);
    group.bench_function("dijkstra-single-source", |b| {
        b.iter(|| dijkstra::single_source(&csr, NodeId(0)))
    });
    group.bench_function("warshall-bitset-closure", |b| {
        b.iter(|| matrix::reachability_closure(&csr))
    });
    group.bench_function("floyd-warshall-costs", |b| b.iter(|| matrix::floyd_warshall(&csr)));
    group.bench_function("seminaive-from-source", |b| {
        b.iter(|| tc::seminaive_closure(&rel, Some(&[NodeId(0)])))
    });
    group.bench_function("seminaive-full", |b| b.iter(|| tc::seminaive_closure(&rel, None)));
    group.bench_function("smart-squaring-full", |b| b.iter(|| tc::smart_closure(&rel)));
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
