//! Transitive closure kernel comparison: "at the implementation level one
//! needs an algorithm to efficiently process the transitive closure" (§1).
//!
//! Compares the per-fragment evaluator choices §2.1 leaves open ("any
//! suitable single-processor algorithm may be chosen"): Dijkstra,
//! bit-matrix Warshall, Floyd–Warshall and relational semi-naive.
//!
//! ```text
//! cargo bench -p ds-bench --bench kernels
//! ```

use ds_bench::harness::{render, Bench};
use ds_gen::{generate_general, GeneralConfig};
use ds_graph::{dijkstra, matrix, NodeId};
use ds_relation::{tc, PathTuple, Relation};

fn main() {
    let g = generate_general(&GeneralConfig::default(), 1); // 100 nodes, ~280 edges
    let csr = g.closure_graph();
    let rel = Relation::from_rows("R", csr.edges().map(PathTuple::from).collect::<Vec<_>>());

    let mut group = Bench::new("kernels-100-nodes").sample_size(20);
    group.run("dijkstra-single-source", || {
        dijkstra::single_source(&csr, NodeId(0))
    });
    group.run("warshall-bitset-closure", || {
        matrix::reachability_closure(&csr)
    });
    group.run("floyd-warshall-costs", || matrix::floyd_warshall(&csr));
    group.run("seminaive-from-source", || {
        tc::seminaive_closure(&rel, Some(&[NodeId(0)]))
    });
    group.run("seminaive-full", || tc::seminaive_closure(&rel, None));
    group.run("smart-squaring-full", || tc::smart_closure(&rel));
    println!("{}", render(group.results()));
}
