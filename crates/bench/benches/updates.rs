//! Incremental update maintenance vs rebuild-per-update.
//!
//! The paper's acknowledged weakness is "the careful treatment of
//! updates" (§2.1). This bench quantifies what incremental maintenance
//! buys: a mixed delete/insert workload applied through the engine's
//! affected-set repair (`ds_closure::updates::maintain`) against the
//! naive strategy of recomputing the complementary information after
//! every update, on the transportation and spatial (general random)
//! generators.
//!
//! The workload is a sequence of delete/re-insert pairs over
//! incremental-safe fragment edges, so the engine returns to its initial
//! state after every iteration — no per-iteration rebuild distorts the
//! measurement. A pre-flight pass asserts that no update in the workload
//! falls back to a full recompute.
//!
//! Emits a committed perf snapshot to `BENCH_updates.json` (repo root).
//!
//! ```text
//! cargo bench -p ds-bench --bench updates
//! ```

use ds_bench::harness::{render, write_json, Bench};
use ds_closure::api::{apply_update, NetworkUpdate, TcEngine};
use ds_closure::{ComplementaryInfo, DisconnectionSetEngine, EngineConfig};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::{semantic, CrossingPolicy, Fragmentation};
use ds_gen::{generate_general, generate_transportation, GeneralConfig, TransportationConfig};
use ds_graph::CsrGraph;

/// Up to `pairs` delete/re-insert pairs over fragment edges whose
/// deletion stays incremental (verified on a scratch engine).
fn safe_updates(engine: &DisconnectionSetEngine, pairs: usize) -> Vec<NetworkUpdate> {
    let frag = engine.fragmentation().clone();
    let border = |v| frag.fragments_of_node(v).len() >= 2;
    let mut out = Vec::new();
    'outer: for f in frag.fragments() {
        for e in f.edges() {
            if out.len() / 2 >= pairs {
                break 'outer;
            }
            if border(e.src) && border(e.dst) {
                continue; // DS-crossing deletions fall back by design
            }
            // The pair must match exactly one tuple, so delete + insert
            // restores the fragment verbatim.
            let matched = f
                .edges()
                .iter()
                .filter(|x| {
                    (x.src == e.src && x.dst == e.dst) || (x.src == e.dst && x.dst == e.src)
                })
                .count();
            if matched != 1 {
                continue;
            }
            let remove = NetworkUpdate::Remove {
                src: e.src,
                dst: e.dst,
                owner: f.id(),
            };
            let mut scratch = engine.clone();
            if scratch
                .update(&remove)
                .expect("valid update")
                .full_recompute
            {
                continue; // bridge: deletion would disconnect a border pair
            }
            out.push(remove);
            out.push(NetworkUpdate::Insert {
                edge: *e,
                owner: f.id(),
            });
        }
    }
    out
}

fn bench_workload(group: &mut Bench, label: &str, csr: CsrGraph, frag: Fragmentation) {
    let cfg = EngineConfig::default();
    let engine =
        DisconnectionSetEngine::build(csr.clone(), frag.clone(), true, cfg.clone()).unwrap();
    let updates = safe_updates(&engine, 8);
    assert!(
        updates.len() >= 8,
        "{label}: workload too small ({} updates)",
        updates.len()
    );

    // Pre-flight: the whole sequence must stay incremental.
    let mut check = engine.clone();
    let mut shipped = 0usize;
    for u in &updates {
        let report = check.update(u).expect("valid update");
        assert!(
            !report.full_recompute,
            "{label}: workload update fell back: {report:?}"
        );
        shipped += report.tuples_shipped;
    }
    println!(
        "{label}: {} updates, {} shortcut tuples shipped incrementally",
        updates.len(),
        shipped
    );

    let mut incremental = engine.clone();
    group.run(&format!("{label}/incremental"), || {
        let mut shipped = 0usize;
        for u in &updates {
            shipped += incremental.update(u).expect("valid update").tuples_shipped;
        }
        shipped
    });

    let mut graph = csr.clone();
    let mut rebuild_frag = frag.clone();
    group.run(&format!("{label}/rebuild-per-update"), || {
        let mut pairs = 0usize;
        for u in &updates {
            if let Some(g) = apply_update(&graph, &mut rebuild_frag, true, u).expect("valid") {
                graph = g;
            }
            let comp =
                ComplementaryInfo::compute(&graph, &rebuild_frag, cfg.scope, cfg.store_paths);
            pairs += comp.pair_count();
        }
        pairs
    });
}

fn main() {
    let mut group = Bench::new("updates").sample_size(12);

    // Transportation workload: clustered country networks, semantic
    // fragmentation (one site per country).
    let clusters = 10usize;
    let tcfg = TransportationConfig {
        clusters,
        nodes_per_cluster: 40,
        target_edges_per_cluster: 150,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&tcfg, 1);
    let labels = g.cluster_of.clone().unwrap();
    let frag = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        clusters,
        CrossingPolicy::LowerBlock,
    )
    .unwrap();
    bench_workload(&mut group, "transportation", g.closure_graph(), frag);

    // Spatial workload: uniform random graph in the plane, coordinate
    // sweep fragmentation.
    let scfg = GeneralConfig {
        nodes: 160,
        target_edges: 520,
        ..Default::default()
    };
    let g = generate_general(&scfg, 2);
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 4,
            ..Default::default()
        },
    )
    .unwrap()
    .fragmentation;
    bench_workload(&mut group, "spatial", g.closure_graph(), frag);

    println!("{}", render(group.results()));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_updates.json");
    write_json(path, group.results()).expect("write perf snapshot");
    println!("\nwrote {path}");
}
