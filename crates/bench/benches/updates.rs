//! Incremental update maintenance vs rebuild-per-update.
//!
//! The paper's acknowledged weakness is "the careful treatment of
//! updates" (§2.1). This bench quantifies what incremental maintenance
//! buys: a mixed delete/insert workload applied through the engine's
//! affected-set repair (`ds_closure::updates::maintain`) against the
//! naive strategy of recomputing the complementary information after
//! every update, on the transportation and spatial (general random)
//! generators.
//!
//! The workload is a sequence of delete/re-insert pairs over
//! incremental-safe fragment edges, so the engine returns to its initial
//! state after every iteration — no per-iteration rebuild distorts the
//! measurement. A pre-flight pass asserts that no update in the workload
//! falls back to a full recompute.
//!
//! **Seed sweep.** Each workload runs at `SEEDS.len()` (≥ 3) generator
//! seeds; the JSON carries per-seed rows plus one aggregate row per
//! strategy with min/median/max across the seed medians, and the
//! regression gate uses the **conservative bound** — the worst per-seed
//! incremental-vs-rebuild speedup — rather than a single median.
//!
//! Emits a committed perf snapshot to `BENCH_updates.json` (repo root).
//!
//! ```text
//! cargo bench -p ds-bench --bench updates
//! ```

use ds_bench::harness::{render, write_json, Bench};
use ds_closure::api::{apply_update, NetworkUpdate, TcEngine};
use ds_closure::{ComplementaryInfo, DisconnectionSetEngine, EngineConfig};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::{semantic, CrossingPolicy, Fragmentation};
use ds_gen::{generate_general, generate_transportation, GeneralConfig, TransportationConfig};
use ds_graph::CsrGraph;

/// Generator seeds swept per workload.
const SEEDS: [u64; 3] = [1, 2, 3];
/// Conservative (worst-seed) incremental-vs-rebuild speedup floors per
/// workload. Transportation sits near parity by design — its rebuild is
/// cheap (13 borders) — so its floor only guards against the incremental
/// path becoming *slower* than rebuilding; spatial is where incremental
/// maintenance pays.
const GATE_TRANSPORTATION: f64 = 0.5;
const GATE_SPATIAL: f64 = 2.0;

/// Up to `pairs` delete/re-insert pairs over fragment edges whose
/// deletion stays incremental (verified on a scratch engine).
fn safe_updates(engine: &DisconnectionSetEngine, pairs: usize) -> Vec<NetworkUpdate> {
    let frag = engine.fragmentation().clone();
    let border = |v| frag.fragments_of_node(v).len() >= 2;
    let mut out = Vec::new();
    'outer: for f in frag.fragments() {
        for e in f.edges() {
            if out.len() / 2 >= pairs {
                break 'outer;
            }
            if border(e.src) && border(e.dst) {
                continue; // DS-crossing deletions fall back by design
            }
            // The pair must match exactly one tuple, so delete + insert
            // restores the fragment verbatim.
            let matched = f
                .edges()
                .iter()
                .filter(|x| {
                    (x.src == e.src && x.dst == e.dst) || (x.src == e.dst && x.dst == e.src)
                })
                .count();
            if matched != 1 {
                continue;
            }
            let remove = NetworkUpdate::Remove {
                src: e.src,
                dst: e.dst,
                owner: f.id(),
            };
            let mut scratch = engine.clone();
            if scratch
                .update(&remove)
                .expect("valid update")
                .full_recompute
            {
                continue; // bridge: deletion would disconnect a border pair
            }
            out.push(remove);
            out.push(NetworkUpdate::Insert {
                edge: *e,
                owner: f.id(),
            });
        }
    }
    out
}

/// Measure one workload at one seed; returns the (incremental, rebuild)
/// per-sequence medians.
fn bench_workload(
    group: &mut Bench,
    label: &str,
    seed: u64,
    csr: CsrGraph,
    frag: Fragmentation,
) -> (f64, f64) {
    let cfg = EngineConfig::default();
    let engine =
        DisconnectionSetEngine::build(csr.clone(), frag.clone(), true, cfg.clone()).unwrap();
    let updates = safe_updates(&engine, 8);
    assert!(
        updates.len() >= 8,
        "{label}/seed-{seed}: workload too small ({} updates)",
        updates.len()
    );

    // Pre-flight: the whole sequence must stay incremental.
    let mut check = engine.clone();
    let mut shipped = 0usize;
    for u in &updates {
        let report = check.update(u).expect("valid update");
        assert!(
            !report.full_recompute,
            "{label}/seed-{seed}: workload update fell back: {report:?}"
        );
        shipped += report.tuples_shipped;
    }
    println!(
        "{label}/seed-{seed}: {} updates, {} shortcut tuples shipped incrementally",
        updates.len(),
        shipped
    );

    let mut incremental = engine.clone();
    let inc = group
        .run(&format!("{label}/incremental/seed-{seed}"), || {
            let mut shipped = 0usize;
            for u in &updates {
                shipped += incremental.update(u).expect("valid update").tuples_shipped;
            }
            shipped
        })
        .median_ns;

    let mut graph = csr.clone();
    let mut rebuild_frag = frag.clone();
    let reb = group
        .run(&format!("{label}/rebuild-per-update/seed-{seed}"), || {
            let mut pairs = 0usize;
            for u in &updates {
                if let Some(g) = apply_update(&graph, &mut rebuild_frag, true, u).expect("valid") {
                    graph = g;
                }
                let comp =
                    ComplementaryInfo::compute(&graph, &rebuild_frag, cfg.scope, cfg.store_paths);
                pairs += comp.pair_count();
            }
            pairs
        })
        .median_ns;
    (inc, reb)
}

fn main() {
    let mut group = Bench::new("updates").sample_size(12);
    let mut worst: Vec<(&str, f64)> = Vec::new();

    for (label, gate) in [
        ("transportation", GATE_TRANSPORTATION),
        ("spatial", GATE_SPATIAL),
    ] {
        let (mut incs, mut rebs) = (Vec::new(), Vec::new());
        for &seed in &SEEDS {
            let (csr, frag) = if label == "transportation" {
                // Clustered country networks, semantic fragmentation
                // (one site per country).
                let clusters = 10usize;
                let tcfg = TransportationConfig {
                    clusters,
                    nodes_per_cluster: 40,
                    target_edges_per_cluster: 150,
                    ..TransportationConfig::default()
                };
                let g = generate_transportation(&tcfg, seed);
                let labels = g.cluster_of.clone().unwrap();
                let frag = semantic::by_labels(
                    g.nodes,
                    &g.connections,
                    &labels,
                    clusters,
                    CrossingPolicy::LowerBlock,
                )
                .unwrap();
                (g.closure_graph(), frag)
            } else {
                // Uniform random graph in the plane, coordinate sweep
                // fragmentation.
                let scfg = GeneralConfig {
                    nodes: 160,
                    target_edges: 520,
                    ..Default::default()
                };
                let g = generate_general(&scfg, seed + 1);
                let frag = linear_sweep(
                    &g.edge_list(),
                    &LinearConfig {
                        fragments: 4,
                        ..Default::default()
                    },
                )
                .unwrap()
                .fragmentation;
                (g.closure_graph(), frag)
            };
            let (inc, reb) = bench_workload(&mut group, label, seed, csr, frag);
            incs.push(inc);
            rebs.push(reb);
        }
        group.record(&format!("{label}/incremental"), &incs);
        group.record(&format!("{label}/rebuild-per-update"), &rebs);
        // Pair each seed's incremental run with its own rebuild baseline;
        // the conservative bound is the worst seed.
        let worst_speedup = incs
            .iter()
            .zip(&rebs)
            .map(|(i, r)| r / i)
            .fold(f64::INFINITY, f64::min);
        println!("{label}: worst-seed incremental speedup {worst_speedup:.2}x (floor {gate}x)");
        worst.push((label, worst_speedup));
    }

    println!("{}", render(group.results()));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_updates.json");
    write_json(path, group.results()).expect("write perf snapshot");
    println!("\nwrote {path}");

    // Regression gates on the conservative bound (fail the CI job).
    for (label, worst_speedup) in worst {
        let gate = if label == "transportation" {
            GATE_TRANSPORTATION
        } else {
            GATE_SPATIAL
        };
        assert!(
            worst_speedup >= gate,
            "{label}: incremental maintenance reached only {worst_speedup:.2}x \
             rebuild-per-update on the worst seed (floor {gate}x)"
        );
    }
}
