//! Relational operator benches: naive vs semi-naive iteration (the
//! intermediate-result blowup §2.2 worries about) and the min-plus join
//! of the final assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds_gen::deterministic::{cycle, grid};
use ds_graph::NodeId;
use ds_relation::join::compose_min_plus;
use ds_relation::{tc, PathTuple, Relation};

fn rel_of(g: &ds_gen::GeneratedGraph) -> Relation<PathTuple> {
    Relation::from_rows(
        "R",
        g.closure_graph().edges().map(PathTuple::from).collect::<Vec<_>>(),
    )
}

fn bench_tc_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc-strategy");
    group.sample_size(10);
    for n in [16usize, 32] {
        let rel = rel_of(&cycle(n));
        group.bench_with_input(BenchmarkId::new("naive", n), &rel, |b, r| {
            b.iter(|| tc::naive_closure(r, None))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &rel, |b, r| {
            b.iter(|| tc::seminaive_closure(r, None))
        });
    }
    group.finish();
}

fn bench_assembly_join(c: &mut Criterion) {
    // Small border matrices, as the final assembly sees them.
    let g = grid(12, 4);
    let rel = rel_of(&g);
    let left = rel.select(|t| t.src.0 < 8);
    let right = rel.select(|t| t.src.0 >= 8);
    let mut group = c.benchmark_group("assembly");
    group.bench_function("compose-min-plus", |b| b.iter(|| compose_min_plus(&left, &right)));
    group.bench_function("min-cost-aggregate", |b| b.iter(|| rel.min_cost()));
    group.bench_function("keyhole-selection", |b| {
        b.iter(|| rel.select(|t| t.src == NodeId(0)))
    });
    group.finish();
}

criterion_group!(benches, bench_tc_strategies, bench_assembly_join);
criterion_main!(benches);
