//! Relational operator benches: naive vs semi-naive iteration (the
//! intermediate-result blowup §2.2 worries about) and the min-plus join
//! of the final assembly.
//!
//! ```text
//! cargo bench -p ds-bench --bench relational
//! ```

use ds_bench::harness::{render, Bench};
use ds_gen::deterministic::{cycle, grid};
use ds_graph::NodeId;
use ds_relation::join::compose_min_plus;
use ds_relation::{tc, PathTuple, Relation};

fn rel_of(g: &ds_gen::GeneratedGraph) -> Relation<PathTuple> {
    Relation::from_rows(
        "R",
        g.closure_graph()
            .edges()
            .map(PathTuple::from)
            .collect::<Vec<_>>(),
    )
}

fn main() {
    let mut results = Vec::new();

    let mut group = Bench::new("tc-strategy").sample_size(10);
    for n in [16usize, 32] {
        let rel = rel_of(&cycle(n));
        group.run(&format!("naive/{n}"), || tc::naive_closure(&rel, None));
        group.run(&format!("seminaive/{n}"), || {
            tc::seminaive_closure(&rel, None)
        });
    }
    results.extend(group.into_results());

    // Small border matrices, as the final assembly sees them.
    let g = grid(12, 4);
    let rel = rel_of(&g);
    let left = rel.select(|t| t.src.0 < 8);
    let right = rel.select(|t| t.src.0 >= 8);
    let mut group = Bench::new("assembly").sample_size(20);
    group.run("compose-min-plus", || compose_min_plus(&left, &right));
    group.run("min-cost-aggregate", || rel.min_cost());
    group.run("keyhole-selection", || rel.select(|t| t.src == NodeId(0)));
    results.extend(group.into_results());

    println!("{}", render(&results));
}
