//! Bulk transitive-closure materialization: fragmented-parallel vs
//! sequential semi-naive, plus the per-query engine sweeping the same
//! pairs through `query_batch`.
//!
//! Three strategies materialize (or enumerate) the same closure:
//!
//! * **sequential-seminaive** — `tc::seminaive_closure` on the union
//!   relation, one global fixpoint;
//! * **fragmented-parallel** — `ds_relation::bulk::MaterializeEngine`,
//!   per-fragment fixpoint workers with disconnection-set-selected delta
//!   exchange (timed *including* partitioning and index build, so the
//!   comparison starts from the same `Fragmentation` the sequential arm's
//!   prebuilt union relation came from);
//! * **query-batch-sweep** — the deployed engine answering a
//!   sources × all-nodes sweep through `TcEngine::query_batch`
//!   (informational: what materializing via the per-query path costs).
//!
//! A pre-flight pass asserts the fragmented result is tuple-identical to
//! the sequential one on every workload × seed.
//!
//! **Seed sweep.** Each workload runs at `SEEDS.len()` (≥ 3) generator
//! seeds; the JSON carries per-seed rows plus one aggregate row per
//! strategy, and the regression gate uses the **conservative bound** —
//! the worst per-seed fragmented-vs-sequential speedup. The floor is 1x:
//! even on a single-core runner the fragmented engine must not lose to
//! the global fixpoint (fragment-local probing generates strictly fewer
//! candidate tuples); parallel headroom on multi-core machines is upside
//! on top.
//!
//! Emits a committed perf snapshot to `BENCH_materialize.json` (repo
//! root).
//!
//! ```text
//! cargo bench -p ds-bench --bench materialize
//! ```

use ds_bench::harness::{render, write_json, Bench};
use ds_closure::api::{QueryRequest, TcEngine};
use ds_closure::{DisconnectionSetEngine, EngineConfig};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::{semantic, CrossingPolicy, Fragmentation};
use ds_gen::{generate_general, generate_transportation, GeneralConfig, TransportationConfig};
use ds_graph::{CsrGraph, NodeId};
use ds_relation::bulk::{FragmentPartition, MaterializeConfig, MaterializeEngine};
use ds_relation::tc;

/// Generator seeds swept per workload.
const SEEDS: [u64; 3] = [1, 2, 3];
/// Conservative (worst-seed) fragmented-vs-sequential speedup floors.
const GATE_TRANSPORTATION: f64 = 1.0;
const GATE_SPATIAL: f64 = 1.0;
/// Sources in the query-batch sweep arm.
const SWEEP_SOURCES: u32 = 16;

fn workload(label: &str, seed: u64) -> (CsrGraph, Fragmentation) {
    if label == "transportation" {
        // Clustered country networks, semantic fragmentation (one site
        // per country).
        let clusters = 6usize;
        let cfg = TransportationConfig {
            clusters,
            nodes_per_cluster: 20,
            target_edges_per_cluster: 70,
            ..TransportationConfig::default()
        };
        let g = generate_transportation(&cfg, seed);
        let labels = g.cluster_of.clone().unwrap();
        let frag = semantic::by_labels(
            g.nodes,
            &g.connections,
            &labels,
            clusters,
            CrossingPolicy::LowerBlock,
        )
        .unwrap();
        (g.closure_graph(), frag)
    } else {
        // Uniform random graph in the plane, coordinate sweep
        // fragmentation.
        let cfg = GeneralConfig {
            nodes: 160,
            target_edges: 300,
            ..Default::default()
        };
        let g = generate_general(&cfg, seed + 1);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        (g.closure_graph(), frag)
    }
}

/// Measure one workload at one seed; returns the (sequential,
/// fragmented) medians.
fn bench_workload(group: &mut Bench, label: &str, seed: u64) -> (f64, f64) {
    let (csr, frag) = workload(label, seed);
    let partition = FragmentPartition::new(&frag, true);
    let union = partition.union_relation();

    // Pre-flight: tuple-identical results, and the exchange really ran.
    let (seq_rel, seq_stats) = tc::seminaive_closure(&union, None);
    let preflight =
        MaterializeEngine::from_fragmentation(&frag, true, MaterializeConfig::default());
    let (bulk_rel, bulk_stats) = preflight.materialize().unwrap();
    assert_eq!(
        bulk_rel.rows(),
        seq_rel.rows(),
        "{label}/seed-{seed}: fragmented result must be tuple-identical"
    );
    assert!(
        bulk_stats.exchanged_tuples > 0,
        "{label}/seed-{seed}: no cross-fragment exchange — workload degenerate"
    );
    println!(
        "{label}/seed-{seed}: {} tuples; sequential {}; fragmented {}",
        seq_rel.len(),
        seq_stats,
        bulk_stats
    );

    let seq = group
        .run(&format!("{label}/sequential-seminaive/seed-{seed}"), || {
            tc::seminaive_closure(&union, None).0.len()
        })
        .median_ns;

    let bulk = group
        .run(&format!("{label}/fragmented-parallel/seed-{seed}"), || {
            MaterializeEngine::from_fragmentation(&frag, true, MaterializeConfig::default())
                .materialize()
                .unwrap()
                .0
                .len()
        })
        .median_ns;

    // Informational arm: the per-query engine enumerating the same
    // distances for a sources × all-nodes sweep.
    let mut engine =
        DisconnectionSetEngine::build(csr.clone(), frag.clone(), true, EngineConfig::default())
            .unwrap();
    let n = csr.node_count() as u32;
    let requests: Vec<QueryRequest> = (0..SWEEP_SOURCES.min(n))
        .flat_map(|x| (0..n).map(move |y| QueryRequest::new(NodeId(x), NodeId(y))))
        .collect();
    group.run(&format!("{label}/query-batch-sweep/seed-{seed}"), || {
        engine.query_batch(&requests).answers.len()
    });

    (seq, bulk)
}

fn main() {
    let mut group = Bench::new("materialize").sample_size(10);
    let mut worst: Vec<(&str, f64, f64)> = Vec::new();

    for (label, gate) in [
        ("transportation", GATE_TRANSPORTATION),
        ("spatial", GATE_SPATIAL),
    ] {
        let (mut seqs, mut bulks) = (Vec::new(), Vec::new());
        for &seed in &SEEDS {
            let (seq, bulk) = bench_workload(&mut group, label, seed);
            seqs.push(seq);
            bulks.push(bulk);
        }
        group.record(&format!("{label}/sequential-seminaive"), &seqs);
        group.record(&format!("{label}/fragmented-parallel"), &bulks);
        // Pair each seed's fragmented run with its own sequential
        // baseline; the conservative bound is the worst seed.
        let worst_speedup = seqs
            .iter()
            .zip(&bulks)
            .map(|(s, b)| s / b)
            .fold(f64::INFINITY, f64::min);
        println!("{label}: worst-seed fragmented speedup {worst_speedup:.2}x (floor {gate}x)");
        worst.push((label, worst_speedup, gate));
    }

    println!("{}", render(group.results()));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_materialize.json");
    write_json(path, group.results()).expect("write perf snapshot");
    println!("\nwrote {path}");

    // Regression gates on the conservative bound (fail the CI job).
    for (label, worst_speedup, gate) in worst {
        assert!(
            worst_speedup >= gate,
            "{label}: fragmented materialization reached only {worst_speedup:.2}x \
             sequential semi-naive on the worst seed (floor {gate}x)"
        );
    }
}
