//! Skeleton-overlay precompute vs the global-sweep baseline.
//!
//! The paper's acknowledged dominant cost is "the pre-processing required
//! for building the complementary information" (§2.1). This bench
//! quantifies what the skeleton overlay buys: fragment-local border
//! sweeps plus a tiny border-skeleton closure
//! (`ComplementaryInfo::compute`) against one whole-graph Dijkstra per
//! border node (`ComplementaryInfo::compute_global_sweep`), on the
//! transportation, spatial and general workloads.
//!
//! Before measuring, the two strategies are asserted to produce
//! *identical* shortcut tables, tuple for tuple. After measuring, the
//! bench **fails** (non-zero exit, failing the CI job) if the skeleton
//! path is not faster than the global-sweep baseline it replaces.
//!
//! Emits a committed perf snapshot to `BENCH_precompute.json` (repo
//! root).
//!
//! ```text
//! cargo bench -p ds-bench --bench precompute
//! ```

use ds_bench::harness::{render, write_json, Bench};
use ds_closure::{ComplementaryInfo, ComplementaryScope};
use ds_fragment::center::{center_based, CenterConfig};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::{semantic, CrossingPolicy, Fragmentation};
use ds_gen::{
    generate_ellipse, generate_general, generate_transportation, EllipseConfig, GeneralConfig,
    TransportationConfig,
};
use ds_graph::CsrGraph;

/// Minimum required speedup (global / skeleton) per workload. The
/// workloads matching the paper's small-disconnection-set premise must
/// be comfortably faster (measured ~2.5-3x; gated at 1.5x to absorb
/// runner noise); the adversarial general workload — where center-based
/// growth makes half the nodes borders — hovers at parity (measured
/// 0.96-1.1x), so its floor only catches catastrophic regressions
/// (e.g. the dense-skeleton state this PR started from measured 0.44x)
/// without tripping on shared-runner variance.
const GATES: [(&str, f64); 3] = [("transportation", 1.5), ("spatial", 1.5), ("general", 0.7)];

/// Measure both strategies on one workload; returns
/// `(global_median_ns, skeleton_median_ns)`.
fn bench_workload(
    group: &mut Bench,
    label: &str,
    csr: &CsrGraph,
    frag: &Fragmentation,
) -> (f64, f64) {
    let scope = ComplementaryScope::default();
    // Sanity: identical tables before timing anything.
    let skel = ComplementaryInfo::compute(csr, frag, scope, false);
    let glob = ComplementaryInfo::compute_global_sweep(csr, frag, scope, false);
    assert_eq!(skel.pair_count(), glob.pair_count(), "{label}: pair count");
    for f in 0..frag.fragment_count() {
        assert_eq!(skel.shortcuts(f), glob.shortcuts(f), "{label}: site {f}");
    }
    println!(
        "{label}: {} border nodes, {} shortcut tuples, phases {:?}",
        skel.border_count(),
        skel.pair_count(),
        skel.precompute_stats()
    );

    let global_ns = group
        .run(&format!("{label}/global-sweep"), || {
            ComplementaryInfo::compute_global_sweep(csr, frag, scope, false).pair_count()
        })
        .median_ns;
    let skeleton_ns = group
        .run(&format!("{label}/skeleton"), || {
            ComplementaryInfo::compute(csr, frag, scope, false).pair_count()
        })
        .median_ns;
    (global_ns, skeleton_ns)
}

fn main() {
    let mut group = Bench::new("precompute").sample_size(12);
    let mut gated: Vec<(String, f64, f64)> = Vec::new();

    // Transportation workload: clustered country networks, semantic
    // fragmentation (one site per country).
    let clusters = 10usize;
    let tcfg = TransportationConfig {
        clusters,
        nodes_per_cluster: 40,
        target_edges_per_cluster: 150,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&tcfg, 1);
    let labels = g.cluster_of.clone().unwrap();
    let frag = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        clusters,
        CrossingPolicy::LowerBlock,
    )
    .unwrap();
    let csr = g.closure_graph();
    let (glob, skel) = bench_workload(&mut group, "transportation", &csr, &frag);
    gated.push(("transportation".into(), glob, skel));

    // Spatial workload: the paper's elongated ellipse graphs with local
    // connections (§4.1, Fig. 8), coordinate sweep fragmentation — thin
    // strip boundaries, the setting the disconnection-set approach
    // assumes.
    let scfg = EllipseConfig {
        nodes: 900,
        target_edges: 2700,
        c2: 0.15,
        a: 900.0,
        b: 40.0,
        ..Default::default()
    };
    let g = generate_ellipse(&scfg, 2);
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 9,
            ..Default::default()
        },
    )
    .unwrap()
    .fragmentation;
    let csr = g.closure_graph();
    let (glob, skel) = bench_workload(&mut group, "spatial", &csr, &frag);
    gated.push(("spatial".into(), glob, skel));

    // General workload: unstructured random graph, center-based growth
    // fragmentation. This is the adversarial case — the ragged growth
    // frontiers make roughly half the nodes borders, far outside the
    // paper's small-disconnection-set premise — and bounds how the
    // skeleton behaves when fragmentation quality is poor.
    let gcfg = GeneralConfig {
        nodes: 400,
        target_edges: 1100,
        c2: 0.15,
        ..Default::default()
    };
    let g = generate_general(&gcfg, 3);
    let frag = center_based(
        &g.edge_list(),
        &CenterConfig {
            fragments: 5,
            ..Default::default()
        },
    )
    .unwrap()
    .fragmentation;
    let csr = g.closure_graph();
    let (glob, skel) = bench_workload(&mut group, "general", &csr, &frag);
    gated.push(("general".into(), glob, skel));

    println!("{}", render(group.results()));
    for (label, glob, skel) in &gated {
        println!(
            "{label}: skeleton {:.2}x faster than global-sweep",
            glob / skel
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_precompute.json");
    write_json(path, group.results()).expect("write perf snapshot");
    println!("\nwrote {path}");

    // Regression gate (fails the CI job): the skeleton path must not
    // fall below its per-workload floor against the global-sweep
    // baseline it replaces.
    for (label, glob, skel) in &gated {
        let floor = GATES
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, f)| f)
            .expect("every workload has a gate");
        let speedup = glob / skel;
        assert!(
            speedup >= floor,
            "{label}: skeleton precompute regressed — {speedup:.2}x vs the \
             global-sweep baseline, floor {floor}x ({skel:.0} ns vs {glob:.0} ns)"
        );
    }
}
