//! `query_batch` amortization across execution backends.
//!
//! Compares, on both `TcEngine` backends (inline and site-threads),
//! answering a workload of shortest-path requests one query at a time vs
//! through `query_batch`, which enumerates fragment chains once per
//! (source-fragment, target-fragment) pair and reuses the interior
//! segment relations of each chain across the whole batch.
//!
//! Emits a committed perf snapshot to `BENCH_batch.json` (repo root).
//!
//! ```text
//! cargo bench -p ds-bench --bench batch
//! ```

use discset::{Backend, Fragmenter, QueryRequest, System, TcEngine};
use ds_bench::harness::{render, write_json, Bench};
use ds_closure::executor::ExecutionMode;
use ds_closure::EngineConfig;
use ds_fragment::CrossingPolicy;
use ds_gen::{generate_transportation, TransportationConfig};
use ds_graph::NodeId;

/// A workload whose requests concentrate on few fragment pairs — the
/// shape batching is designed for (many point-to-point queries between
/// two regions, e.g. a morning of Amsterdam->Milan lookups).
fn workload(nodes: usize, queries: usize) -> Vec<QueryRequest> {
    let n = nodes as u32;
    (0..queries as u32)
        .map(|i| QueryRequest::new(NodeId(i * 7 % 20), NodeId(n - 1 - (i * 11 % 20))))
        .collect()
}

fn main() {
    let clusters = 6usize;
    let nodes_per_cluster = 30;
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster,
        target_edges_per_cluster: nodes_per_cluster * 4,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, 1);
    let labels = g.cluster_of.clone().unwrap();
    let fragmenter = Fragmenter::ByLabels {
        labels,
        parts: clusters,
        policy: CrossingPolicy::LowerBlock,
    };
    let requests = workload(g.nodes, 64);

    let mut group = Bench::new("query-batch").sample_size(15);
    let mut amortization = Vec::new();
    for backend in [Backend::Inline, Backend::SiteThreads] {
        let mut sys = System::builder()
            .graph(&g)
            .fragmenter(fragmenter.clone())
            .backend(backend)
            .config(EngineConfig {
                mode: ExecutionMode::Sequential,
                ..EngineConfig::default()
            })
            .build()
            .expect("system deploys");
        let name = sys.backend_name();

        group.run(&format!("{name}/single-queries"), || {
            let mut total = 0u64;
            for req in &requests {
                total += sys.shortest_path(req.source, req.target).cost.unwrap_or(0);
            }
            total
        });
        group.run(&format!("{name}/query-batch"), || {
            sys.query_batch(&requests).answers.len()
        });

        let stats = sys.query_batch(&requests).stats;
        amortization.push(format!(
            "{name}: {} queries -> {} plans computed ({} reused), \
             {} segments computed ({} reused), {:.0}% amortized",
            stats.queries,
            stats.plans_computed,
            stats.plans_reused,
            stats.segments_computed,
            stats.segments_reused,
            stats.amortization() * 100.0
        ));
    }

    println!("{}", render(group.results()));
    for line in &amortization {
        println!("{line}");
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    write_json(path, group.results()).expect("write perf snapshot");
    println!("\nwrote {path}");
}
