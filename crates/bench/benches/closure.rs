//! Query latency: disconnection set approach (sequential and parallel
//! phase one) vs the centralized baseline — the end-to-end comparison
//! behind the paper's speed-up claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds_closure::baseline;
use ds_closure::engine::{DisconnectionSetEngine, EngineConfig};
use ds_closure::executor::ExecutionMode;
use ds_fragment::{semantic, CrossingPolicy};
use ds_gen::{generate_transportation, TransportationConfig};
use ds_graph::NodeId;

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    group.sample_size(20);
    for clusters in [4usize, 8] {
        let nodes_per_cluster = 40;
        let cfg = TransportationConfig {
            clusters,
            nodes_per_cluster,
            target_edges_per_cluster: nodes_per_cluster * 4,
            ..TransportationConfig::default()
        };
        let g = generate_transportation(&cfg, 1);
        let labels = g.cluster_of.clone().unwrap();
        let frag = semantic::by_labels(
            g.nodes,
            &g.connections,
            &labels,
            clusters,
            CrossingPolicy::LowerBlock,
        )
        .unwrap();
        let csr = g.closure_graph();
        let seq = DisconnectionSetEngine::build(
            csr.clone(),
            frag.clone(),
            true,
            EngineConfig::default(),
        )
        .unwrap();
        let par = DisconnectionSetEngine::build(
            csr.clone(),
            frag,
            true,
            EngineConfig { mode: ExecutionMode::Parallel, ..EngineConfig::default() },
        )
        .unwrap();
        // First cluster to last cluster: the longest chain.
        let (x, y) = (NodeId(0), NodeId((clusters as u32 - 1) * nodes_per_cluster as u32 + 7));

        group.bench_with_input(BenchmarkId::new("centralized-dijkstra", clusters), &csr, |b, csr| {
            b.iter(|| baseline::shortest_path_cost(csr, x, y))
        });
        group.bench_with_input(BenchmarkId::new("ds-sequential", clusters), &seq, |b, e| {
            b.iter(|| e.shortest_path(x, y).cost)
        });
        group.bench_with_input(BenchmarkId::new("ds-parallel", clusters), &par, |b, e| {
            b.iter(|| e.shortest_path(x, y).cost)
        });
    }
    group.finish();
}

fn bench_precompute(c: &mut Criterion) {
    // The paper's acknowledged cost: "the pre-processing required for
    // building the complementary information".
    let mut group = c.benchmark_group("precompute");
    group.sample_size(10);
    let cfg = TransportationConfig::table1();
    let g = generate_transportation(&cfg, 1);
    let labels = g.cluster_of.clone().unwrap();
    let frag =
        semantic::by_labels(g.nodes, &g.connections, &labels, 4, CrossingPolicy::LowerBlock)
            .unwrap();
    let csr = g.closure_graph();
    group.bench_function("engine-build-4x25", |b| {
        b.iter(|| {
            DisconnectionSetEngine::build(
                csr.clone(),
                frag.clone(),
                true,
                EngineConfig::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_closure, bench_precompute);
criterion_main!(benches);
