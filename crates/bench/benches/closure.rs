//! Query latency: disconnection set approach (sequential and parallel
//! phase one) vs the centralized baseline — the end-to-end comparison
//! behind the paper's speed-up claim.
//!
//! ```text
//! cargo bench -p ds-bench --bench closure
//! ```

use ds_bench::harness::{render, Bench};
use ds_closure::baseline;
use ds_closure::engine::{DisconnectionSetEngine, EngineConfig};
use ds_closure::executor::ExecutionMode;
use ds_fragment::{semantic, CrossingPolicy};
use ds_gen::{generate_transportation, TransportationConfig};
use ds_graph::NodeId;

fn bench_closure(results: &mut Vec<ds_bench::harness::BenchResult>) {
    let mut group = Bench::new("closure").sample_size(20);
    for clusters in [4usize, 8] {
        let nodes_per_cluster = 40;
        let cfg = TransportationConfig {
            clusters,
            nodes_per_cluster,
            target_edges_per_cluster: nodes_per_cluster * 4,
            ..TransportationConfig::default()
        };
        let g = generate_transportation(&cfg, 1);
        let labels = g.cluster_of.clone().unwrap();
        let frag = semantic::by_labels(
            g.nodes,
            &g.connections,
            &labels,
            clusters,
            CrossingPolicy::LowerBlock,
        )
        .unwrap();
        let csr = g.closure_graph();
        let seq =
            DisconnectionSetEngine::build(csr.clone(), frag.clone(), true, EngineConfig::default())
                .unwrap();
        let par = DisconnectionSetEngine::build(
            csr.clone(),
            frag,
            true,
            EngineConfig {
                mode: ExecutionMode::Parallel,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // First cluster to last cluster: the longest chain.
        let (x, y) = (
            NodeId(0),
            NodeId((clusters as u32 - 1) * nodes_per_cluster as u32 + 7),
        );

        group.run(&format!("centralized-dijkstra/{clusters}"), || {
            baseline::shortest_path_cost(&csr, x, y)
        });
        group.run(&format!("ds-sequential/{clusters}"), || {
            seq.shortest_path(x, y).cost
        });
        group.run(&format!("ds-parallel/{clusters}"), || {
            par.shortest_path(x, y).cost
        });
    }
    results.extend(group.into_results());
}

fn bench_precompute(results: &mut Vec<ds_bench::harness::BenchResult>) {
    // The paper's acknowledged cost: "the pre-processing required for
    // building the complementary information".
    let mut group = Bench::new("precompute").sample_size(10);
    let cfg = TransportationConfig::table1();
    let g = generate_transportation(&cfg, 1);
    let labels = g.cluster_of.clone().unwrap();
    let frag = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        4,
        CrossingPolicy::LowerBlock,
    )
    .unwrap();
    let csr = g.closure_graph();
    group.run("engine-build-4x25", || {
        DisconnectionSetEngine::build(csr.clone(), frag.clone(), true, EngineConfig::default())
            .unwrap()
    });
    results.extend(group.into_results());
}

fn main() {
    let mut results = Vec::new();
    bench_closure(&mut results);
    bench_precompute(&mut results);
    println!("{}", render(&results));
}
