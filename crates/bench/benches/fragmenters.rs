//! Fragmentation algorithm cost vs graph size.
//!
//! Times each of the three §3 algorithms on transportation graphs of
//! growing size. The paper flags the k-connectivity idea as "very
//! computation intensive"; this bench quantifies what its replacements
//! cost instead.
//!
//! ```text
//! cargo bench -p ds-bench --bench fragmenters
//! ```

use ds_bench::harness::{render, Bench};
use ds_fragment::bond_energy::{bond_energy, BondEnergyConfig, SplitRule};
use ds_fragment::center::{center_based, CenterConfig, CenterSelection};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_gen::{generate_transportation, TransportationConfig};

fn main() {
    let mut group = Bench::new("fragmenters").sample_size(10);
    for nodes_per_cluster in [25usize, 50] {
        let cfg = TransportationConfig {
            clusters: 4,
            nodes_per_cluster,
            target_edges_per_cluster: nodes_per_cluster * 4,
            ..TransportationConfig::default()
        };
        let g = generate_transportation(&cfg, 1);
        let el = g.edge_list();
        let n = cfg.total_nodes();

        group.run(&format!("center-based/{n}"), || {
            center_based(
                &el,
                &CenterConfig {
                    fragments: 4,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        group.run(&format!("distributed-centers/{n}"), || {
            center_based(
                &el,
                &CenterConfig {
                    fragments: 4,
                    selection: CenterSelection::Distributed { pool_factor: 8.0 },
                    ..Default::default()
                },
            )
            .unwrap()
        });
        group.run(&format!("bond-energy/{n}"), || {
            bond_energy(
                &el,
                &BondEnergyConfig {
                    split: SplitRule::CutBelowThreshold(4),
                    min_block_edges: 30,
                    // Cap restarts so the bench scales; the tables use
                    // the full restart loop.
                    max_restarts: Some(8),
                    ..Default::default()
                },
            )
            .unwrap()
        });
        group.run(&format!("linear/{n}"), || {
            linear_sweep(
                &el,
                &LinearConfig {
                    fragments: 4,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }
    println!("{}", render(group.results()));
}
