//! # ds-bench — experiment drivers reproducing the paper's evaluation
//!
//! One driver per table/figure/claim of Houtsma, Apers & Schipper (ICDE
//! 1993), per the experiment index in `DESIGN.md`:
//!
//! | id | paper artifact | driver |
//! |----|----------------|--------|
//! | `table1` | Table 1 (transportation, 4×25 nodes)     | [`experiments::tables::table1`] |
//! | `table2` | Table 2 (distributed centers, 4×150)     | [`experiments::tables::table2`] |
//! | `table3` | Table 3 (general graphs, 100 nodes)      | [`experiments::tables::table3`] |
//! | `fig5`   | Fig. 5 worked matrix-split example       | [`experiments::figures::fig5`] |
//! | `fig8`   | Fig. 8 sweep-direction effect            | [`experiments::figures::fig8`] |
//! | `fig2`   | Figs. 1–3 loose-connectivity structure   | [`experiments::figures::fig2`] |
//! | `speedup`| §2.1 "linear speed-up" claim             | [`experiments::speedup`] |
//! | `iters`  | §2.1 iterations ≈ diameter claim         | [`experiments::iters`] |
//! | `ablation` | design-choice ablations (DESIGN.md)    | [`experiments::ablation`] |
//! | `phe`    | §5 Parallel Hierarchical Evaluation      | [`experiments::phe_exp`] |
//!
//! Run them with `cargo run --release -p ds-bench --bin repro -- <id>|all`.
//! The drivers return structured rows (so integration tests can assert the
//! paper's *shape* claims) and the binary renders them as tables.

pub mod experiments;
pub mod harness;
pub mod table;

/// Number of random graphs each table row is averaged over when run from
/// the `repro` binary (the paper averaged over generated graph sets too).
pub const DEFAULT_SEEDS: u64 = 10;
