//! Tables 1–3: fragmentation characteristics per algorithm.
//!
//! The paper's rows and their expected *shape* (§4.2):
//! * Table 1 (transportation, 4 clusters × 25 nodes, ≈429 edges): the
//!   bond-energy algorithm yields the smallest D̄S (2.4 in the paper);
//!   linear ignores DS size (13.3); center-based balances fragment sizes
//!   best; only center-based hits the requested fragment count exactly.
//! * Table 2 (4 × 150 nodes, ≈3167 edges): distributed centers cut D̄S
//!   from 69.5 to 4.3 and ΔF from 636.3 to 12.4 at equal F̄.
//! * Table 3 (general graphs, 100 nodes, ≈279.5 edges): same goals hold
//!   without the cluster structure — BEA D̄S ≈ 5.4 smallest, linear D̄S
//!   ≈ 35.8 largest but ΔDS smallest, center rows balance best.

use ds_fragment::bond_energy::{bond_energy, BondEnergyConfig, SplitRule};
use ds_fragment::center::{center_based, CenterConfig, CenterSelection};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::Fragmentation;
use ds_gen::{
    generate_general, generate_transportation, GeneralConfig, GeneratedGraph, TransportationConfig,
};

use super::{average_row, AveragedRow};

/// The algorithm roster used by the table experiments.
#[derive(Clone, Debug)]
pub enum Algo {
    CenterBased { fragments: usize },
    DistributedCenters { fragments: usize },
    BondEnergy(BondEnergyConfig),
    Linear { fragments: usize },
}

impl Algo {
    /// Human name matching the paper's row labels.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::CenterBased { .. } => "center-based",
            Algo::DistributedCenters { .. } => "distributed centers",
            Algo::BondEnergy(_) => "bond-energy",
            Algo::Linear { .. } => "linear",
        }
    }

    /// Run the algorithm on one generated graph.
    pub fn run(&self, g: &GeneratedGraph) -> Fragmentation {
        let el = g.edge_list();
        let frag = match self {
            Algo::CenterBased { fragments } => {
                center_based(
                    &el,
                    &CenterConfig {
                        fragments: *fragments,
                        ..Default::default()
                    },
                )
                .expect("generated graphs are non-empty")
                .fragmentation
            }
            Algo::DistributedCenters { fragments } => {
                center_based(
                    &el,
                    &CenterConfig {
                        fragments: *fragments,
                        selection: CenterSelection::Distributed { pool_factor: 8.0 },
                        ..Default::default()
                    },
                )
                .expect("generated graphs are non-empty")
                .fragmentation
            }
            Algo::BondEnergy(cfg) => {
                bond_energy(&el, cfg)
                    .expect("generated graphs are non-empty")
                    .fragmentation
            }
            Algo::Linear { fragments } => {
                linear_sweep(
                    &el,
                    &LinearConfig {
                        fragments: *fragments,
                        ..Default::default()
                    },
                )
                .expect("generated graphs carry coordinates")
                .fragmentation
            }
        };
        frag.validate(&g.connections)
            .expect("algorithms must partition the relation");
        frag
    }
}

/// BEA configuration for clustered transportation graphs: the threshold
/// sits just above the expected inter-cluster link count (2.25 in
/// Table 1's graphs), so cuts land on cluster borders.
pub fn bea_transportation() -> BondEnergyConfig {
    BondEnergyConfig {
        split: SplitRule::CutBelowThreshold(4),
        min_block_edges: 30,
        max_restarts: None,
        ..Default::default()
    }
}

/// BEA configuration for general graphs: no crisp cluster structure, so
/// the threshold is the cheapest-decile boundary cut.
pub fn bea_general() -> BondEnergyConfig {
    BondEnergyConfig {
        split: SplitRule::CutQuantile(0.12),
        min_block_edges: 40,
        max_restarts: None,
        ..Default::default()
    }
}

fn run_table(algos: &[Algo], graphs: &[GeneratedGraph]) -> Vec<AveragedRow> {
    algos
        .iter()
        .map(|a| {
            let frags: Vec<Fragmentation> = graphs.iter().map(|g| a.run(g)).collect();
            average_row(a.name(), &frags)
        })
        .collect()
}

/// Table 1: transportation graphs, 4 clusters of 25 nodes.
/// The distributed-centers row is included for continuity with Table 2.
pub fn table1(seeds: u64) -> Vec<AveragedRow> {
    let cfg = TransportationConfig::table1();
    let graphs: Vec<GeneratedGraph> = (0..seeds)
        .map(|s| generate_transportation(&cfg, s))
        .collect();
    run_table(
        &[
            Algo::CenterBased { fragments: 4 },
            Algo::DistributedCenters { fragments: 4 },
            Algo::BondEnergy(bea_transportation()),
            Algo::Linear { fragments: 4 },
        ],
        &graphs,
    )
}

/// Table 2: center selection with and without distributed centers,
/// 4 clusters of 150 nodes.
pub fn table2(seeds: u64) -> Vec<AveragedRow> {
    let cfg = TransportationConfig::table2();
    let graphs: Vec<GeneratedGraph> = (0..seeds)
        .map(|s| generate_transportation(&cfg, s))
        .collect();
    run_table(
        &[
            Algo::CenterBased { fragments: 4 },
            Algo::DistributedCenters { fragments: 4 },
        ],
        &graphs,
    )
}

/// Table 3: general graphs of 100 nodes, ≈280 edges.
pub fn table3(seeds: u64) -> Vec<AveragedRow> {
    let cfg = GeneralConfig::default();
    let graphs: Vec<GeneratedGraph> = (0..seeds).map(|s| generate_general(&cfg, s)).collect();
    run_table(
        &[
            Algo::CenterBased { fragments: 4 },
            Algo::DistributedCenters { fragments: 4 },
            Algo::BondEnergy(bea_general()),
            Algo::Linear { fragments: 4 },
        ],
        &graphs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [AveragedRow], name: &str) -> &'a AveragedRow {
        rows.iter().find(|r| r.algorithm == name).unwrap()
    }

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1(3);
        let bea = row(&rows, "bond-energy");
        let lin = row(&rows, "linear");
        let cb = row(&rows, "center-based");
        // §4.2.1: BEA gives the smallest disconnection sets; linear does
        // not take DS size into account.
        assert!(bea.ds < lin.ds, "BEA DS {} !< linear DS {}", bea.ds, lin.ds);
        assert!(bea.ds <= 6.0, "BEA DS should be small, got {}", bea.ds);
        // Linear is always loosely connected (§3.3 guarantee).
        assert!((lin.acyclic_share - 1.0).abs() < 1e-9);
        // Only the center-based approach pre-determines the fragment count.
        assert!((cb.fragments - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table2_distributed_centers_improve_balance_and_ds() {
        let rows = table2(2);
        let plain = row(&rows, "center-based");
        let dist = row(&rows, "distributed centers");
        // Table 2's headline: same F̄, far lower ΔF and D̄S.
        assert!(
            (plain.f - dist.f).abs() < 1e-9,
            "both assign all edges over 4 fragments"
        );
        assert!(
            dist.df < plain.df,
            "distributed ΔF {} !< plain ΔF {}",
            dist.df,
            plain.df
        );
        assert!(
            dist.ds < plain.ds,
            "distributed DS {} !< plain DS {}",
            dist.ds,
            plain.ds
        );
    }

    #[test]
    fn table3_shape_matches_paper() {
        let rows = table3(3);
        let bea = row(&rows, "bond-energy");
        let lin = row(&rows, "linear");
        assert!(
            bea.ds < lin.ds,
            "BEA keeps DS smallest on general graphs too"
        );
        assert!((lin.acyclic_share - 1.0).abs() < 1e-9);
        // §4.2.2: BEA's fragment sizes vary considerably.
        assert!(bea.df > 0.0);
    }
}
