//! Ablations for the design choices DESIGN.md calls out: the
//! crossing-edge policy, the center-growth variant, and the complementary
//! information scope.

use ds_closure::baseline;
use ds_closure::complementary::{ComplementaryInfo, ComplementaryScope};
use ds_closure::engine::{DisconnectionSetEngine, EngineConfig};
use ds_fragment::bond_energy::{bond_energy, BondEnergyConfig};
use ds_fragment::center::{center_based, CenterConfig, Growth};
use ds_fragment::linear::{linear_sweep, LinearConfig};
use ds_fragment::{CrossingPolicy, Fragmentation};
use ds_gen::{generate_transportation, TransportationConfig};
use ds_graph::NodeId;

use super::tables::bea_transportation;
use super::{average_row, AveragedRow};

/// Crossing-edge policy ablation: BEA on transportation graphs with
/// `LowerBlock` vs `Balance` ownership.
pub fn crossing_policy(seeds: u64) -> Vec<AveragedRow> {
    let cfg = TransportationConfig::table1();
    [CrossingPolicy::LowerBlock, CrossingPolicy::Balance]
        .into_iter()
        .map(|policy| {
            let frags: Vec<Fragmentation> = (0..seeds)
                .map(|s| {
                    let g = generate_transportation(&cfg, s);
                    let bea = BondEnergyConfig {
                        crossing_policy: policy,
                        ..bea_transportation()
                    };
                    bond_energy(&g.edge_list(), &bea)
                        .expect("non-empty")
                        .fragmentation
                })
                .collect();
            average_row(&format!("bond-energy / {policy:?}"), &frags)
        })
        .collect()
}

/// Center-growth ablation: the two §3.1 variants.
pub fn center_growth(seeds: u64) -> Vec<AveragedRow> {
    let cfg = TransportationConfig::table1();
    [Growth::RoundRobin, Growth::SmallestFirst]
        .into_iter()
        .map(|growth| {
            let frags: Vec<Fragmentation> = (0..seeds)
                .map(|s| {
                    let g = generate_transportation(&cfg, s);
                    center_based(
                        &g.edge_list(),
                        &CenterConfig {
                            fragments: 4,
                            growth,
                            ..Default::default()
                        },
                    )
                    .expect("non-empty")
                    .fragmentation
                })
                .collect();
            average_row(&format!("center-based / {growth:?}"), &frags)
        })
        .collect()
}

/// One row of the complementary-scope ablation.
#[derive(Clone, Debug)]
pub struct ScopeRow {
    pub scope: String,
    /// Precomputed shortcut tuples (storage cost).
    pub shortcut_tuples: usize,
    /// Queries answered identically to the global baseline.
    pub correct: usize,
    pub queries: usize,
}

/// Complementary-scope ablation on a loosely connected fragmentation
/// (linear sweep): the paper's per-DS scope must already be exact there,
/// at lower storage than the per-fragment-border scope.
pub fn complementary_scope(seed: u64) -> Vec<ScopeRow> {
    let cfg = TransportationConfig::table1();
    let g = generate_transportation(&cfg, seed);
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 4,
            ..Default::default()
        },
    )
    .expect("coords present")
    .fragmentation;
    let csr = g.closure_graph();

    let queries: Vec<(NodeId, NodeId)> = (0..30u32)
        .map(|i| (NodeId(i * 3 % 100), NodeId((i * 7 + 50) % 100)))
        .collect();

    [
        ComplementaryScope::PerDisconnectionSet,
        ComplementaryScope::PerFragmentBorder,
    ]
    .into_iter()
    .map(|scope| {
        let comp = ComplementaryInfo::compute(&csr, &frag, scope, false);
        let engine = DisconnectionSetEngine::build(
            csr.clone(),
            frag.clone(),
            true,
            EngineConfig {
                scope,
                ..EngineConfig::default()
            },
        )
        .expect("engine builds");
        let correct = queries
            .iter()
            .filter(|&&(x, y)| {
                engine.shortest_path(x, y).cost == baseline::shortest_path_cost(&csr, x, y)
            })
            .count();
        ScopeRow {
            scope: format!("{scope:?}"),
            shortcut_tuples: comp.pair_count(),
            correct,
            queries: queries.len(),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_policies_both_partition() {
        let rows = crossing_policy(2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.f > 0.0, "{}: empty fragments", r.algorithm);
        }
    }

    #[test]
    fn growth_variants_reported() {
        let rows = center_growth(2);
        assert_eq!(rows.len(), 2);
        // Both aim at 4 fragments.
        for r in &rows {
            assert!((r.fragments - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn per_ds_scope_is_exact_on_loose_fragmentations() {
        let rows = complementary_scope(3);
        let per_ds = &rows[0];
        let per_border = &rows[1];
        assert_eq!(per_ds.correct, per_ds.queries, "paper scope exact on trees");
        assert_eq!(per_border.correct, per_border.queries);
        assert!(
            per_ds.shortcut_tuples <= per_border.shortcut_tuples,
            "per-DS stores no more than per-border"
        );
    }
}
