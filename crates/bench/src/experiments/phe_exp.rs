//! Parallel Hierarchical Evaluation (§5 / ref [12]): on a cyclic
//! fragmentation graph, compare plain chain enumeration against routing
//! through a mandatory high-speed-network hub.

use ds_closure::baseline;
use ds_closure::engine::{DisconnectionSetEngine, EngineConfig};
use ds_closure::phe::hub_fragmentation;
use ds_fragment::{semantic, CrossingPolicy};
use ds_gen::{generate_transportation, ClusterTopology, TransportationConfig};
use ds_graph::NodeId;

/// One row of the PHE experiment.
#[derive(Clone, Debug)]
pub struct PheRow {
    pub mode: String,
    /// Mean chains evaluated per query.
    pub chains: f64,
    /// Mean site subqueries per query.
    pub site_queries: f64,
    /// Queries matching the centralized baseline.
    pub correct: usize,
    pub queries: usize,
}

/// Run the PHE experiment on a ring of clusters (cyclic fragmentation
/// graph without a hub).
pub fn phe(clusters: usize, nodes_per_cluster: usize, seed: u64) -> Vec<PheRow> {
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster,
        target_edges_per_cluster: nodes_per_cluster * 3,
        topology: ClusterTopology::Ring,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    let labels = g.cluster_of.clone().expect("labels present");
    let csr = g.closure_graph();
    let n = g.nodes as u32;
    let queries: Vec<(NodeId, NodeId)> = (0..20u32)
        .map(|i| (NodeId(i * 5 % n), NodeId((i * 11 + n / 2) % n)))
        .collect();

    let mut rows = Vec::new();

    // Plain semantic fragmentation: the fragmentation graph is the ring.
    let plain = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        clusters,
        CrossingPolicy::LowerBlock,
    )
    .expect("non-empty");
    let plain_engine =
        DisconnectionSetEngine::build(csr.clone(), plain, true, EngineConfig::default())
            .expect("engine builds");
    rows.push(run_mode(
        "chain enumeration (ring)",
        &plain_engine,
        &csr,
        &queries,
    ));

    // PHE: hub fragmentation, star-shaped fragmentation graph.
    let (hub_frag, hub) =
        hub_fragmentation(g.nodes, &g.connections, &labels, clusters).expect("non-empty");
    let hub_engine = DisconnectionSetEngine::build(
        csr.clone(),
        hub_frag,
        true,
        EngineConfig {
            hub: Some(hub),
            ..EngineConfig::default()
        },
    )
    .expect("engine builds");
    rows.push(run_mode("PHE hub routing", &hub_engine, &csr, &queries));

    rows
}

fn run_mode(
    label: &str,
    engine: &DisconnectionSetEngine,
    csr: &ds_graph::CsrGraph,
    queries: &[(NodeId, NodeId)],
) -> PheRow {
    let mut chains = 0.0;
    let mut site_queries = 0.0;
    let mut correct = 0;
    for &(x, y) in queries {
        let a = engine.shortest_path(x, y);
        chains += a.stats.chains_evaluated as f64;
        site_queries += a.stats.site_queries as f64;
        if a.cost == baseline::shortest_path_cost(csr, x, y) {
            correct += 1;
        }
    }
    PheRow {
        mode: label.to_string(),
        chains: chains / queries.len() as f64,
        site_queries: site_queries / queries.len() as f64,
        correct,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_are_exact_and_hub_bounds_work() {
        let rows = phe(4, 12, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.correct, r.queries, "{} answered wrongly", r.mode);
        }
        // PHE should not evaluate more chains than ring enumeration.
        assert!(
            rows[1].chains <= rows[0].chains,
            "hub chains {} > ring chains {}",
            rows[1].chains,
            rows[0].chains
        );
    }
}
