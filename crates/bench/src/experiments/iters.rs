//! The §2.1 iteration claim: "The number of iterations required before
//! reaching a fixpoint is given by the maximum diameter of the graph; if
//! the graph is fragmented in n fragments of equal size, the diameter of
//! each subgraph is highly reduced."
//!
//! We measure semi-naive iteration counts on the whole relation versus
//! the maximum over the fragments, alongside the corresponding diameters.

use ds_fragment::{semantic, CrossingPolicy};
use ds_gen::{generate_transportation, TransportationConfig};
use ds_graph::traverse;
use ds_relation::{tc, PathTuple, Relation};

/// One row of the iteration experiment.
#[derive(Clone, Debug)]
pub struct ItersRow {
    pub fragments: usize,
    /// Semi-naive iterations to the fixpoint on the whole relation.
    pub global_iterations: usize,
    /// Maximum semi-naive iterations over the fragments.
    pub max_fragment_iterations: usize,
    /// Hop diameter of the whole graph.
    pub global_diameter: u32,
    /// Maximum hop diameter over the fragments.
    pub max_fragment_diameter: u32,
}

/// Run the iteration experiment for each cluster count (chain topology,
/// so the global diameter grows with the number of clusters).
pub fn iterations(cluster_counts: &[usize], nodes_per_cluster: usize, seed: u64) -> Vec<ItersRow> {
    cluster_counts
        .iter()
        .map(|&k| one_row(k, nodes_per_cluster, seed))
        .collect()
}

fn one_row(clusters: usize, nodes_per_cluster: usize, seed: u64) -> ItersRow {
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster,
        target_edges_per_cluster: nodes_per_cluster * 3,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    let labels = g
        .cluster_of
        .clone()
        .expect("transportation graphs carry labels");
    let frag = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        clusters,
        CrossingPolicy::LowerBlock,
    )
    .expect("non-empty");
    let csr = g.closure_graph();

    // Global: full semi-naive closure of the whole relation.
    let global_rel = Relation::from_rows("R", csr.edges().map(PathTuple::from).collect::<Vec<_>>());
    let (_, global_stats) = tc::seminaive_closure(&global_rel, None);

    // Per fragment: full closure of the fragment's (symmetric) relation.
    let mut max_frag_iters = 0;
    let mut max_frag_diam = 0;
    for f in frag.fragments() {
        let local = f.local_graph(g.nodes, true);
        let rel = Relation::from_rows("Rf", local.edges().map(PathTuple::from).collect::<Vec<_>>());
        let (_, stats) = tc::seminaive_closure(&rel, None);
        max_frag_iters = max_frag_iters.max(stats.iterations);
        max_frag_diam = max_frag_diam.max(f.diameter());
    }

    ItersRow {
        fragments: clusters,
        global_iterations: global_stats.iterations,
        max_fragment_iterations: max_frag_iters,
        global_diameter: traverse::diameter(&csr),
        max_fragment_diameter: max_frag_diam,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_reduces_iterations_and_diameter() {
        let rows = iterations(&[4], 15, 3);
        let r = &rows[0];
        assert!(
            r.max_fragment_iterations < r.global_iterations,
            "fragment iterations {} !< global {}",
            r.max_fragment_iterations,
            r.global_iterations
        );
        assert!(
            r.max_fragment_diameter < r.global_diameter,
            "fragment diameter {} !< global {}",
            r.max_fragment_diameter,
            r.global_diameter
        );
    }

    #[test]
    fn global_diameter_grows_with_chain_length() {
        let rows = iterations(&[2, 6], 10, 5);
        assert!(rows[1].global_diameter > rows[0].global_diameter);
    }
}
