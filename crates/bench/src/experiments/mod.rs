//! Experiment drivers. See the crate docs for the experiment ↔ paper map.

pub mod ablation;
pub mod figures;
pub mod iters;
pub mod phe_exp;
pub mod speedup;
pub mod tables;

use ds_fragment::Fragmentation;

/// One averaged row of a fragmentation-characteristics table (the columns
/// of Tables 1–3 plus context).
#[derive(Clone, Debug)]
pub struct AveragedRow {
    pub algorithm: String,
    /// Mean realized fragment count.
    pub fragments: f64,
    /// F̄ — mean fragment size (edges).
    pub f: f64,
    /// D̄S — mean disconnection set size (nodes).
    pub ds: f64,
    /// ΔF — mean absolute deviation of fragment sizes.
    pub df: f64,
    /// ΔDS — mean absolute deviation of DS sizes.
    pub dds: f64,
    /// Share of runs with an acyclic fragmentation graph.
    pub acyclic_share: f64,
    /// Graphs averaged over.
    pub graphs: usize,
}

/// Average the metrics of several fragmentations into one row.
pub fn average_row(algorithm: &str, frags: &[Fragmentation]) -> AveragedRow {
    let n = frags.len().max(1) as f64;
    let mut row = AveragedRow {
        algorithm: algorithm.to_string(),
        fragments: 0.0,
        f: 0.0,
        ds: 0.0,
        df: 0.0,
        dds: 0.0,
        acyclic_share: 0.0,
        graphs: frags.len(),
    };
    for frag in frags {
        let m = frag.metrics();
        row.fragments += m.fragment_count as f64 / n;
        row.f += m.avg_fragment_edges / n;
        row.ds += m.avg_ds_nodes / n;
        row.df += m.dev_fragment_edges / n;
        row.dds += m.dev_ds_nodes / n;
        row.acyclic_share += if m.loosely_connected { 1.0 / n } else { 0.0 };
    }
    row
}

/// Render [`AveragedRow`]s in the paper's table layout.
pub fn render_rows(rows: &[AveragedRow]) -> String {
    use crate::table::{f1, f2, render};
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                f1(r.f),
                f1(r.ds),
                f1(r.df),
                f2(r.dds),
                f1(r.fragments),
                format!("{:.0}%", r.acyclic_share * 100.0),
                r.graphs.to_string(),
            ]
        })
        .collect();
    render(
        &[
            "Algorithm",
            "F",
            "DS",
            "dF",
            "dDS",
            "#frag",
            "acyclic",
            "graphs",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::{Edge, NodeId};

    #[test]
    fn average_of_two_fragmentations() {
        let edges = |pairs: &[(u32, u32)]| -> Vec<Edge> {
            pairs
                .iter()
                .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
                .collect()
        };
        let a = Fragmentation::new(
            3,
            vec![edges(&[(0, 1)]), edges(&[(1, 2)])],
            vec![vec![], vec![]],
        );
        let b = Fragmentation::new(
            3,
            vec![edges(&[(0, 1), (1, 2)]), vec![]],
            vec![vec![], vec![]],
        );
        let row = average_row("x", &[a, b]);
        assert_eq!(row.graphs, 2);
        assert_eq!(row.fragments, 2.0);
        assert!((row.f - 1.0).abs() < 1e-9, "mean of 1.0 and 1.0");
        assert!((row.acyclic_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_has_header_and_rows() {
        let row = AveragedRow {
            algorithm: "linear".into(),
            fragments: 4.0,
            f: 107.0,
            ds: 13.3,
            df: 24.0,
            dds: 1.2,
            acyclic_share: 1.0,
            graphs: 10,
        };
        let s = render_rows(&[row]);
        assert!(s.contains("linear"));
        assert!(s.contains("13.3"));
        assert!(s.contains("100%"));
    }
}
