//! Figure reproductions: the Fig. 5 worked example, the Fig. 8
//! sweep-direction effect, and the Figs. 1–3 structural claims.

use ds_fragment::bond_energy::block_outside_connections;
use ds_fragment::linear::{linear_sweep, LinearConfig, Sweep};
use ds_gen::{generate_ellipse, generate_transportation, EllipseConfig, TransportationConfig};
use ds_graph::{CsrGraph, Edge, NodeId};

use super::tables::{bea_transportation, Algo};

/// Fig. 5: the exact 6-node matrix-splitting example, as narrative text.
/// "If nodes 1-3 are grouped together, there are 2 connections with nodes
/// outside the block … If instead nodes 1-4 are grouped together, there
/// are 3 connections."
pub fn fig5() -> String {
    // 1-indexed edges of the reconstructed Fig. 5 matrix:
    // 1-2, 2-3, 1-5, 2-5, 4-6.
    let pairs = [(0u32, 1u32), (1, 2), (0, 4), (1, 4), (3, 5)];
    let mut edges = Vec::new();
    for &(a, b) in &pairs {
        edges.push(Edge::unit(NodeId(a), NodeId(b)));
        edges.push(Edge::unit(NodeId(b), NodeId(a)));
    }
    let g = CsrGraph::from_edges(6, &edges);

    let mut out = String::from("Fig. 5 worked example (6x6 adjacency matrix)\n");
    out.push_str("matrix (1 = connection, diagonal set):\n");
    for i in 0..6 {
        let row: Vec<&str> = (0..6)
            .map(|j| {
                if i == j || g.neighbors(NodeId(i as u32)).any(|(t, _)| t.index() == j) {
                    "1"
                } else {
                    "0"
                }
            })
            .collect();
        out.push_str(&format!("  {}\n", row.join(" ")));
    }
    let b123 = [NodeId(0), NodeId(1), NodeId(2)];
    let b1234 = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
    let c123 = block_outside_connections(&g, &b123);
    let c1234 = block_outside_connections(&g, &b1234);
    out.push_str(&format!(
        "block {{1,2,3}}   -> {c123} outside connections (paper: 2)\n"
    ));
    out.push_str(&format!(
        "block {{1,2,3,4}} -> {c1234} outside connections (paper: 3)\n"
    ));
    out.push_str("=> the first split is preferred: smaller disconnection set\n");
    out
}

/// One row of the Fig. 8 experiment.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    pub sweep: String,
    /// D̄S averaged over graphs.
    pub ds: f64,
    /// Mean fragment count.
    pub fragments: f64,
    pub graphs: usize,
}

/// Fig. 8: sweeping an elongated (elliptical) graph along its long axis
/// yields smaller boundaries than sweeping across it.
pub fn fig8(seeds: u64) -> Vec<Fig8Row> {
    let cfg = EllipseConfig::default();
    let mut rows = Vec::new();
    for (label, sweep) in [
        ("along major axis (left->right)", Sweep::XAscending),
        ("across minor axis (top->down)", Sweep::YDescending),
    ] {
        let mut ds_sum = 0.0;
        let mut frag_sum = 0.0;
        for s in 0..seeds {
            let g = generate_ellipse(&cfg, s);
            let out = linear_sweep(
                &g.edge_list(),
                &LinearConfig {
                    fragments: 3,
                    sweep,
                    ..Default::default()
                },
            )
            .expect("ellipse graphs are non-empty with coords");
            let m = out.fragmentation.metrics();
            ds_sum += m.avg_ds_nodes;
            frag_sum += m.fragment_count as f64;
        }
        rows.push(Fig8Row {
            sweep: label.to_string(),
            ds: ds_sum / seeds as f64,
            fragments: frag_sum / seeds as f64,
            graphs: seeds as usize,
        });
    }
    rows
}

/// One row of the Figs. 1–3 structural report.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    pub algorithm: String,
    /// Share of runs whose fragmentation graph is acyclic.
    pub acyclic_share: f64,
    /// Mean number of fragmentation-graph links (non-empty DS).
    pub links: f64,
}

/// Figs. 1–3: extract the fragmentation graph per algorithm on
/// transportation graphs and report loose connectivity.
pub fn fig2(seeds: u64) -> Vec<Fig2Row> {
    let cfg = TransportationConfig::table1();
    let algos = [
        Algo::CenterBased { fragments: 4 },
        Algo::DistributedCenters { fragments: 4 },
        Algo::BondEnergy(bea_transportation()),
        Algo::Linear { fragments: 4 },
    ];
    algos
        .iter()
        .map(|a| {
            let mut acyclic = 0.0;
            let mut links = 0.0;
            for s in 0..seeds {
                let g = generate_transportation(&cfg, s);
                let frag = a.run(&g);
                let fg = frag.fragmentation_graph();
                if fg.is_acyclic() {
                    acyclic += 1.0;
                }
                links += fg.links().len() as f64;
            }
            Fig2Row {
                algorithm: a.name().to_string(),
                acyclic_share: acyclic / seeds as f64,
                links: links / seeds as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_paper_counts() {
        let s = fig5();
        assert!(s.contains("2 outside connections (paper: 2)"));
        assert!(s.contains("3 outside connections (paper: 3)"));
    }

    #[test]
    fn fig8_long_axis_sweep_wins() {
        let rows = fig8(4);
        assert_eq!(rows.len(), 2);
        let along = &rows[0];
        let across = &rows[1];
        assert!(
            along.ds < across.ds,
            "sweeping along the major axis must give smaller DS: {} vs {}",
            along.ds,
            across.ds
        );
    }

    #[test]
    fn fig2_linear_always_acyclic() {
        let rows = fig2(2);
        let lin = rows.iter().find(|r| r.algorithm == "linear").unwrap();
        assert!((lin.acyclic_share - 1.0).abs() < 1e-9);
        for r in &rows {
            assert!(
                r.links >= 1.0,
                "{} produced no fragmentation-graph links",
                r.algorithm
            );
        }
    }
}
