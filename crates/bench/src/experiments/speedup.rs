//! The §2.1 speed-up claim: "For good fragmentations, it gives a linear
//! speed-up."
//!
//! We fragment chain transportation graphs by their ground-truth clusters
//! (the "good fragmentation") and time end-to-end shortest-path queries
//! three ways: the centralized baseline (global Dijkstra), the
//! disconnection set approach on one processor, and with one thread per
//! site. Two speed-up measures are reported:
//!
//! * the *ideal* speed-up `Σ site busy / max site busy` — what a
//!   PRISMA-style machine with free threads would get from phase one
//!   (deterministic, noise-free); and
//! * the measured wall-clock ratio sequential/parallel (noisy on a shared
//!   host, reported for reference).

use std::time::Instant;

use ds_closure::baseline;
use ds_closure::engine::{DisconnectionSetEngine, EngineConfig};
use ds_closure::executor::ExecutionMode;
use ds_fragment::{semantic, CrossingPolicy};
use ds_gen::{generate_transportation, TransportationConfig};
use ds_graph::NodeId;
use ds_machine::Machine;

/// One row of the speed-up experiment.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Fragments = processors (clusters of the generated graph).
    pub fragments: usize,
    /// Mean centralized query time (µs).
    pub centralized_us: f64,
    /// Mean disconnection-set query time, sequential phase one (µs).
    pub ds_sequential_us: f64,
    /// Mean disconnection-set query time, parallel phase one (µs).
    pub ds_parallel_us: f64,
    /// Mean query time on the persistent-thread machine simulation (µs).
    pub machine_us: f64,
    /// Mean ideal speed-up from site accounting (Σ busy / max busy).
    pub ideal_speedup: f64,
    /// Queries timed.
    pub queries: usize,
}

/// Run the speed-up experiment for each cluster count.
///
/// Queries go from the first cluster to the last (the longest chains —
/// the case the approach is designed for).
pub fn speedup(cluster_counts: &[usize], nodes_per_cluster: usize, seed: u64) -> Vec<SpeedupRow> {
    cluster_counts.iter().map(|&k| one_row(k, nodes_per_cluster, seed)).collect()
}

fn one_row(clusters: usize, nodes_per_cluster: usize, seed: u64) -> SpeedupRow {
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster,
        target_edges_per_cluster: nodes_per_cluster * 4,
        connections_per_link: 2,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    let labels = g.cluster_of.clone().expect("transportation graphs carry labels");
    let frag = semantic::by_labels(g.nodes, &g.connections, &labels, clusters, CrossingPolicy::LowerBlock)
        .expect("generated graphs are non-empty");
    let csr = g.closure_graph();

    let seq = DisconnectionSetEngine::build(
        csr.clone(),
        frag.clone(),
        true,
        EngineConfig { mode: ExecutionMode::Sequential, ..EngineConfig::default() },
    )
    .expect("engine builds");
    let par = DisconnectionSetEngine::build(
        csr.clone(),
        frag.clone(),
        true,
        EngineConfig { mode: ExecutionMode::Parallel, ..EngineConfig::default() },
    )
    .expect("engine builds");
    let mut machine = Machine::deploy(csr.clone(), frag, true).expect("machine deploys");

    // End-to-end queries: first cluster -> last cluster.
    let m = nodes_per_cluster as u32;
    let queries: Vec<(NodeId, NodeId)> = (0..10u32)
        .map(|i| {
            (
                NodeId(i % m),
                NodeId((clusters as u32 - 1) * m + (i * 3) % m),
            )
        })
        .collect();

    let mut centralized_us = 0.0;
    let mut ds_seq_us = 0.0;
    let mut ds_par_us = 0.0;
    let mut machine_us = 0.0;
    let mut ideal = 0.0;
    for &(x, y) in &queries {
        let t = Instant::now();
        let want = baseline::shortest_path_cost(&csr, x, y);
        centralized_us += t.elapsed().as_secs_f64() * 1e6;

        let t = Instant::now();
        let a = seq.shortest_path(x, y);
        ds_seq_us += t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(a.cost, want, "disconnection set answer must match baseline");
        let max = a.stats.max_site_busy.as_secs_f64();
        if max > 0.0 {
            ideal += a.stats.total_site_busy.as_secs_f64() / max;
        }

        let t = Instant::now();
        let b = par.shortest_path(x, y);
        ds_par_us += t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(b.cost, want);

        let t = Instant::now();
        let m = machine.shortest_path(x, y);
        machine_us += t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(m, want);
    }
    machine.shutdown();
    let n = queries.len() as f64;
    SpeedupRow {
        fragments: clusters,
        centralized_us: centralized_us / n,
        ds_sequential_us: ds_seq_us / n,
        ds_parallel_us: ds_par_us / n,
        machine_us: machine_us / n,
        ideal_speedup: ideal / n,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_speedup_grows_with_fragments() {
        let rows = speedup(&[2, 4], 20, 7);
        assert_eq!(rows.len(), 2);
        // More fragments on the chain = more sites working concurrently.
        assert!(
            rows[1].ideal_speedup > rows[0].ideal_speedup,
            "ideal speedup should grow: {} vs {}",
            rows[0].ideal_speedup,
            rows[1].ideal_speedup
        );
        // With k fragments on a chain, phase one is k-way parallel, so the
        // ideal speedup should approach the fragment count.
        assert!(rows[1].ideal_speedup > 1.5);
    }

    #[test]
    fn all_query_answers_validated_against_baseline() {
        // one_row asserts equality internally; reaching here means all
        // queries matched.
        let rows = speedup(&[3], 15, 11);
        assert_eq!(rows[0].queries, 10);
    }
}
