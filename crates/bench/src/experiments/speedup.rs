//! The §2.1 speed-up claim: "For good fragmentations, it gives a linear
//! speed-up."
//!
//! We fragment chain transportation graphs by their ground-truth clusters
//! (the "good fragmentation") and time end-to-end shortest-path queries
//! four ways: the centralized baseline (global Dijkstra) plus every
//! `TcEngine` backend — the disconnection set approach on one processor,
//! with one thread per site subquery, and on the message-passing machine
//! simulation. All backends are deployed through the `System` facade and
//! timed through one trait-driven code path. Two speed-up measures are
//! reported:
//!
//! * the *ideal* speed-up `Σ site busy / max site busy` — what a
//!   PRISMA-style machine with free threads would get from phase one
//!   (deterministic, noise-free); and
//! * the measured wall-clock ratio sequential/parallel (noisy on a shared
//!   host, reported for reference).

use std::time::Instant;

use discset::{Backend, Fragmenter, System, TcEngine};
use ds_closure::baseline;
use ds_closure::engine::EngineConfig;
use ds_closure::executor::ExecutionMode;
use ds_fragment::CrossingPolicy;
use ds_gen::{generate_transportation, TransportationConfig};
use ds_graph::NodeId;

/// One row of the speed-up experiment.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Fragments = processors (clusters of the generated graph).
    pub fragments: usize,
    /// Mean centralized query time (µs).
    pub centralized_us: f64,
    /// Mean disconnection-set query time, sequential phase one (µs).
    pub ds_sequential_us: f64,
    /// Mean disconnection-set query time, parallel phase one (µs).
    pub ds_parallel_us: f64,
    /// Mean query time on the persistent-thread machine simulation (µs).
    pub machine_us: f64,
    /// Mean ideal speed-up from site accounting (Σ busy / max busy).
    pub ideal_speedup: f64,
    /// Queries timed.
    pub queries: usize,
}

/// Run the speed-up experiment for each cluster count.
///
/// Queries go from the first cluster to the last (the longest chains —
/// the case the approach is designed for).
pub fn speedup(cluster_counts: &[usize], nodes_per_cluster: usize, seed: u64) -> Vec<SpeedupRow> {
    cluster_counts
        .iter()
        .map(|&k| one_row(k, nodes_per_cluster, seed))
        .collect()
}

fn one_row(clusters: usize, nodes_per_cluster: usize, seed: u64) -> SpeedupRow {
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster,
        target_edges_per_cluster: nodes_per_cluster * 4,
        connections_per_link: 2,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    let labels = g
        .cluster_of
        .clone()
        .expect("transportation graphs carry labels");
    let fragmenter = Fragmenter::ByLabels {
        labels,
        parts: clusters,
        policy: CrossingPolicy::LowerBlock,
    };
    let csr = g.closure_graph();

    // Every backend variant, deployed through the System facade. The
    // timing loop below drives them all through `&mut dyn TcEngine`.
    let mut variants: Vec<System> = [
        (Backend::Inline, ExecutionMode::Sequential),
        (Backend::Inline, ExecutionMode::Parallel),
        (Backend::SiteThreads, ExecutionMode::Sequential),
    ]
    .into_iter()
    .map(|(backend, mode)| {
        System::builder()
            .graph(&g)
            .fragmenter(fragmenter.clone())
            .backend(backend)
            .config(EngineConfig {
                mode,
                ..EngineConfig::default()
            })
            .build()
            .expect("system deploys")
    })
    .collect();

    // End-to-end queries: first cluster -> last cluster.
    let m = nodes_per_cluster as u32;
    let queries: Vec<(NodeId, NodeId)> = (0..10u32)
        .map(|i| {
            (
                NodeId(i % m),
                NodeId((clusters as u32 - 1) * m + (i * 3) % m),
            )
        })
        .collect();

    let mut centralized_us = 0.0;
    let mut backend_us = [0.0f64; 3];
    let mut ideal = 0.0;
    for &(x, y) in &queries {
        let t = Instant::now();
        let want = baseline::shortest_path_cost(&csr, x, y);
        centralized_us += t.elapsed().as_secs_f64() * 1e6;

        for (k, sys) in variants.iter_mut().enumerate() {
            let t = Instant::now();
            let a = sys.shortest_path(x, y);
            backend_us[k] += t.elapsed().as_secs_f64() * 1e6;
            assert_eq!(
                a.cost,
                want,
                "{} answer must match baseline",
                sys.backend_name()
            );
            if k == 0 {
                // Ideal phase-one speedup from the sequential run's
                // deterministic site accounting.
                let max = a.stats.max_site_busy.as_secs_f64();
                if max > 0.0 {
                    ideal += a.stats.total_site_busy.as_secs_f64() / max;
                }
            }
        }
    }
    let n = queries.len() as f64;
    SpeedupRow {
        fragments: clusters,
        centralized_us: centralized_us / n,
        ds_sequential_us: backend_us[0] / n,
        ds_parallel_us: backend_us[1] / n,
        machine_us: backend_us[2] / n,
        ideal_speedup: ideal / n,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_speedup_grows_with_fragments() {
        let rows = speedup(&[2, 4], 20, 7);
        assert_eq!(rows.len(), 2);
        // More fragments on the chain = more sites working concurrently.
        assert!(
            rows[1].ideal_speedup > rows[0].ideal_speedup,
            "ideal speedup should grow: {} vs {}",
            rows[0].ideal_speedup,
            rows[1].ideal_speedup
        );
        // With k fragments on a chain, phase one is k-way parallel, so the
        // ideal speedup should approach the fragment count.
        assert!(rows[1].ideal_speedup > 1.5);
    }

    #[test]
    fn all_query_answers_validated_against_baseline() {
        // one_row asserts equality internally; reaching here means all
        // queries matched on every backend.
        let rows = speedup(&[3], 15, 11);
        assert_eq!(rows[0].queries, 10);
    }
}
