//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ds-bench --bin repro -- all
//! cargo run --release -p ds-bench --bin repro -- table1 [seeds]
//! ```

use ds_bench::experiments::{ablation, figures, iters, phe_exp, render_rows, speedup, tables};
use ds_bench::table::{f1, f2, render};
use ds_bench::DEFAULT_SEEDS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let seeds: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);

    let known = [
        "table1", "table2", "table3", "fig2", "fig5", "fig8", "speedup", "iters", "ablation",
        "phe", "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment '{what}'; one of: {}", known.join(", "));
        std::process::exit(2);
    }

    let run = |id: &str| what == "all" || what == id;

    if run("table1") {
        println!("== Table 1: transportation graphs, 4 clusters x 25 nodes ==");
        println!("{}", render_rows(&tables::table1(seeds)));
    }
    if run("table2") {
        println!("== Table 2: (distributed) centers, 4 clusters x 150 nodes ==");
        println!("{}", render_rows(&tables::table2(seeds.min(5))));
    }
    if run("table3") {
        println!("== Table 3: general graphs, 100 nodes ==");
        println!("{}", render_rows(&tables::table3(seeds)));
    }
    if run("fig5") {
        println!("== Fig. 5: matrix splitting worked example ==");
        println!("{}", figures::fig5());
    }
    if run("fig8") {
        println!("== Fig. 8: sweep direction on an elliptical graph ==");
        let rows = figures::fig8(seeds);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.sweep.clone(),
                    f1(r.ds),
                    f1(r.fragments),
                    r.graphs.to_string(),
                ]
            })
            .collect();
        println!("{}", render(&["Sweep", "DS", "#frag", "graphs"], &body));
    }
    if run("fig2") {
        println!("== Figs. 1-3: fragmentation graph structure ==");
        let rows = figures::fig2(seeds);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.clone(),
                    format!("{:.0}%", r.acyclic_share * 100.0),
                    f1(r.links),
                ]
            })
            .collect();
        println!("{}", render(&["Algorithm", "acyclic", "links"], &body));
    }
    if run("speedup") {
        println!("== Speed-up (sec 2.1 claim): good fragmentation, chain queries ==");
        let rows = speedup::speedup(&[2, 4, 8], 40, 1);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.fragments.to_string(),
                    f1(r.centralized_us),
                    f1(r.ds_sequential_us),
                    f1(r.ds_parallel_us),
                    f1(r.machine_us),
                    f2(r.ideal_speedup),
                    r.queries.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "#frag",
                    "central us",
                    "DS seq us",
                    "DS par us",
                    "machine us",
                    "ideal x",
                    "queries"
                ],
                &body
            )
        );
    }
    if run("iters") {
        println!("== Iterations to fixpoint (sec 2.1 claim) ==");
        let rows = iters::iterations(&[2, 4, 8], 15, 1);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.fragments.to_string(),
                    r.global_iterations.to_string(),
                    r.max_fragment_iterations.to_string(),
                    r.global_diameter.to_string(),
                    r.max_fragment_diameter.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "#frag",
                    "global iters",
                    "frag iters",
                    "global diam",
                    "frag diam"
                ],
                &body
            )
        );
    }
    if run("ablation") {
        println!("== Ablation: crossing-edge policy (bond-energy) ==");
        println!("{}", render_rows(&ablation::crossing_policy(seeds)));
        println!("== Ablation: center growth variant ==");
        println!("{}", render_rows(&ablation::center_growth(seeds)));
        println!("== Ablation: complementary information scope ==");
        let rows = ablation::complementary_scope(1);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.scope.clone(),
                    r.shortcut_tuples.to_string(),
                    format!("{}/{}", r.correct, r.queries),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["Scope", "shortcut tuples", "correct"], &body)
        );
    }
    if run("phe") {
        println!("== Parallel Hierarchical Evaluation (sec 5 / ref [12]) ==");
        let rows = phe_exp::phe(6, 15, 1);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    f2(r.chains),
                    f1(r.site_queries),
                    format!("{}/{}", r.correct, r.queries),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["Mode", "chains/query", "site queries", "correct"], &body)
        );
    }
}
