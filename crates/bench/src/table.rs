//! Plain-text table rendering for the experiment drivers.

/// Render rows as an aligned ASCII table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Format a float with one decimal, the paper's table style.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            &["Algorithm", "F"],
            &[
                vec!["center-based".into(), "791.8".into()],
                vec!["linear".into(), "13.3".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Algorithm"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("791.8"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f1(2.25), "2.2");
        assert_eq!(f2(2.25), "2.25");
    }
}
