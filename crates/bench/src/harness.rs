//! A dependency-free micro-benchmark harness.
//!
//! The build environment is offline, so Criterion is unavailable; this
//! module provides the small subset the workspace's benches need:
//! warmup, automatic iteration calibration, repeated samples, robust
//! (median-based) reporting, and a JSON snapshot writer so perf results
//! can be committed and diffed across PRs.
//!
//! Bench targets use `harness = false` and a plain `main()`:
//!
//! ```no_run
//! use ds_bench::harness::{render, Bench};
//!
//! let mut bench = Bench::new("my-group");
//! bench.run("fast-thing", || 2 + 2);
//! println!("{}", render(bench.results()));
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub group: String,
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Samples taken.
    pub samples: usize,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

/// Collects measurements for one group of related benchmarks.
pub struct Bench {
    group: String,
    results: Vec<BenchResult>,
    /// Samples per benchmark (default 20).
    pub sample_count: usize,
    /// Target wall time per sample during calibration (default 10ms).
    pub sample_target: Duration,
}

impl Bench {
    pub fn new(group: &str) -> Self {
        Bench {
            group: group.to_string(),
            results: Vec::new(),
            sample_count: 20,
            sample_target: Duration::from_millis(10),
        }
    }

    /// Set the number of samples (builder style, like Criterion's
    /// `sample_size`).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_count = samples.max(3);
        self
    }

    /// Measure `f`, which returns a value the optimizer must not discard.
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Warmup + calibration: find an iteration count whose sample run
        // takes roughly `sample_target`.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.sample_target || iters >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.sample_target.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64
            };
            iters = (iters * grow.clamp(2, 16)).min(1 << 20);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.push_samples(name, iters, &per_iter_ns)
    }

    /// Record a pre-measured sample set under `name` — the hook seed
    /// sweeps use to publish one aggregate row (min / median / max across
    /// the per-seed medians) next to the per-seed rows.
    pub fn record(&mut self, name: &str, samples_ns: &[f64]) -> &BenchResult {
        assert!(!samples_ns.is_empty(), "record needs at least one sample");
        self.push_samples(name, 1, samples_ns)
    }

    fn push_samples(&mut self, name: &str, iters: u64, samples_ns: &[f64]) -> &BenchResult {
        let mut sorted = samples_ns.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median_ns = sorted[sorted.len() / 2];
        let mean_ns = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let min_ns = sorted[0];
        let max_ns = *sorted.last().expect("non-empty");
        self.results.push(BenchResult {
            group: self.group.clone(),
            name: name.to_string(),
            iters,
            samples: sorted.len(),
            mean_ns,
            median_ns,
            min_ns,
            max_ns,
        });
        self.results.last().expect("just pushed")
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    pub fn into_results(self) -> Vec<BenchResult> {
        self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Render results as an aligned text table.
pub fn render(results: &[BenchResult]) -> String {
    let mut out = String::new();
    let name_w = results
        .iter()
        .map(|r| r.group.len() + r.name.len() + 1)
        .max()
        .unwrap_or(10)
        .max(10);
    out.push_str(&format!(
        "{:<name_w$}  {:>12}  {:>12}  {:>12}  {:>12}  {:>9}\n",
        "benchmark", "median", "mean", "min", "max", "iters"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<name_w$}  {:>12}  {:>12}  {:>12}  {:>12}  {:>9}\n",
            format!("{}/{}", r.group, r.name),
            fmt_ns(r.median_ns),
            fmt_ns(r.mean_ns),
            fmt_ns(r.min_ns),
            fmt_ns(r.max_ns),
            r.iters,
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serialize results as a JSON perf snapshot (no serde in this offline
/// workspace; the format is flat and hand-rolled).
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"name\": \"{}\", \"iters\": {}, \"samples\": {}, \
             \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.name),
            r.iters,
            r.samples,
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

/// Write the JSON snapshot to `path`.
pub fn write_json(path: &str, results: &[BenchResult]) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bench::new("t").sample_size(3);
        b.sample_target = Duration::from_micros(200);
        let r = b.run("sum", || (0..100u64).sum::<u64>()).clone();
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.max_ns);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn render_and_json_contain_names() {
        let mut b = Bench::new("grp").sample_size(3);
        b.sample_target = Duration::from_micros(100);
        b.run("thing", || 1u32);
        let table = render(b.results());
        assert!(table.contains("grp/thing"));
        let json = to_json(b.results());
        assert!(json.contains("\"name\": \"thing\""));
        assert!(json.contains("\"max_ns\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn record_aggregates_premeasured_samples() {
        let mut b = Bench::new("agg").sample_size(3);
        let r = b.record("sweep", &[30.0, 10.0, 20.0]).clone();
        assert_eq!(r.min_ns, 10.0);
        assert_eq!(r.median_ns, 20.0);
        assert_eq!(r.max_ns, 30.0);
        assert_eq!(r.samples, 3);
    }
}
