//! Durable storage for the serve tier: an append-only, checksummed
//! write-ahead update log plus compact periodic checkpoints, and the
//! recovery path that turns a directory of both back into a live
//! [`EngineSnapshot`].
//!
//! The design follows the classic WAL discipline, scaled to what this
//! workspace actually persists — the *update stream*, not the derived
//! state:
//!
//! * **Log records are tiny and self-verifying.** Each record frames one
//!   [`NetworkUpdate`] as `[len u32][crc32 u32][payload]`, where the
//!   payload carries a strictly increasing LSN, the serve epoch at
//!   append time (informational — replay recomputes effectiveness) and
//!   the update tuple itself, all hand-encoded little-endian. No serde,
//!   no external crates; the CRC32 (IEEE) table lives in this crate.
//! * **Group commit.** The serve writer already folds queued updates
//!   into one micro-batch per wake-up; [`DurableStore::append_batch`]
//!   writes the whole batch as one buffered write and (by default) one
//!   `fdatasync`, so the fsync cost amortizes across exactly the batch
//!   the writer was going to fold anyway.
//! * **Checkpoints are images of the *inputs*, not the tables.** A
//!   checkpoint stores the fragmentation (per-fragment edge + node
//!   lists), the [`EngineConfig`] and the symmetry flag — everything
//!   [`EngineSnapshot::build`] needs. The complementary tables, augmented
//!   graphs and reachability index are **rebuilt on load**, which keeps
//!   checkpoints proportional to the relation, not the precompute.
//! * **Recovery = newest valid checkpoint + WAL suffix.** [`recover`]
//!   scans checkpoints newest-first (a torn or corrupt checkpoint is
//!   skipped — predecessors are pruned only after a successor is fully
//!   durable, so one is always intact), rebuilds the snapshot, then
//!   replays every WAL record with `lsn > checkpoint.lsn` in order,
//!   stopping at the first torn or corrupt frame. Garbage bytes are a
//!   truncation point, never a panic.
//!
//! Fault injection: every write path fires a `ds_fault` disk hook
//! ([`FaultPoint::WalAppend`], [`FaultPoint::WalSync`],
//! [`FaultPoint::CheckpointWrite`]) that can inject an I/O error, tear
//! the write after N bytes, or kill the writer outright — the chaos
//! suite's kill-and-restart sweeps are built on these.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use ds_closure::api::NetworkUpdate;
use ds_closure::executor::ExecutionMode;
use ds_closure::{ClosureError, ComplementaryScope, EngineConfig, EngineSnapshot};
use ds_fault::{fire_disk, DiskFault, FaultPlan, FaultPoint};
use ds_fragment::{FragmentId, Fragmentation};
use ds_graph::{CsrGraph, Edge, NodeId, ScratchDijkstra};

// ------------------------------------------------------------------ crc

/// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0u32;
        while i < 256 {
            let mut c = i;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i as usize] = c;
            i += 1;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --------------------------------------------------------------- errors

/// Typed failures of the durability layer. Corruption is *not* an error:
/// torn and garbage bytes truncate the replay, by design.
#[derive(Debug)]
pub enum DurabilityError {
    /// A filesystem operation failed (including injected I/O faults).
    Io {
        op: &'static str,
        path: PathBuf,
        detail: String,
    },
    /// The directory holds no valid checkpoint to recover from — an
    /// empty directory, a WAL-only directory (records with no base
    /// state), or every checkpoint failed its checksum.
    NoCheckpoint { dir: PathBuf },
    /// The checkpointed inputs no longer build an engine (should not
    /// happen for states this crate wrote itself).
    Engine(ClosureError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { op, path, detail } => {
                write!(
                    f,
                    "durability I/O failure: {op} {}: {detail}",
                    path.display()
                )
            }
            DurabilityError::NoCheckpoint { dir } => write!(
                f,
                "no valid checkpoint in {}: nothing to recover from",
                dir.display()
            ),
            DurabilityError::Engine(e) => write!(f, "recovered state failed to build: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<ClosureError> for DurabilityError {
    fn from(e: ClosureError) -> Self {
        DurabilityError::Engine(e)
    }
}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io {
        op,
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

fn injected_err(op: &'static str, path: &Path) -> DurabilityError {
    DurabilityError::Io {
        op,
        path: path.to_path_buf(),
        detail: "injected I/O fault".to_string(),
    }
}

// ------------------------------------------------------------- encoding

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian cursor; every read can fail instead of
/// panicking, which is what makes garbage bytes a truncation point.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

const TAG_INSERT: u8 = 0;
const TAG_REMOVE: u8 = 1;

/// Guard against allocating absurd buffers when the length prefix itself
/// is garbage: no legal record payload comes anywhere near this.
const MAX_RECORD_LEN: u32 = 1 << 16;

/// One durable log entry: an update, its log sequence number, and the
/// serve epoch that was current when it was appended (informational —
/// replay recomputes which updates are effective).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    pub lsn: u64,
    pub epoch: u64,
    pub update: NetworkUpdate,
}

fn encode_update(buf: &mut Vec<u8>, update: &NetworkUpdate) {
    match *update {
        NetworkUpdate::Insert { edge, owner } => {
            buf.push(TAG_INSERT);
            put_u32(buf, edge.src.0);
            put_u32(buf, edge.dst.0);
            put_u64(buf, edge.cost);
            put_u64(buf, owner as u64);
        }
        NetworkUpdate::Remove { src, dst, owner } => {
            buf.push(TAG_REMOVE);
            put_u32(buf, src.0);
            put_u32(buf, dst.0);
            put_u64(buf, owner as u64);
        }
    }
}

fn decode_update(c: &mut Cursor<'_>) -> Option<NetworkUpdate> {
    match c.u8()? {
        TAG_INSERT => {
            let src = NodeId(c.u32()?);
            let dst = NodeId(c.u32()?);
            let cost = c.u64()?;
            let owner = usize::try_from(c.u64()?).ok()?;
            Some(NetworkUpdate::Insert {
                edge: Edge::new(src, dst, cost),
                owner,
            })
        }
        TAG_REMOVE => {
            let src = NodeId(c.u32()?);
            let dst = NodeId(c.u32()?);
            let owner = usize::try_from(c.u64()?).ok()?;
            Some(NetworkUpdate::Remove { src, dst, owner })
        }
        _ => None,
    }
}

/// Append one framed record to `buf`.
fn encode_record(buf: &mut Vec<u8>, rec: &WalRecord) {
    let mut payload = Vec::with_capacity(40);
    put_u64(&mut payload, rec.lsn);
    put_u64(&mut payload, rec.epoch);
    encode_update(&mut payload, &rec.update);
    put_u32(buf, payload.len() as u32);
    put_u32(buf, crc32(&payload));
    buf.extend_from_slice(&payload);
}

/// Decode the frame starting at `bytes[0]`. Returns the record and the
/// total frame size, or `None` if the frame is torn, corrupt or
/// malformed in any way — never panics on garbage.
fn decode_frame(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len == 0 || len > MAX_RECORD_LEN {
        return None;
    }
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let total = 8usize.checked_add(len as usize)?;
    if bytes.len() < total {
        return None; // torn tail
    }
    let payload = &bytes[8..total];
    if crc32(payload) != crc {
        return None; // bit rot
    }
    let mut c = Cursor::new(payload);
    let lsn = c.u64()?;
    let epoch = c.u64()?;
    let update = decode_update(&mut c)?;
    if !c.done() {
        return None; // trailing bytes inside a checksummed payload
    }
    Some((WalRecord { lsn, epoch, update }, total))
}

// ----------------------------------------------------------- checkpoint

const CKPT_MAGIC: &[u8; 8] = b"DSCKPT01";

fn scope_tag(scope: ComplementaryScope) -> u8 {
    match scope {
        ComplementaryScope::PerDisconnectionSet => 0,
        ComplementaryScope::PerFragmentBorder => 1,
    }
}

fn scope_from(tag: u8) -> Option<ComplementaryScope> {
    match tag {
        0 => Some(ComplementaryScope::PerDisconnectionSet),
        1 => Some(ComplementaryScope::PerFragmentBorder),
        _ => None,
    }
}

fn mode_tag(mode: ExecutionMode) -> u8 {
    match mode {
        ExecutionMode::Sequential => 0,
        ExecutionMode::Parallel => 1,
    }
}

fn mode_from(tag: u8) -> Option<ExecutionMode> {
    match tag {
        0 => Some(ExecutionMode::Sequential),
        1 => Some(ExecutionMode::Parallel),
        _ => None,
    }
}

/// The decoded inputs of a checkpoint: everything needed to rebuild a
/// snapshot (precompute runs on load).
struct CheckpointImage {
    lsn: u64,
    epoch: u64,
    symmetric: bool,
    cfg: EngineConfig,
    node_count: usize,
    /// Per fragment: (edges, nodes). Nodes are stored explicitly so
    /// seed-only members (nodes with no incident fragment edge — e.g.
    /// after removals) survive the round trip.
    fragments: Vec<(Vec<Edge>, Vec<NodeId>)>,
}

fn encode_checkpoint(snapshot: &EngineSnapshot, lsn: u64, epoch: u64) -> Vec<u8> {
    let frag = snapshot.fragmentation();
    let cfg = snapshot.config();
    let mut payload = Vec::with_capacity(4096);
    put_u64(&mut payload, lsn);
    put_u64(&mut payload, epoch);
    payload.push(u8::from(snapshot.is_symmetric()));
    payload.push(scope_tag(cfg.scope));
    payload.push(u8::from(cfg.store_paths));
    put_u64(&mut payload, cfg.max_chains as u64);
    put_u64(&mut payload, cfg.max_chain_len as u64);
    payload.push(mode_tag(cfg.mode));
    match cfg.hub {
        Some(h) => {
            payload.push(1);
            put_u64(&mut payload, h as u64);
        }
        None => {
            payload.push(0);
            put_u64(&mut payload, 0);
        }
    }
    put_u64(&mut payload, cfg.precompute_threads as u64);
    payload.push(u8::from(cfg.reach_index));
    put_u64(&mut payload, frag.node_count() as u64);
    put_u64(&mut payload, frag.fragment_count() as u64);
    for f in frag.fragments() {
        put_u64(&mut payload, f.nodes().len() as u64);
        for v in f.nodes() {
            put_u32(&mut payload, v.0);
        }
        put_u64(&mut payload, f.edges().len() as u64);
        for e in f.edges() {
            put_u32(&mut payload, e.src.0);
            put_u32(&mut payload, e.dst.0);
            put_u64(&mut payload, e.cost);
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&payload);
    put_u32(&mut out, crc32(&payload));
    out
}

/// Validate and decode checkpoint file bytes. `None` on any torn,
/// corrupt or malformed content.
fn decode_checkpoint(bytes: &[u8]) -> Option<CheckpointImage> {
    if bytes.len() < CKPT_MAGIC.len() + 4 || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return None;
    }
    let payload = &bytes[CKPT_MAGIC.len()..bytes.len() - 4];
    let stored = &bytes[bytes.len() - 4..];
    let stored = u32::from_le_bytes([stored[0], stored[1], stored[2], stored[3]]);
    if crc32(payload) != stored {
        return None;
    }
    let mut c = Cursor::new(payload);
    let lsn = c.u64()?;
    let epoch = c.u64()?;
    let symmetric = c.u8()? != 0;
    let scope = scope_from(c.u8()?)?;
    let store_paths = c.u8()? != 0;
    let max_chains = usize::try_from(c.u64()?).ok()?;
    let max_chain_len = usize::try_from(c.u64()?).ok()?;
    let mode = mode_from(c.u8()?)?;
    let hub_present = c.u8()? != 0;
    let hub_raw = c.u64()?;
    let hub: Option<FragmentId> = if hub_present {
        Some(usize::try_from(hub_raw).ok()?)
    } else {
        None
    };
    let precompute_threads = usize::try_from(c.u64()?).ok()?;
    let reach_index = c.u8()? != 0;
    let node_count = usize::try_from(c.u64()?).ok()?;
    let fragment_count = usize::try_from(c.u64()?).ok()?;
    // The payload is checksummed, so these counts are trusted sizes —
    // but still bounds-check every element read.
    let mut fragments = Vec::with_capacity(fragment_count.min(1 << 16));
    for _ in 0..fragment_count {
        let n_nodes = usize::try_from(c.u64()?).ok()?;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 20));
        for _ in 0..n_nodes {
            nodes.push(NodeId(c.u32()?));
        }
        let n_edges = usize::try_from(c.u64()?).ok()?;
        let mut edges = Vec::with_capacity(n_edges.min(1 << 20));
        for _ in 0..n_edges {
            let src = NodeId(c.u32()?);
            let dst = NodeId(c.u32()?);
            let cost = c.u64()?;
            edges.push(Edge::new(src, dst, cost));
        }
        fragments.push((edges, nodes));
    }
    if !c.done() {
        return None;
    }
    Some(CheckpointImage {
        lsn,
        epoch,
        symmetric,
        cfg: EngineConfig {
            scope,
            store_paths,
            max_chains,
            max_chain_len,
            mode,
            hub,
            precompute_threads,
            reach_index,
        },
        node_count,
        fragments,
    })
}

impl CheckpointImage {
    /// Rebuild the snapshot: fragmentation from the stored lists, the
    /// global closure graph from the fragment union (the same rule the
    /// update path uses), precompute via [`EngineSnapshot::build`].
    fn build_snapshot(self) -> Result<EngineSnapshot, DurabilityError> {
        let (edge_sets, seeds): (Vec<Vec<Edge>>, Vec<Vec<NodeId>>) =
            self.fragments.into_iter().unzip();
        let mut expanded = Vec::new();
        for set in &edge_sets {
            for e in set {
                expanded.push(*e);
                if self.symmetric && !e.is_loop() {
                    expanded.push(e.reversed());
                }
            }
        }
        let graph = CsrGraph::from_edges(self.node_count, &expanded);
        let frag = Fragmentation::new(self.node_count, edge_sets, seeds);
        Ok(EngineSnapshot::build(
            graph,
            frag,
            self.symmetric,
            self.cfg,
        )?)
    }
}

// ------------------------------------------------------- directory scan

fn parse_stamped(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

fn ckpt_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{lsn:020}.bin"))
}

fn segment_path(dir: &Path, start_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{start_lsn:020}.log"))
}

/// Checkpoint files in `dir`, sorted by LSN ascending.
pub fn checkpoint_paths(dir: &Path) -> Vec<(u64, PathBuf)> {
    stamped_paths(dir, "ckpt-", ".bin")
}

/// WAL segment files in `dir`, sorted by starting LSN ascending.
pub fn wal_paths(dir: &Path) -> Vec<(u64, PathBuf)> {
    stamped_paths(dir, "wal-", ".log")
}

fn stamped_paths(dir: &Path, prefix: &str, suffix: &str) -> Vec<(u64, PathBuf)> {
    let mut found = BTreeMap::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(stamp) = name.to_str().and_then(|n| parse_stamped(n, prefix, suffix)) {
                found.insert(stamp, entry.path());
            }
        }
    }
    found.into_iter().collect()
}

/// The valid sequential record prefix of a directory's WAL.
struct WalScan {
    records: Vec<WalRecord>,
    /// Scanning hit a torn/corrupt frame or a sequence break.
    truncated: bool,
    /// Segment where scanning stopped (last segment when clean) plus the
    /// number of valid bytes in it — the repair point for appends.
    tail: Option<(u64, PathBuf, u64)>,
    /// Segments lexically after the stop point (unreachable once the
    /// prefix is truncated).
    orphans: Vec<PathBuf>,
}

fn scan_wal(dir: &Path) -> Result<WalScan, DurabilityError> {
    let segments = wal_paths(dir);
    let mut records: Vec<WalRecord> = Vec::new();
    let mut truncated = false;
    let mut tail = None;
    let mut orphans = Vec::new();
    for (i, (start, path)) in segments.iter().enumerate() {
        if truncated {
            orphans.push(path.clone());
            continue;
        }
        let bytes = fs::read(path).map_err(|e| io_err("read", path, e))?;
        let mut pos = 0usize;
        while pos < bytes.len() {
            match decode_frame(&bytes[pos..]) {
                Some((rec, consumed)) => {
                    // Strictly sequential LSNs within and across
                    // segments: a break means lost context, and replay
                    // must stop at the last contiguous record.
                    if let Some(prev) = records.last() {
                        if rec.lsn != prev.lsn + 1 {
                            truncated = true;
                            break;
                        }
                    }
                    records.push(rec);
                    pos += consumed;
                }
                None => {
                    truncated = true;
                    break;
                }
            }
        }
        tail = Some((*start, path.clone(), pos as u64));
        if truncated && i + 1 < segments.len() {
            // Later segments are beyond the torn point.
            continue;
        }
    }
    Ok(WalScan {
        records,
        truncated,
        tail,
        orphans,
    })
}

// --------------------------------------------------------------- config

/// Where and how eagerly to persist. Obtain via [`DurabilityConfig::at`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding checkpoints and WAL segments.
    pub dir: PathBuf,
    /// Checkpoint after this many appended records (0 disables the
    /// count trigger).
    pub checkpoint_updates: u64,
    /// Checkpoint after this many appended WAL bytes (0 disables the
    /// bytes trigger).
    pub checkpoint_bytes: u64,
    /// `fdatasync` the WAL after every group commit. On (the default)
    /// an acknowledged update survives an OS crash; off, only a process
    /// crash.
    pub fsync: bool,
}

impl DurabilityConfig {
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_updates: 4096,
            checkpoint_bytes: 4 << 20,
            fsync: true,
        }
    }
}

// ---------------------------------------------------------------- store

/// The serve writer's handle on the durable state: appends group-committed
/// WAL batches, tracks the checkpoint thresholds, writes checkpoints and
/// rotates/prunes segments.
///
/// Single-writer by construction (owned by the serve writer thread); the
/// snapshot handed to [`DurableStore::attach`] must be the state the
/// directory recovers to — [`recover`] / `System::open` produce exactly
/// that.
#[derive(Debug)]
pub struct DurableStore {
    cfg: DurabilityConfig,
    wal: File,
    wal_path: PathBuf,
    /// Valid durable bytes in the current segment (repair truncates here).
    wal_len: u64,
    /// A torn/failed append left garbage after `wal_len`; repaired lazily
    /// before the next append (recovery handles it too).
    needs_repair: bool,
    next_lsn: u64,
    last_ckpt_lsn: u64,
    records_since_ckpt: u64,
    bytes_since_ckpt: u64,
    fault: Option<Arc<FaultPlan>>,
    buf: Vec<u8>,
}

impl DurableStore {
    /// Open-or-create the durable state at `cfg.dir` for `snapshot`
    /// (current epoch `epoch`).
    ///
    /// * Fresh directory: writes the initial checkpoint (LSN 0) so a
    ///   later [`recover`] always has a base state, and starts segment 1.
    /// * Existing directory: repairs any torn WAL tail and continues
    ///   appending after the last durable record. The caller's snapshot
    ///   must be the recovered state of that directory.
    pub fn attach(
        cfg: DurabilityConfig,
        snapshot: &EngineSnapshot,
        epoch: u64,
        fault: Option<Arc<FaultPlan>>,
    ) -> Result<Self, DurabilityError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", &cfg.dir, e))?;
        let have_ckpt = checkpoint_paths(&cfg.dir)
            .iter()
            .rev()
            .any(|(_, p)| fs::read(p).is_ok_and(|b| decode_checkpoint(&b).is_some()));
        let scan = scan_wal(&cfg.dir)?;
        let last_lsn = scan.records.last().map_or(0, |r| r.lsn);
        let mut store = if have_ckpt {
            // Continue the existing log: repair the tail, keep appending.
            let (_start, path, valid) = match scan.tail {
                Some(t) => t,
                None => {
                    // Checkpoint but no segment: start a fresh one.
                    let start = last_lsn + 1;
                    let path = segment_path(&cfg.dir, start);
                    (start, path, 0)
                }
            };
            let wal = OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err("open segment", &path, e))?;
            let disk_len = wal.metadata().map_err(|e| io_err("stat", &path, e))?.len();
            let newest_ckpt = checkpoint_paths(&cfg.dir)
                .iter()
                .rev()
                .find_map(|(lsn, p)| {
                    fs::read(p)
                        .ok()
                        .and_then(|b| decode_checkpoint(&b).map(|_| *lsn))
                })
                .unwrap_or(0);
            for orphan in &scan.orphans {
                let _ = fs::remove_file(orphan);
            }
            DurableStore {
                cfg,
                wal,
                wal_path: path,
                wal_len: valid,
                needs_repair: scan.truncated || disk_len != valid,
                next_lsn: last_lsn.max(newest_ckpt) + 1,
                last_ckpt_lsn: newest_ckpt,
                records_since_ckpt: last_lsn.saturating_sub(newest_ckpt),
                bytes_since_ckpt: 0,
                fault,
                buf: Vec::with_capacity(4096),
            }
        } else {
            // No base state on disk (fresh dir, or stray segments with
            // no checkpoint): the caller's snapshot is authoritative —
            // checkpoint it, then start a fresh segment beyond any
            // stray record so LSNs never collide.
            let base_lsn = last_lsn;
            let path = segment_path(&cfg.dir, base_lsn + 1);
            let wal = OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err("open segment", &path, e))?;
            let mut store = DurableStore {
                cfg,
                wal,
                wal_path: path,
                wal_len: 0,
                needs_repair: false,
                next_lsn: base_lsn + 1,
                last_ckpt_lsn: base_lsn,
                records_since_ckpt: 0,
                bytes_since_ckpt: 0,
                fault,
                buf: Vec::with_capacity(4096),
            };
            store.checkpoint(snapshot, epoch)?;
            store
        };
        store.buf.clear();
        Ok(store)
    }

    /// The LSN of the last durably appended record (0 before any).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// The LSN the newest durable checkpoint covers through.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.last_ckpt_lsn
    }

    /// Whether a checkpoint threshold has tripped.
    pub fn should_checkpoint(&self) -> bool {
        (self.cfg.checkpoint_updates > 0 && self.records_since_ckpt >= self.cfg.checkpoint_updates)
            || (self.cfg.checkpoint_bytes > 0 && self.bytes_since_ckpt >= self.cfg.checkpoint_bytes)
    }

    /// Group-commit `updates` (stamped with the serve epoch current at
    /// append time): one buffered write, one optional `fdatasync`.
    /// Returns the LSN of the first record.
    ///
    /// On failure — injected or real, including a torn write — nothing
    /// is acknowledged: the tail is marked for repair (truncated before
    /// the next append; [`recover`] truncates it too) and no LSN is
    /// consumed, so the caller must *not* apply the updates.
    pub fn append_batch(
        &mut self,
        epoch: u64,
        updates: &[NetworkUpdate],
    ) -> Result<u64, DurabilityError> {
        if updates.is_empty() {
            return Ok(self.next_lsn);
        }
        self.repair_tail()?;
        self.buf.clear();
        let first = self.next_lsn;
        for (i, update) in updates.iter().enumerate() {
            encode_record(
                &mut self.buf,
                &WalRecord {
                    lsn: first + i as u64,
                    epoch,
                    update: *update,
                },
            );
        }
        let write_len = match fire_disk(&self.fault, FaultPoint::WalAppend) {
            Some(DiskFault::Error) => {
                return Err(injected_err("append", &self.wal_path));
            }
            Some(DiskFault::Torn { keep }) => {
                // Simulate the crash mid-write: the first `keep` bytes
                // land, then the failure surfaces. The garbage stays on
                // disk until repair (or recovery) truncates it.
                let keep = keep.min(self.buf.len());
                self.wal
                    .write_all(&self.buf[..keep])
                    .map_err(|e| io_err("append", &self.wal_path, e))?;
                let _ = self.wal.flush();
                self.needs_repair = true;
                return Err(injected_err("append (torn)", &self.wal_path));
            }
            None => self.buf.len(),
        };
        if let Err(e) = self.wal.write_all(&self.buf[..write_len]) {
            self.needs_repair = true;
            return Err(io_err("append", &self.wal_path, e));
        }
        if self.cfg.fsync {
            if fire_disk(&self.fault, FaultPoint::WalSync).is_some() {
                // Sync failed: durability of the written bytes is
                // unknown. Refuse the acknowledgement and repair before
                // the next append.
                self.needs_repair = true;
                return Err(injected_err("sync", &self.wal_path));
            }
            if let Err(e) = self.wal.sync_data() {
                self.needs_repair = true;
                return Err(io_err("sync", &self.wal_path, e));
            }
        }
        self.wal_len += self.buf.len() as u64;
        self.next_lsn += updates.len() as u64;
        self.records_since_ckpt += updates.len() as u64;
        self.bytes_since_ckpt += self.buf.len() as u64;
        Ok(first)
    }

    /// Truncate un-acknowledged garbage off the segment tail.
    fn repair_tail(&mut self) -> Result<(), DurabilityError> {
        if !self.needs_repair {
            return Ok(());
        }
        self.wal
            .set_len(self.wal_len)
            .map_err(|e| io_err("truncate", &self.wal_path, e))?;
        self.wal
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &self.wal_path, e))?;
        self.needs_repair = false;
        Ok(())
    }

    /// Write a checkpoint of `snapshot` covering through [`Self::last_lsn`],
    /// rotate to a fresh WAL segment and prune everything the new
    /// checkpoint supersedes.
    ///
    /// Failure is non-fatal to durability: predecessors are pruned only
    /// after the new image is fully written and synced, so a torn or
    /// failed checkpoint leaves the old checkpoint + full WAL in place
    /// and [`recover`] ignores the invalid image (bad checksum).
    pub fn checkpoint(
        &mut self,
        snapshot: &EngineSnapshot,
        epoch: u64,
    ) -> Result<(), DurabilityError> {
        let lsn = self.last_lsn();
        let bytes = encode_checkpoint(snapshot, lsn, epoch);
        let path = ckpt_path(&self.cfg.dir, lsn);
        match fire_disk(&self.fault, FaultPoint::CheckpointWrite) {
            Some(DiskFault::Error) => return Err(injected_err("checkpoint", &path)),
            Some(DiskFault::Torn { keep }) => {
                // The crash-mid-checkpoint image: a prefix of the file
                // lands and fails its checksum on load.
                let keep = keep.min(bytes.len());
                fs::write(&path, &bytes[..keep]).map_err(|e| io_err("checkpoint", &path, e))?;
                return Err(injected_err("checkpoint (torn)", &path));
            }
            None => {}
        }
        let mut f = File::create(&path).map_err(|e| io_err("checkpoint", &path, e))?;
        f.write_all(&bytes)
            .map_err(|e| io_err("checkpoint", &path, e))?;
        f.sync_all()
            .map_err(|e| io_err("checkpoint sync", &path, e))?;
        drop(f);

        // The image is durable: rotate to a fresh segment, then prune
        // superseded checkpoints and fully-covered segments.
        let new_start = self.next_lsn;
        let new_path = segment_path(&self.cfg.dir, new_start);
        let wal = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&new_path)
            .map_err(|e| io_err("open segment", &new_path, e))?;
        let old_path = std::mem::replace(&mut self.wal_path, new_path);
        self.wal = wal;
        self.wal_len = 0;
        self.needs_repair = false;
        self.last_ckpt_lsn = lsn;
        self.records_since_ckpt = 0;
        self.bytes_since_ckpt = 0;
        for (stamp, p) in checkpoint_paths(&self.cfg.dir) {
            if stamp < lsn {
                let _ = fs::remove_file(p);
            }
        }
        for (start, p) in wal_paths(&self.cfg.dir) {
            // A segment starting at `start` holds records >= start; it is
            // fully covered when all of them are <= the checkpoint LSN,
            // i.e. when the *next* segment starts at most at lsn + 1.
            if p != self.wal_path && p != old_path && start <= lsn {
                let _ = fs::remove_file(p);
            }
        }
        // The just-rotated-out segment is covered entirely by the new
        // checkpoint (its records are all <= lsn): safe to prune too.
        if old_path != self.wal_path {
            let _ = fs::remove_file(old_path);
        }
        Ok(())
    }

    /// Records with `lsn > after` in the durable log — the redo suffix a
    /// respawned writer replays to reconverge its working copy with the
    /// durable state (appended-but-unpublished updates).
    pub fn read_suffix(&mut self, after: u64) -> Result<Vec<WalRecord>, DurabilityError> {
        self.repair_tail()?;
        let scan = scan_wal(&self.cfg.dir)?;
        Ok(scan.records.into_iter().filter(|r| r.lsn > after).collect())
    }
}

// -------------------------------------------------------------- recover

/// The outcome of [`recover`]: a rebuilt snapshot plus the replay
/// accounting the caller (and the chaos oracle) needs.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered engine state, precompute rebuilt.
    pub snapshot: EngineSnapshot,
    /// Checkpoint epoch plus one per *effective* replayed update — the
    /// epoch a serve tier resuming from this state should publish at.
    pub epoch: u64,
    /// The LSN the base checkpoint covered through.
    pub checkpoint_lsn: u64,
    /// The last replayed record's LSN (== `checkpoint_lsn` when none).
    pub last_lsn: u64,
    /// WAL records replayed on top of the checkpoint (effective or not).
    pub replayed: usize,
    /// Replay stopped at a torn/corrupt record before the log's physical
    /// end — the surviving prefix is what was recovered.
    pub truncated: bool,
}

/// Rebuild the newest consistent state from `dir`: newest valid
/// checkpoint, then the contiguous WAL suffix, stopping at the first
/// torn or corrupt record. Never panics on garbage bytes; a directory
/// with no valid checkpoint (empty, WAL-only, or all images corrupt) is
/// [`DurabilityError::NoCheckpoint`].
pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, DurabilityError> {
    let dir = dir.as_ref();
    let mut image = None;
    for (_, path) in checkpoint_paths(dir).into_iter().rev() {
        if let Ok(bytes) = fs::read(&path) {
            if let Some(img) = decode_checkpoint(&bytes) {
                image = Some(img);
                break;
            }
        }
    }
    let image = image.ok_or_else(|| DurabilityError::NoCheckpoint {
        dir: dir.to_path_buf(),
    })?;
    let checkpoint_lsn = image.lsn;
    let mut epoch = image.epoch;
    let mut snapshot = image.build_snapshot()?;

    let scan = scan_wal(dir)?;
    let mut scratch = ScratchDijkstra::new();
    let mut replayed = 0usize;
    let mut last_lsn = checkpoint_lsn;
    for rec in &scan.records {
        if rec.lsn <= checkpoint_lsn {
            continue;
        }
        // Replay mirrors the writer: apply, bump the epoch only when the
        // update was effective, and ignore per-update errors (the writer
        // acknowledged those as errors without applying anything).
        if let Ok(report) = snapshot.maintain(&rec.update, &mut scratch) {
            if report.sites_touched > 0 || report.full_recompute {
                epoch += 1;
            }
        }
        last_lsn = rec.lsn;
        replayed += 1;
    }
    snapshot.ensure_reach();
    Ok(Recovered {
        snapshot,
        epoch,
        checkpoint_lsn,
        last_lsn,
        replayed,
        truncated: scan.truncated,
    })
}

// ----------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ds-durability-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A 2-fragment path graph 0-1-2-3-4-5, split {0,1,2} / {2,3,4,5}.
    fn small_snapshot() -> EngineSnapshot {
        let edges = |pairs: &[(u32, u32)]| -> Vec<Edge> {
            pairs
                .iter()
                .map(|&(a, b)| Edge::new(n(a), n(b), 1))
                .collect()
        };
        let f0 = edges(&[(0, 1), (1, 2)]);
        let f1 = edges(&[(2, 3), (3, 4), (4, 5)]);
        let mut expanded = Vec::new();
        for e in f0.iter().chain(f1.iter()) {
            expanded.push(*e);
            expanded.push(e.reversed());
        }
        let graph = CsrGraph::from_edges(6, &expanded);
        let frag = Fragmentation::new(6, vec![f0, f1], vec![vec![], vec![]]);
        EngineSnapshot::build(graph, frag, true, EngineConfig::default()).expect("valid state")
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trip_and_torn_decode() {
        let recs = [
            WalRecord {
                lsn: 7,
                epoch: 3,
                update: NetworkUpdate::Insert {
                    edge: Edge::new(n(1), n(2), 9),
                    owner: 0,
                },
            },
            WalRecord {
                lsn: 8,
                epoch: 4,
                update: NetworkUpdate::Remove {
                    src: n(4),
                    dst: n(5),
                    owner: 1,
                },
            },
        ];
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(&mut buf, r);
        }
        let (r0, used0) = decode_frame(&buf).expect("first frame");
        assert_eq!(r0, recs[0]);
        let (r1, used1) = decode_frame(&buf[used0..]).expect("second frame");
        assert_eq!(r1, recs[1]);
        assert_eq!(used0 + used1, buf.len());
        // Every strict prefix of a frame is torn, never a panic.
        for cut in 0..used0 {
            assert!(decode_frame(&buf[..cut]).is_none(), "cut at {cut}");
        }
        // A flipped bit anywhere in the first frame invalidates it.
        for i in 0..used0 {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            if let Some((r, _)) = decode_frame(&bad) {
                assert_ne!(r, recs[0], "flip at {i} must not decode to the original");
            }
        }
    }

    #[test]
    fn checkpoint_round_trip_rebuilds_identical_answers() {
        let snap = small_snapshot();
        let bytes = encode_checkpoint(&snap, 42, 7);
        let img = decode_checkpoint(&bytes).expect("valid image");
        assert_eq!(img.lsn, 42);
        assert_eq!(img.epoch, 7);
        let rebuilt = img.build_snapshot().expect("rebuild");
        assert_eq!(rebuilt.graph().node_count(), snap.graph().node_count());
        assert_eq!(rebuilt.graph().edge_count(), snap.graph().edge_count());
        for (x, y) in [(0u32, 5u32), (1, 4), (5, 0)] {
            assert_eq!(
                ds_closure::baseline::shortest_path_cost(rebuilt.graph(), n(x), n(y)),
                ds_closure::baseline::shortest_path_cost(snap.graph(), n(x), n(y)),
                "{x}->{y}"
            );
        }
        // Corruption anywhere invalidates the image.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_checkpoint(&bad).is_none(), "flip at {i}");
        }
        assert!(decode_checkpoint(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_checkpoint(b"").is_none());
    }

    #[test]
    fn attach_append_recover_cycle() {
        let dir = tmpdir("cycle");
        let snap = small_snapshot();
        let mut store =
            DurableStore::attach(DurabilityConfig::at(&dir), &snap, 0, None).expect("attach");
        assert_eq!(store.last_lsn(), 0);

        // Three appends: an effective insert, a no-op removal, an
        // effective removal.
        let ins = NetworkUpdate::Insert {
            edge: Edge::new(n(0), n(2), 1),
            owner: 0,
        };
        let noop = NetworkUpdate::Remove {
            src: n(0),
            dst: n(5),
            owner: 1,
        };
        let rem = NetworkUpdate::Remove {
            src: n(0),
            dst: n(2),
            owner: 0,
        };
        assert_eq!(store.append_batch(0, &[ins]).expect("append"), 1);
        assert_eq!(store.append_batch(1, &[noop, rem]).expect("append"), 2);
        assert_eq!(store.last_lsn(), 3);

        let rec = recover(&dir).expect("recover");
        assert_eq!(rec.checkpoint_lsn, 0);
        assert_eq!(rec.replayed, 3);
        assert_eq!(rec.last_lsn, 3);
        assert!(!rec.truncated);
        // Insert then remove of the same edge: effective twice.
        assert_eq!(rec.epoch, 2);
        assert_eq!(
            rec.snapshot.graph().edge_count(),
            snap.graph().edge_count(),
            "insert+remove cancels out"
        );

        // Re-attach continues the LSN sequence.
        let mut store2 =
            DurableStore::attach(DurabilityConfig::at(&dir), &rec.snapshot, rec.epoch, None)
                .expect("re-attach");
        assert_eq!(store2.last_lsn(), 3);
        assert_eq!(store2.append_batch(2, &[ins]).expect("append"), 4);
        let rec2 = recover(&dir).expect("recover again");
        assert_eq!(rec2.replayed, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_prunes_and_recovery_prefers_it() {
        let dir = tmpdir("ckpt");
        let snap = small_snapshot();
        let mut cfg = DurabilityConfig::at(&dir);
        cfg.checkpoint_updates = 2;
        let mut store = DurableStore::attach(cfg, &snap, 0, None).expect("attach");
        let mut live = snap.clone();
        let mut scratch = ScratchDijkstra::new();
        let mut epoch = 0u64;
        for i in 0..5u64 {
            let update = NetworkUpdate::Insert {
                edge: Edge::new(n(0), n(2), 10 + i),
                owner: 0,
            };
            store.append_batch(epoch, &[update]).expect("append");
            live.maintain(&update, &mut scratch).expect("apply");
            epoch += 1;
            if store.should_checkpoint() {
                store.checkpoint(&live, epoch).expect("checkpoint");
            }
        }
        // Thresholds tripped at least twice; old state was pruned.
        let ckpts = checkpoint_paths(&dir);
        assert_eq!(ckpts.len(), 1, "superseded checkpoints pruned: {ckpts:?}");
        assert!(ckpts[0].0 >= 4);
        assert!(wal_paths(&dir).len() <= 2, "covered segments pruned");

        let rec = recover(&dir).expect("recover");
        assert_eq!(rec.epoch, epoch);
        assert!(rec.replayed <= 1, "most updates come from the checkpoint");
        for (x, y) in [(0u32, 5u32), (0, 2), (3, 1)] {
            assert_eq!(
                ds_closure::baseline::shortest_path_cost(rec.snapshot.graph(), n(x), n(y)),
                ds_closure::baseline::shortest_path_cost(live.graph(), n(x), n(y)),
                "{x}->{y}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_is_invisible_after_recovery_and_repair() {
        let dir = tmpdir("torn");
        let snap = small_snapshot();
        let plan = Arc::new(FaultPlan::new().torn_at(FaultPoint::WalAppend, 2, 5));
        let mut store = DurableStore::attach(
            DurabilityConfig::at(&dir),
            &snap,
            0,
            Some(Arc::clone(&plan)),
        )
        .expect("attach");
        let u1 = NetworkUpdate::Insert {
            edge: Edge::new(n(0), n(2), 3),
            owner: 0,
        };
        let u2 = NetworkUpdate::Insert {
            edge: Edge::new(n(3), n(5), 3),
            owner: 1,
        };
        store.append_batch(0, &[u1]).expect("first append clean");
        let err = store
            .append_batch(1, &[u2])
            .expect_err("second append torn");
        assert!(matches!(err, DurabilityError::Io { .. }));

        // Recovery sees the clean prefix only.
        let rec = recover(&dir).expect("recover over torn tail");
        assert_eq!(rec.replayed, 1);
        assert!(rec.truncated, "the torn frame was detected");

        // The store repairs the tail before the next append; the rule is
        // one-shot so this one lands.
        store.append_batch(1, &[u2]).expect("append after repair");
        let rec2 = recover(&dir).expect("recover clean");
        assert_eq!(rec2.replayed, 2);
        assert!(!rec2.truncated);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_checkpoint_leaves_recovery_intact() {
        let dir = tmpdir("ckpt-fault");
        let snap = small_snapshot();
        let plan = Arc::new(
            FaultPlan::new()
                .torn_at(FaultPoint::CheckpointWrite, 2, 16)
                .fail_at(FaultPoint::CheckpointWrite, 3),
        );
        // Occurrence 1 is the attach-time initial checkpoint: clean.
        let mut store = DurableStore::attach(
            DurabilityConfig::at(&dir),
            &snap,
            0,
            Some(Arc::clone(&plan)),
        )
        .expect("attach");
        let mut live = snap.clone();
        let mut scratch = ScratchDijkstra::new();
        let update = NetworkUpdate::Insert {
            edge: Edge::new(n(0), n(2), 2),
            owner: 0,
        };
        store.append_batch(0, &[update]).expect("append");
        live.maintain(&update, &mut scratch).expect("apply");

        // Torn checkpoint image: write fails, old state stays usable.
        assert!(store.checkpoint(&live, 1).is_err());
        let rec = recover(&dir).expect("recover past torn checkpoint");
        assert_eq!(rec.checkpoint_lsn, 0, "fell back to the initial image");
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.epoch, 1);

        // Injected error: same story.
        assert!(store.checkpoint(&live, 1).is_err());
        assert!(recover(&dir).is_ok());

        // Rules exhausted: the checkpoint lands and takes over.
        store.checkpoint(&live, 1).expect("clean checkpoint");
        let rec2 = recover(&dir).expect("recover from new checkpoint");
        assert_eq!(rec2.checkpoint_lsn, 1);
        assert_eq!(rec2.replayed, 0);
        assert_eq!(rec2.epoch, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_wal_only_dirs_are_typed_errors() {
        let dir = tmpdir("empty");
        assert!(matches!(
            recover(&dir),
            Err(DurabilityError::NoCheckpoint { .. })
        ));
        fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(
            recover(&dir),
            Err(DurabilityError::NoCheckpoint { .. })
        ));
        // WAL-only: records with no base state to replay onto.
        let mut buf = Vec::new();
        encode_record(
            &mut buf,
            &WalRecord {
                lsn: 1,
                epoch: 0,
                update: NetworkUpdate::Remove {
                    src: n(0),
                    dst: n(1),
                    owner: 0,
                },
            },
        );
        fs::write(segment_path(&dir, 1), &buf).expect("write segment");
        assert!(matches!(
            recover(&dir),
            Err(DurabilityError::NoCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_suffix_returns_unpublished_records() {
        let dir = tmpdir("suffix");
        let snap = small_snapshot();
        let mut store =
            DurableStore::attach(DurabilityConfig::at(&dir), &snap, 0, None).expect("attach");
        let updates: Vec<NetworkUpdate> = (0..4u64)
            .map(|i| NetworkUpdate::Insert {
                edge: Edge::new(n(0), n(2), 5 + i),
                owner: 0,
            })
            .collect();
        store.append_batch(0, &updates).expect("append");
        let suffix = store.read_suffix(2).expect("suffix");
        assert_eq!(suffix.iter().map(|r| r.lsn).collect::<Vec<_>>(), vec![3, 4]);
        assert!(store.read_suffix(4).expect("empty suffix").is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
