//! Deterministic fault injection for the threaded subsystems, plus the
//! poison-tolerant lock helpers the supervisors rely on.
//!
//! Every threaded tier of the workspace — the serve worker pool, the
//! serve writer, the machine's site threads, the bulk materialize pool —
//! carries an `Option<Arc<FaultPlan>>` and calls [`fire`] at a small set
//! of named [`FaultPoint`]s. With no plan armed (`None`, the production
//! configuration) a hook is a single branch on an `Option` — no
//! atomics, no locks, nothing to configure out with `cfg`. With a plan
//! armed, the plan counts occurrences per point and, when a rule's
//! occurrence number comes up, injects the failure:
//!
//! * [`FaultAction::Panic`] — `panic!` at the hook, exercising the
//!   caller's `catch_unwind` isolation and supervisor respawn path;
//! * [`FaultAction::Delay`] — sleep at the hook, exercising deadlines
//!   and timeout-based failure detection;
//! * [`FaultAction::Fail`] — [`fire`] returns `true` and the caller
//!   turns it into its own typed error, exercising error propagation
//!   without an unwind.
//!
//! Plans are deterministic: a rule fires at an exact per-point
//! occurrence count, and each rule fires at most once, so a supervised
//! component that restarts after an injected failure is *not* killed
//! again — which is exactly what lets the chaos suite assert recovery.
//! [`FaultScenario::from_seed`] derives a single-fault scenario from a
//! seed so a test can sweep seeds and cover every scenario kind without
//! enumerating them by hand.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Lock a mutex, recovering the guard if a panicking peer poisoned it.
///
/// Poisoning is advisory: every shared structure in this workspace keeps
/// its invariants across panics (counters, queues of owned jobs, caches
/// of immutable answers), because the panic sites are either injected
/// fault hooks or evaluation code that never holds these locks. A worker
/// panic must therefore not cascade into unrelated readers of the same
/// queue or cache.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_unpoisoned`].
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// A named hook location. The variants carry the component index so a
/// plan can target "worker 2" or "site 0" specifically; the occurrence
/// counter is kept per distinct `FaultPoint` value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// A serve worker about to evaluate one micro-batch job.
    ServeWorker { worker: usize },
    /// The serve writer about to publish an epoch.
    ServeWriter,
    /// A machine site thread about to process one request message.
    MachineSite { site: usize },
    /// A bulk materialize worker about to run one fragment round.
    BulkWorker { fragment: usize },
    /// The durable store about to append a group-committed WAL batch.
    WalAppend,
    /// The durable store about to fsync the WAL after an append.
    WalSync,
    /// The durable store about to write a checkpoint image.
    CheckpointWrite,
}

/// What an armed rule injects when its occurrence comes up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// `panic!` at the hook (the component dies mid-flight).
    Panic,
    /// Sleep at the hook, then proceed normally.
    Delay(Duration),
    /// Report an injected failure to the caller ([`fire`] returns
    /// `true`); the caller maps it to its own typed error.
    Fail,
    /// Disk-point only: a short write — the first `keep` bytes of the
    /// attempted write reach the medium, the rest are lost (a torn
    /// record). At non-disk points this behaves like [`FaultAction::Fail`].
    Torn { keep: usize },
}

/// What a disk fault hook ([`fire_disk`]) injects into an I/O attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// The whole operation fails with an injected I/O error; no bytes
    /// reach the medium.
    Error,
    /// A short write: only the first `keep` bytes of the attempt land on
    /// the medium before the "crash" — the classic torn record.
    Torn { keep: usize },
}

#[derive(Debug)]
struct Rule {
    point: FaultPoint,
    /// Fire on the `nth` occurrence of `point` (1-based).
    nth: u64,
    action: FaultAction,
    /// Rules are one-shot so a respawned component survives.
    fired: std::sync::atomic::AtomicBool,
}

/// A deterministic, seed-friendly set of fault rules shared (via `Arc`)
/// with every thread of the component under test.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
    counts: Mutex<HashMap<FaultPoint, u64>>,
    fired: AtomicU64,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panic at the `nth` occurrence of `point`.
    pub fn panic_at(self, point: FaultPoint, nth: u64) -> Self {
        self.rule(point, nth, FaultAction::Panic)
    }

    /// Sleep `delay` at the `nth` occurrence of `point`.
    pub fn delay_at(self, point: FaultPoint, nth: u64, delay: Duration) -> Self {
        self.rule(point, nth, FaultAction::Delay(delay))
    }

    /// Report an injected failure at the `nth` occurrence of `point`.
    pub fn fail_at(self, point: FaultPoint, nth: u64) -> Self {
        self.rule(point, nth, FaultAction::Fail)
    }

    /// Tear the `nth` write at `point` after `keep` bytes (disk points).
    pub fn torn_at(self, point: FaultPoint, nth: u64, keep: usize) -> Self {
        self.rule(point, nth, FaultAction::Torn { keep })
    }

    fn rule(mut self, point: FaultPoint, nth: u64, action: FaultAction) -> Self {
        self.rules.push(Rule {
            point,
            nth: nth.max(1),
            action,
            fired: std::sync::atomic::AtomicBool::new(false),
        });
        self
    }

    /// Count one occurrence of `point` and inject any matching rule.
    /// Returns `true` when the caller must fail (a [`FaultAction::Fail`]
    /// rule fired); panics from the hook on [`FaultAction::Panic`].
    pub fn fire(&self, point: FaultPoint) -> bool {
        let n = {
            let mut counts = lock_unpoisoned(&self.counts);
            let n = counts.entry(point).or_insert(0);
            *n += 1;
            *n
        };
        let mut must_fail = false;
        let mut delay: Option<Duration> = None;
        let mut panic_now = false;
        for rule in &self.rules {
            if rule.point != point || rule.nth != n {
                continue;
            }
            if rule.fired.swap(true, Ordering::SeqCst) {
                continue;
            }
            self.fired.fetch_add(1, Ordering::SeqCst);
            match rule.action {
                FaultAction::Panic => panic_now = true,
                FaultAction::Delay(d) => delay = Some(d),
                FaultAction::Fail | FaultAction::Torn { .. } => must_fail = true,
            }
        }
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        if panic_now {
            panic!("injected fault: {point:?} occurrence {n}");
        }
        must_fail
    }

    /// Count one occurrence of a *disk* `point` and inject any matching
    /// rule as a [`DiskFault`]. [`FaultAction::Panic`] panics before any
    /// bytes are written (the process dies at the fault point);
    /// [`FaultAction::Delay`] sleeps then proceeds; [`FaultAction::Fail`]
    /// maps to [`DiskFault::Error`] and [`FaultAction::Torn`] to
    /// [`DiskFault::Torn`]. Rules stay one-shot.
    pub fn fire_disk(&self, point: FaultPoint) -> Option<DiskFault> {
        let n = {
            let mut counts = lock_unpoisoned(&self.counts);
            let n = counts.entry(point).or_insert(0);
            *n += 1;
            *n
        };
        let mut injected: Option<DiskFault> = None;
        let mut delay: Option<Duration> = None;
        let mut panic_now = false;
        for rule in &self.rules {
            if rule.point != point || rule.nth != n {
                continue;
            }
            if rule.fired.swap(true, Ordering::SeqCst) {
                continue;
            }
            self.fired.fetch_add(1, Ordering::SeqCst);
            match rule.action {
                FaultAction::Panic => panic_now = true,
                FaultAction::Delay(d) => delay = Some(d),
                FaultAction::Fail => injected = Some(DiskFault::Error),
                FaultAction::Torn { keep } => injected = Some(DiskFault::Torn { keep }),
            }
        }
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        if panic_now {
            panic!("injected disk fault: {point:?} occurrence {n}");
        }
        injected
    }

    /// Rules that have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// `true` once every rule has fired — the recovery phase of a chaos
    /// run, where the component must behave normally again.
    pub fn exhausted(&self) -> bool {
        self.fired() >= self.rules.len() as u64
    }

    /// Number of rules in the plan.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

/// Fire a hook against an optionally armed plan. The disarmed path is a
/// single `Option` branch — this is the production fast path and is what
/// the serve bench's fault-overhead row measures.
#[inline]
pub fn fire(plan: &Option<Arc<FaultPlan>>, point: FaultPoint) -> bool {
    match plan {
        None => false,
        Some(p) => p.fire(point),
    }
}

/// Fire a disk hook against an optionally armed plan. Disarmed: one
/// `Option` branch, no counting — the production write path.
#[inline]
pub fn fire_disk(plan: &Option<Arc<FaultPlan>>, point: FaultPoint) -> Option<DiskFault> {
    match plan {
        None => None,
        Some(p) => p.fire_disk(point),
    }
}

/// The component universe a seed-derived scenario targets.
#[derive(Clone, Copy, Debug)]
pub struct FaultUniverse {
    /// Serve workers in the pool.
    pub workers: usize,
    /// Machine site threads.
    pub sites: usize,
    /// Bulk materialize fragments.
    pub fragments: usize,
}

/// A single-fault scenario, derivable from a seed. The chaos suite
/// sweeps seeds; each seed yields one deterministic fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultScenario {
    /// Panic serve worker `worker` at its `job`th micro-batch.
    WorkerPanic { worker: usize, job: u64 },
    /// Kill machine site `site` while it processes its `message`th
    /// request.
    SiteKill { site: usize, message: u64 },
    /// Kill the serve writer at its `publication`th publication.
    WriterKill { publication: u64 },
    /// Delay every component's early occurrences by `millis` ms.
    DelayStorm { millis: u64 },
}

/// SplitMix64 — tiny, deterministic, dependency-free.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultScenario {
    /// Derive the scenario for `seed`. Consecutive seeds rotate through
    /// the scenario kinds, so any sweep of ≥ 4 seeds covers all of them.
    pub fn from_seed(seed: u64, universe: &FaultUniverse) -> FaultScenario {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
        let r0 = splitmix(&mut s);
        let r1 = splitmix(&mut s);
        match seed % 4 {
            0 => FaultScenario::WorkerPanic {
                worker: (r0 as usize) % universe.workers.max(1),
                job: 1 + r1 % 4,
            },
            1 if universe.sites > 0 => FaultScenario::SiteKill {
                site: (r0 as usize) % universe.sites,
                message: 1 + r1 % 4,
            },
            1 | 2 => FaultScenario::WriterKill {
                publication: 1 + r1 % 3,
            },
            _ => FaultScenario::DelayStorm {
                millis: 1 + r1 % 10,
            },
        }
    }

    /// Build the plan realizing this scenario.
    pub fn plan(&self, universe: &FaultUniverse) -> FaultPlan {
        match *self {
            FaultScenario::WorkerPanic { worker, job } => {
                FaultPlan::new().panic_at(FaultPoint::ServeWorker { worker }, job)
            }
            FaultScenario::SiteKill { site, message } => {
                FaultPlan::new().panic_at(FaultPoint::MachineSite { site }, message)
            }
            FaultScenario::WriterKill { publication } => {
                FaultPlan::new().panic_at(FaultPoint::ServeWriter, publication)
            }
            FaultScenario::DelayStorm { millis } => {
                let d = Duration::from_millis(millis);
                let mut plan = FaultPlan::new().delay_at(FaultPoint::ServeWriter, 1, d);
                for worker in 0..universe.workers {
                    plan = plan
                        .delay_at(FaultPoint::ServeWorker { worker }, 1, d)
                        .delay_at(FaultPoint::ServeWorker { worker }, 3, d);
                }
                for site in 0..universe.sites {
                    plan = plan.delay_at(FaultPoint::MachineSite { site }, 1, d);
                }
                plan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    const W0: FaultPoint = FaultPoint::ServeWorker { worker: 0 };

    #[test]
    fn disarmed_hook_is_a_noop() {
        let plan: Option<Arc<FaultPlan>> = None;
        for _ in 0..1000 {
            assert!(!fire(&plan, W0));
        }
    }

    #[test]
    fn panic_rule_fires_on_exact_occurrence_then_never_again() {
        let plan = Arc::new(FaultPlan::new().panic_at(W0, 3));
        let armed = Some(Arc::clone(&plan));
        assert!(!fire(&armed, W0));
        assert!(!fire(&armed, W0));
        let r = catch_unwind(AssertUnwindSafe(|| fire(&armed, W0)));
        assert!(r.is_err(), "third occurrence panics");
        assert_eq!(plan.fired(), 1);
        assert!(plan.exhausted());
        // A respawned component reaching the same point again survives.
        for _ in 0..10 {
            assert!(!fire(&armed, W0));
        }
    }

    #[test]
    fn fail_rule_reports_once() {
        let plan = Arc::new(FaultPlan::new().fail_at(FaultPoint::ServeWriter, 2));
        let armed = Some(Arc::clone(&plan));
        assert!(!fire(&armed, FaultPoint::ServeWriter));
        assert!(fire(&armed, FaultPoint::ServeWriter));
        assert!(!fire(&armed, FaultPoint::ServeWriter));
    }

    #[test]
    fn counters_are_per_point() {
        let w1 = FaultPoint::ServeWorker { worker: 1 };
        let plan = Arc::new(FaultPlan::new().fail_at(w1, 2));
        let armed = Some(Arc::clone(&plan));
        // Occurrences of worker 0 do not advance worker 1's counter.
        assert!(!fire(&armed, W0));
        assert!(!fire(&armed, W0));
        assert!(!fire(&armed, w1));
        assert!(fire(&armed, w1));
    }

    #[test]
    fn delay_rule_sleeps_then_proceeds() {
        let plan = Arc::new(FaultPlan::new().delay_at(W0, 1, Duration::from_millis(20)));
        let armed = Some(Arc::clone(&plan));
        let t0 = std::time::Instant::now();
        assert!(!fire(&armed, W0), "delay proceeds normally");
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(plan.exhausted());
    }

    #[test]
    fn seed_sweep_covers_every_scenario_kind() {
        let u = FaultUniverse {
            workers: 4,
            sites: 3,
            fragments: 3,
        };
        let mut kinds = [false; 4];
        for seed in 0..8 {
            match FaultScenario::from_seed(seed, &u) {
                FaultScenario::WorkerPanic { worker, job } => {
                    assert!(worker < u.workers && job >= 1);
                    kinds[0] = true;
                }
                FaultScenario::SiteKill { site, message } => {
                    assert!(site < u.sites && message >= 1);
                    kinds[1] = true;
                }
                FaultScenario::WriterKill { publication } => {
                    assert!(publication >= 1);
                    kinds[2] = true;
                }
                FaultScenario::DelayStorm { millis } => {
                    assert!(millis >= 1);
                    kinds[3] = true;
                }
            }
            // Deterministic: the same seed derives the same scenario.
            assert_eq!(
                FaultScenario::from_seed(seed, &u),
                FaultScenario::from_seed(seed, &u)
            );
        }
        assert!(kinds.iter().all(|&k| k), "all kinds covered: {kinds:?}");
    }

    #[test]
    fn scenario_plans_are_armed() {
        let u = FaultUniverse {
            workers: 2,
            sites: 2,
            fragments: 2,
        };
        for seed in 0..8 {
            let plan = FaultScenario::from_seed(seed, &u).plan(&u);
            assert!(plan.rule_count() >= 1);
            assert!(!plan.exhausted());
        }
    }

    #[test]
    fn disk_rules_inject_torn_and_error_once() {
        let plan = Arc::new(
            FaultPlan::new()
                .torn_at(FaultPoint::WalAppend, 2, 7)
                .fail_at(FaultPoint::WalSync, 1),
        );
        let armed = Some(Arc::clone(&plan));
        assert_eq!(fire_disk(&armed, FaultPoint::WalAppend), None);
        assert_eq!(
            fire_disk(&armed, FaultPoint::WalAppend),
            Some(DiskFault::Torn { keep: 7 })
        );
        // One-shot: the same occurrence count never fires twice.
        assert_eq!(fire_disk(&armed, FaultPoint::WalAppend), None);
        assert_eq!(
            fire_disk(&armed, FaultPoint::WalSync),
            Some(DiskFault::Error)
        );
        assert!(plan.exhausted());
        assert_eq!(fire_disk(&None, FaultPoint::CheckpointWrite), None);
    }

    #[test]
    fn disk_panic_rule_kills_the_writer_before_bytes_land() {
        let plan = Arc::new(FaultPlan::new().panic_at(FaultPoint::CheckpointWrite, 1));
        let armed = Some(Arc::clone(&plan));
        let r = catch_unwind(AssertUnwindSafe(|| {
            fire_disk(&armed, FaultPoint::CheckpointWrite)
        }));
        assert!(r.is_err(), "panic action unwinds from the disk hook");
        // The respawned component survives the same point.
        assert_eq!(fire_disk(&armed, FaultPoint::CheckpointWrite), None);
    }

    #[test]
    fn lock_unpoisoned_recovers_after_a_panicking_peer() {
        let m = Arc::new(Mutex::new(41));
        let mc = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = mc.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned(), "peer panic poisoned the mutex");
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42);
    }
}
