//! Vendored, dependency-free stand-in for the tiny subset of the `rand`
//! crate API this workspace uses (`StdRng::seed_from_u64` and
//! `Rng::gen::<f64>()`). The build environment has no network access to
//! crates.io, and the generators only need a deterministic, seedable,
//! well-mixed stream — not cryptographic quality.
//!
//! The engine is xoshiro256++ seeded through splitmix64, the same
//! construction the real `rand_xoshiro` crate uses. Sequences are stable
//! across platforms and releases; generated graphs are reproducible per
//! seed (which is all `ds-gen` promises).

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution of a random source.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches `rand`'s
    /// `Standard` distribution for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (bias negligible at these bounds).
    fn gen_index(&mut self, bound: usize) -> usize
    where
        Self: Sized,
    {
        assert!(bound > 0, "gen_index bound must be positive");
        (((self.next_u64() >> 32) * bound as u64) >> 32) as usize
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            mean += x / 1000.0;
        }
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_index_within_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_index(7) < 7);
        }
    }
}
