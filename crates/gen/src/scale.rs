//! Large-scale synthetic digraphs for the reachability subsystem.
//!
//! The paper's generators (§4.1) draw one Bernoulli per node *pair* —
//! O(n²) draws — and carry coordinates, which caps them at a few
//! thousand nodes. Reachability benchmarks want graphs three orders of
//! magnitude larger, where the SCC/chain index earns its keep. This
//! module generates **directed, unit-cost** graphs straight into the
//! memory-lean pair-based CSR ([`CsrGraph::from_unit_pairs`]): no
//! coordinates, no per-edge cost draw, no `Edge` intermediary — a
//! million-node graph is a few flat vectors.
//!
//! The recipe is a sparse uniform random digraph: each node draws
//! [`ScaleConfig::out_degree`] targets uniformly at random. Above one
//! expected outgoing edge per node this produces the classic structure
//! the index is built for — one giant strongly connected component, a
//! periphery of small components feeding into or out of it, and enough
//! unreachable pairs that `connected` exercises both answers.
//!
//! Deterministic given a seed, like every generator in this crate.

use ds_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of [`generate_scale`].
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Directed edges drawn per node (the expected out-degree).
    pub out_degree: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            nodes: 10_000,
            out_degree: 2,
        }
    }
}

impl ScaleConfig {
    /// The million-node benchmark configuration (~2M directed edges):
    /// three orders of magnitude beyond the paper-scale generators.
    pub fn million() -> Self {
        ScaleConfig {
            nodes: 1_000_000,
            out_degree: 2,
        }
    }
}

/// Generate a sparse uniform random digraph with unit costs, directly in
/// CSR form. Self-loops may occur (the relation allows them); parallel
/// duplicates are possible but rare at the intended sparsity.
pub fn generate_scale(cfg: &ScaleConfig, seed: u64) -> CsrGraph {
    let n = cfg.nodes as u32;
    if n == 0 {
        return CsrGraph::from_unit_pairs(0, &[]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(cfg.nodes * cfg.out_degree);
    for src in 0..n {
        for _ in 0..cfg.out_degree {
            pairs.push((src, rng.gen_index(cfg.nodes) as u32));
        }
    }
    CsrGraph::from_unit_pairs(cfg.nodes, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScaleConfig {
            nodes: 500,
            out_degree: 2,
        };
        let a = generate_scale(&cfg, 9);
        let b = generate_scale(&cfg, 9);
        assert_eq!(a, b, "same seed, same graph");
        let c = generate_scale(&cfg, 10);
        assert_ne!(a, c, "different seed, different graph");
    }

    #[test]
    fn counts_and_costs() {
        let cfg = ScaleConfig {
            nodes: 300,
            out_degree: 3,
        };
        let g = generate_scale(&cfg, 1);
        assert_eq!(g.node_count(), 300);
        assert_eq!(g.edge_count(), 900);
        assert!(g.edges().all(|e| e.cost == 1), "unit costs throughout");
    }

    #[test]
    fn empty_config() {
        let g = generate_scale(
            &ScaleConfig {
                nodes: 0,
                out_degree: 2,
            },
            1,
        );
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn giant_component_emerges_at_degree_two() {
        // At out-degree 2 the digraph is supercritical: the largest SCC
        // must span a substantial fraction of the nodes.
        let g = generate_scale(
            &ScaleConfig {
                nodes: 2_000,
                out_degree: 2,
            },
            42,
        );
        let idx = ds_graph::ReachIndex::build(&g);
        assert!(
            idx.comp_count() < g.node_count() / 2,
            "expected a giant SCC: {} components over {} nodes",
            idx.comp_count(),
            g.node_count()
        );
    }
}
