//! # ds-gen — seeded graph generators from §4.1 of the paper
//!
//! The paper evaluates its fragmentation algorithms on randomly generated
//! graphs: nodes get coordinates "evenly spread over a given interval",
//! then edges are drawn with probability
//!
//! ```text
//! P(p, q) = (c1 / n²) · e^(−c2 · d(p, q))
//! ```
//!
//! so close nodes connect more often than remote ones. *Transportation
//! graphs* (Fig. 3) are built cluster by cluster with user-specified
//! inter-cluster connections; *general graphs* use the probability
//! function over all pairs. This crate reproduces both, plus the
//! ellipse-shaped graphs of Fig. 8 and deterministic graphs for tests.
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use ds_gen::{GeneralConfig, generate_general};
//!
//! let cfg = GeneralConfig { nodes: 50, target_edges: 140, ..Default::default() };
//! let a = generate_general(&cfg, 7);
//! let b = generate_general(&cfg, 7);
//! assert_eq!(a.connections, b.connections); // same seed, same graph
//! ```

pub mod config;
pub mod deterministic;
pub mod ellipse;
pub mod general;
pub mod output;
pub mod probability;
pub mod scale;
pub mod spatial;
pub mod transportation;

pub use config::{ClusterTopology, EllipseConfig, GeneralConfig, TransportationConfig};
pub use ellipse::generate_ellipse;
pub use general::generate_general;
pub use output::GeneratedGraph;
pub use scale::{generate_scale, ScaleConfig};
pub use transportation::generate_transportation;
