//! The paper's edge probability function and the `c1` calibration.
//!
//! §4.1: "Edges were generated w.r.t. a particular probability function …
//! `P(p,q) = (c1/n²)·e^(−c2·d(p,q))`. By changing c1 we could influence
//! the number of edges generated (and thereby the connectivity), and by
//! changing c2 we could influence the probability of generating edges
//! between nodes that are far apart."

use ds_graph::Coord;

/// `P(p, q)` — probability of a connection between nodes at distance `d`,
/// for an `n`-node graph. Clamped to `[0, 1]`.
pub fn edge_probability(c1: f64, c2: f64, n: usize, d: f64) -> f64 {
    debug_assert!(n > 0, "probability undefined for empty graph");
    let p = (c1 / (n as f64 * n as f64)) * (-c2 * d).exp();
    p.clamp(0.0, 1.0)
}

/// Solve for `c1` so that the *expected* number of connections over the
/// given coordinate set equals `target_edges`.
///
/// The expected count is `Σ_{p<q} P(p,q) = (c1/n²)·Σ e^(−c2·d(p,q))`, so
/// `c1 = target · n² / Σ e^(−c2·d)`. This reproduces the paper's "by
/// changing c1 we could influence the number of edges" knob while letting
/// experiments state edge counts directly (the tables report averages like
/// 429 and 279.5). Returns 0 when no pair exists.
pub fn calibrate_c1(coords: &[Coord], c2: f64, target_edges: usize) -> f64 {
    let n = coords.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += (-c2 * coords[i].distance(&coords[j])).exp();
        }
    }
    if sum <= 0.0 {
        return 0.0;
    }
    target_edges as f64 * (n as f64 * n as f64) / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_decays_with_distance() {
        let near = edge_probability(5000.0, 0.1, 10, 1.0);
        let far = edge_probability(5000.0, 0.1, 10, 50.0);
        assert!(near > far);
        assert!(near <= 1.0 && far >= 0.0);
    }

    #[test]
    fn probability_clamped_to_one() {
        assert_eq!(edge_probability(1e12, 0.0, 10, 0.0), 1.0);
    }

    #[test]
    fn zero_c1_gives_zero_probability() {
        assert_eq!(edge_probability(0.0, 0.1, 10, 5.0), 0.0);
    }

    #[test]
    fn calibration_hits_expected_count() {
        // Grid of 20 points; calibrate for 30 expected edges, then verify
        // the analytic expectation is 30.
        let coords: Vec<Coord> = (0..20)
            .map(|i| Coord::new((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0))
            .collect();
        let c2 = 0.05;
        let c1 = calibrate_c1(&coords, c2, 30);
        let n = coords.len();
        let mut expected = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                expected += edge_probability(c1, c2, n, coords[i].distance(&coords[j]));
            }
        }
        assert!(
            (expected - 30.0).abs() < 1e-6,
            "expected {expected}, want 30"
        );
    }

    #[test]
    fn calibration_degenerate_inputs() {
        assert_eq!(calibrate_c1(&[], 0.1, 10), 0.0);
        assert_eq!(calibrate_c1(&[Coord::new(0.0, 0.0)], 0.1, 10), 0.0);
    }
}
