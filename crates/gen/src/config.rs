//! Generator configurations.
//!
//! The paper's generator takes "the number of nodes of the graph, the
//! number of fragments that should be generated (in case of transportation
//! graphs), and two parameters for the probability function" (§4.1). The
//! configs here expose exactly those knobs, plus a `target_edges` mode
//! that solves for `c1` so the *expected* edge count matches a requested
//! value — this is how we calibrate to the edge counts the tables report
//! (429, 3167, 279.5) without access to the original parameter files.

/// Configuration for a general (unstructured) random graph, §4.1/§4.2.2.
#[derive(Clone, Debug)]
pub struct GeneralConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Expected number of connections (undirected edges). When non-zero,
    /// `c1` is solved so the expected count equals this; when zero, `c1`
    /// is used as given.
    pub target_edges: usize,
    /// The `c1` parameter of `P(p,q) = (c1/n²)·e^(−c2·d(p,q))`.
    /// Ignored when `target_edges > 0`.
    pub c1: f64,
    /// The `c2` parameter: decay of connection probability with distance.
    /// Larger values favour local connections (the paper used coordinates
    /// "to encourage local connections over connections between remote
    /// nodes").
    pub c2: f64,
    /// Side length of the square the coordinates are spread over.
    pub extent: f64,
    /// Edge costs: `true` -> every edge costs 1; `false` -> cost is the
    /// rounded Euclidean distance between the endpoints (min 1).
    pub unit_costs: bool,
}

impl Default for GeneralConfig {
    fn default() -> Self {
        GeneralConfig {
            nodes: 100,
            target_edges: 280, // the paper's Table 3 graphs average 279.5
            c1: 0.0,
            c2: 0.05,
            extent: 100.0,
            unit_costs: false,
        }
    }
}

/// How the clusters of a transportation graph are connected to each other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterTopology {
    /// Clusters in a row: i connected to i+1. Loosely connected by
    /// construction (fragmentation graph is a path).
    Chain,
    /// Clusters in a cycle: i connected to (i+1) mod k. The smallest
    /// topology whose fragmentation graph has a cycle.
    Ring,
    /// Explicit list of `(cluster_i, cluster_j, connection_count)`:
    /// "we were able to specify which fragments were connected to each
    /// other and by how many edges" (§4.1).
    Explicit(Vec<(usize, usize, usize)>),
}

/// Configuration for a transportation graph (Fig. 3): highly connected
/// clusters, loosely interconnected.
#[derive(Clone, Debug)]
pub struct TransportationConfig {
    /// Number of clusters ("the number of fragments that should be
    /// generated").
    pub clusters: usize,
    /// Nodes per cluster (25 in Table 1, 150 in Table 2).
    pub nodes_per_cluster: usize,
    /// Expected connections *within* each cluster.
    pub target_edges_per_cluster: usize,
    /// Distance decay within a cluster.
    pub c2: f64,
    /// Side length of each cluster's coordinate patch.
    pub cluster_extent: f64,
    /// Gap between neighbouring cluster patches (keeps clusters spatially
    /// separated, as in Fig. 3).
    pub cluster_gap: f64,
    /// Inter-cluster wiring and connection counts. Table 1's graphs
    /// average 2.25 connecting edges per linked cluster pair.
    pub topology: ClusterTopology,
    /// Connections per linked cluster pair (used by `Chain`/`Ring`).
    pub connections_per_link: usize,
    /// Edge costs as in [`GeneralConfig::unit_costs`].
    pub unit_costs: bool,
}

impl Default for TransportationConfig {
    fn default() -> Self {
        TransportationConfig {
            clusters: 4,
            nodes_per_cluster: 25,
            // Table 1: "the average number of edges in these graphs was
            // 429" over 4 clusters with ~2.25·3 connecting edges — about
            // 105 edges per cluster.
            target_edges_per_cluster: 105,
            c2: 0.08,
            cluster_extent: 50.0,
            cluster_gap: 60.0,
            topology: ClusterTopology::Chain,
            connections_per_link: 2,
            unit_costs: false,
        }
    }
}

impl TransportationConfig {
    /// The Table 1 workload: 4 clusters of 25 nodes, ≈429 edges total,
    /// ≈2.25 connecting edges per linked pair.
    pub fn table1() -> Self {
        TransportationConfig::default()
    }

    /// The Table 2 workload: 4 clusters of 150 nodes, ≈3167 edges total.
    pub fn table2() -> Self {
        TransportationConfig {
            clusters: 4,
            nodes_per_cluster: 150,
            // 3167 total ≈ 4 × 790 in-cluster + a handful of links.
            target_edges_per_cluster: 790,
            cluster_extent: 80.0,
            cluster_gap: 100.0,
            ..TransportationConfig::default()
        }
    }

    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.clusters * self.nodes_per_cluster
    }

    /// The list of linked cluster pairs with their connection counts.
    pub fn links(&self) -> Vec<(usize, usize, usize)> {
        match &self.topology {
            ClusterTopology::Chain => (0..self.clusters.saturating_sub(1))
                .map(|i| (i, i + 1, self.connections_per_link))
                .collect(),
            ClusterTopology::Ring => {
                if self.clusters < 3 {
                    // A "ring" of 2 degenerates to a chain link.
                    return (0..self.clusters.saturating_sub(1))
                        .map(|i| (i, i + 1, self.connections_per_link))
                        .collect();
                }
                (0..self.clusters)
                    .map(|i| (i, (i + 1) % self.clusters, self.connections_per_link))
                    .collect()
            }
            ClusterTopology::Explicit(links) => links.clone(),
        }
    }
}

/// Configuration for an ellipse-shaped graph (Fig. 8): nodes uniform in an
/// ellipse with semi-axes `a` (x) and `b` (y), `a ≫ b`.
#[derive(Clone, Debug)]
pub struct EllipseConfig {
    pub nodes: usize,
    pub target_edges: usize,
    pub c2: f64,
    /// Semi-axis along x (the long axis in Fig. 8's preferred sweep).
    pub a: f64,
    /// Semi-axis along y.
    pub b: f64,
    pub unit_costs: bool,
}

impl Default for EllipseConfig {
    fn default() -> Self {
        EllipseConfig {
            nodes: 120,
            target_edges: 360,
            c2: 0.05,
            a: 150.0,
            b: 40.0,
            unit_costs: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_links() {
        let cfg = TransportationConfig {
            clusters: 4,
            connections_per_link: 3,
            ..Default::default()
        };
        assert_eq!(cfg.links(), vec![(0, 1, 3), (1, 2, 3), (2, 3, 3)]);
    }

    #[test]
    fn ring_links_close_the_cycle() {
        let cfg = TransportationConfig {
            clusters: 4,
            topology: ClusterTopology::Ring,
            connections_per_link: 1,
            ..Default::default()
        };
        let links = cfg.links();
        assert_eq!(links.len(), 4);
        assert!(links.contains(&(3, 0, 1)));
    }

    #[test]
    fn ring_of_two_degenerates_to_chain() {
        let cfg = TransportationConfig {
            clusters: 2,
            topology: ClusterTopology::Ring,
            connections_per_link: 2,
            ..Default::default()
        };
        assert_eq!(cfg.links(), vec![(0, 1, 2)]);
    }

    #[test]
    fn explicit_links_pass_through() {
        let cfg = TransportationConfig {
            topology: ClusterTopology::Explicit(vec![(0, 2, 5)]),
            ..Default::default()
        };
        assert_eq!(cfg.links(), vec![(0, 2, 5)]);
    }

    #[test]
    fn table_presets_match_paper_scale() {
        let t1 = TransportationConfig::table1();
        assert_eq!(t1.total_nodes(), 100);
        let t2 = TransportationConfig::table2();
        assert_eq!(t2.total_nodes(), 600);
    }
}
