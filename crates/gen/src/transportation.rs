//! Transportation graphs (Fig. 3): "clusters of nodes with a rather high
//! internal connectivity rate, while these clusters are loosely
//! interconnected".
//!
//! §4.1: "For transportation graphs, the abovementioned procedure was
//! first used to generate the required number of fragments. Then, these
//! fragments were connected following the requirements given by the user."

use ds_graph::{Coord, Edge, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::TransportationConfig;
use crate::general::{connection_cost, draw_edges};
use crate::output::GeneratedGraph;
use crate::probability::calibrate_c1;
use crate::spatial::{cluster_origins, uniform_square};

/// Generate a transportation graph. Node ids are laid out cluster by
/// cluster: cluster `c` owns ids `c·m .. (c+1)·m` where `m` is
/// `nodes_per_cluster`. The returned `cluster_of` records that.
pub fn generate_transportation(cfg: &TransportationConfig, seed: u64) -> GeneratedGraph {
    assert!(cfg.clusters > 0, "need at least one cluster");
    assert!(
        cfg.nodes_per_cluster > 1,
        "clusters need at least two nodes"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let m = cfg.nodes_per_cluster;
    let origins = cluster_origins(cfg.clusters, cfg.cluster_extent, cfg.cluster_gap);

    let mut coords: Vec<Coord> = Vec::with_capacity(cfg.total_nodes());
    let mut connections: Vec<Edge> = Vec::new();
    let mut cluster_of = Vec::with_capacity(cfg.total_nodes());

    // Per-cluster internal structure, exactly the general-graph recipe on
    // the cluster's own coordinate patch.
    for (c, &(x0, y0)) in origins.iter().enumerate() {
        let patch = uniform_square(&mut rng, m, x0, y0, cfg.cluster_extent);
        let c1 = calibrate_c1(&patch, cfg.c2, cfg.target_edges_per_cluster);
        connections.extend(draw_edges(
            &mut rng,
            &patch,
            c1,
            cfg.c2,
            cfg.unit_costs,
            (c * m) as u32,
        ));
        coords.extend(patch);
        cluster_of.extend(std::iter::repeat_n(c as u32, m));
    }

    // Inter-cluster connections: for each requested link, the k
    // geometrically closest cross pairs become the connecting edges —
    // border cities sit on facing edges of the two patches, as in a real
    // transportation network.
    for (a, b, k) in cfg.links() {
        assert!(
            a < cfg.clusters && b < cfg.clusters && a != b,
            "bad link ({a},{b})"
        );
        connections.extend(closest_cross_pairs(&coords, m, a, b, k, cfg.unit_costs));
    }

    GeneratedGraph {
        nodes: cfg.total_nodes(),
        connections,
        coords,
        cluster_of: Some(cluster_of),
        symmetric: true,
    }
}

/// The `k` closest (by Euclidean distance) node pairs between cluster `a`
/// and cluster `b`, as connection edges. Pairs are distinct; endpoints may
/// repeat (one border city can anchor several links, as Fig. 3 shows).
fn closest_cross_pairs(
    coords: &[Coord],
    nodes_per_cluster: usize,
    a: usize,
    b: usize,
    k: usize,
    unit_costs: bool,
) -> Vec<Edge> {
    let range_a = (a * nodes_per_cluster)..((a + 1) * nodes_per_cluster);
    let range_b = (b * nodes_per_cluster)..((b + 1) * nodes_per_cluster);
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(range_a.len() * range_b.len());
    for i in range_a {
        for j in range_b.clone() {
            pairs.push((coords[i].distance(&coords[j]), i, j));
        }
    }
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("distances are finite"));
    pairs
        .into_iter()
        .take(k)
        .map(|(d, i, j)| {
            Edge::new(
                NodeId(i as u32),
                NodeId(j as u32),
                connection_cost(d, unit_costs),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterTopology;
    use ds_graph::traverse;

    fn small_cfg() -> TransportationConfig {
        TransportationConfig {
            clusters: 4,
            nodes_per_cluster: 25,
            target_edges_per_cluster: 105,
            connections_per_link: 2,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small_cfg();
        let a = generate_transportation(&cfg, 42);
        let b = generate_transportation(&cfg, 42);
        assert_eq!(a.connections, b.connections);
    }

    #[test]
    fn cluster_labels_match_layout() {
        let g = generate_transportation(&small_cfg(), 1);
        let labels = g.cluster_of.as_ref().unwrap();
        assert_eq!(labels.len(), 100);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[24], 0);
        assert_eq!(labels[25], 1);
        assert_eq!(labels[99], 3);
    }

    #[test]
    fn intra_cluster_edges_stay_in_cluster_except_links() {
        let cfg = small_cfg();
        let g = generate_transportation(&cfg, 7);
        let labels = g.cluster_of.as_ref().unwrap();
        let crossing: Vec<&Edge> = g
            .connections
            .iter()
            .filter(|e| labels[e.src.index()] != labels[e.dst.index()])
            .collect();
        // Chain topology with 2 connections per link: exactly 6 crossing
        // connections (links are chosen deterministically from coords).
        assert_eq!(crossing.len(), 6);
        for e in crossing {
            let (ca, cb) = (labels[e.src.index()], labels[e.dst.index()]);
            assert_eq!(
                (ca as i32 - cb as i32).abs(),
                1,
                "chain links only adjacent clusters"
            );
        }
    }

    #[test]
    fn edge_count_near_paper_average() {
        // Table 1: "the average number of edges in these graphs was 429".
        let cfg = small_cfg();
        let mean: f64 = (0..10)
            .map(|s| generate_transportation(&cfg, s).connection_count() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            (mean - 426.0).abs() < 45.0,
            "mean {mean} not near 426 (=4×105+6)"
        );
    }

    #[test]
    fn graph_is_connected_across_clusters() {
        let g = generate_transportation(&small_cfg(), 3);
        let csr = g.closure_graph();
        let (_, count) = traverse::weak_components(&csr);
        // Clusters are internally dense and chained; with ~105 expected
        // edges on 25 nodes isolated nodes are vanishingly rare for this
        // seed.
        assert_eq!(count, 1, "expected a single weak component");
    }

    #[test]
    fn ring_topology_produces_cycle_links() {
        let cfg = TransportationConfig {
            topology: ClusterTopology::Ring,
            ..small_cfg()
        };
        let g = generate_transportation(&cfg, 5);
        let labels = g.cluster_of.as_ref().unwrap();
        let has_wraparound = g.connections.iter().any(|e| {
            let (a, b) = (labels[e.src.index()], labels[e.dst.index()]);
            (a, b) == (3, 0) || (a, b) == (0, 3)
        });
        assert!(has_wraparound, "ring must link last cluster back to first");
    }

    #[test]
    fn explicit_topology_respected() {
        let cfg = TransportationConfig {
            topology: ClusterTopology::Explicit(vec![(0, 3, 4)]),
            ..small_cfg()
        };
        let g = generate_transportation(&cfg, 5);
        let labels = g.cluster_of.as_ref().unwrap();
        let crossing: Vec<_> = g
            .connections
            .iter()
            .filter(|e| labels[e.src.index()] != labels[e.dst.index()])
            .collect();
        assert_eq!(crossing.len(), 4);
        for e in crossing {
            let mut pair = [labels[e.src.index()], labels[e.dst.index()]];
            pair.sort();
            assert_eq!(pair, [0, 3]);
        }
    }

    #[test]
    fn cross_links_are_geometrically_short() {
        // Link edges connect facing borders, so they should be much
        // shorter than the patch pitch (extent + gap).
        let cfg = small_cfg();
        let g = generate_transportation(&cfg, 9);
        let labels = g.cluster_of.as_ref().unwrap();
        for e in &g.connections {
            if labels[e.src.index()] != labels[e.dst.index()] {
                let d = g.coords[e.src.index()].distance(&g.coords[e.dst.index()]);
                assert!(d < cfg.cluster_extent + cfg.cluster_gap);
            }
        }
    }
}
