//! Small deterministic graphs for tests, examples and worked paper
//! figures. All carry coordinates so every fragmenter can run on them.

use ds_graph::{Coord, Edge, NodeId};

use crate::output::GeneratedGraph;

/// A path `0 - 1 - … - n-1` with unit costs, nodes on the x-axis.
pub fn path(n: usize) -> GeneratedGraph {
    let connections = (0..n.saturating_sub(1))
        .map(|i| Edge::unit(NodeId(i as u32), NodeId(i as u32 + 1)))
        .collect();
    GeneratedGraph {
        nodes: n,
        connections,
        coords: (0..n).map(|i| Coord::new(i as f64, 0.0)).collect(),
        cluster_of: None,
        symmetric: true,
    }
}

/// A cycle over `n` nodes with unit costs, nodes on a circle.
pub fn cycle(n: usize) -> GeneratedGraph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let connections = (0..n)
        .map(|i| Edge::unit(NodeId(i as u32), NodeId(((i + 1) % n) as u32)))
        .collect();
    let coords = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64 * std::f64::consts::TAU;
            Coord::new(t.cos() * 10.0, t.sin() * 10.0)
        })
        .collect();
    GeneratedGraph {
        nodes: n,
        connections,
        coords,
        cluster_of: None,
        symmetric: true,
    }
}

/// A `w × h` grid with unit costs; node `(r, c)` has id `r·w + c` and
/// coordinate `(c, r)`.
pub fn grid(w: usize, h: usize) -> GeneratedGraph {
    assert!(w >= 1 && h >= 1, "grid must be non-empty");
    let id = |r: usize, c: usize| NodeId((r * w + c) as u32);
    let mut connections = Vec::new();
    for r in 0..h {
        for c in 0..w {
            if c + 1 < w {
                connections.push(Edge::unit(id(r, c), id(r, c + 1)));
            }
            if r + 1 < h {
                connections.push(Edge::unit(id(r, c), id(r + 1, c)));
            }
        }
    }
    let coords = (0..h)
        .flat_map(|r| (0..w).map(move |c| Coord::new(c as f64, r as f64)))
        .collect();
    GeneratedGraph {
        nodes: w * h,
        connections,
        coords,
        cluster_of: None,
        symmetric: true,
    }
}

/// The complete graph on `n` nodes, unit costs, nodes on a circle.
pub fn complete(n: usize) -> GeneratedGraph {
    let mut connections = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            connections.push(Edge::unit(NodeId(i as u32), NodeId(j as u32)));
        }
    }
    let coords = (0..n)
        .map(|i| {
            let t = i as f64 / n.max(1) as f64 * std::f64::consts::TAU;
            Coord::new(t.cos() * 10.0, t.sin() * 10.0)
        })
        .collect();
    GeneratedGraph {
        nodes: n,
        connections,
        coords,
        cluster_of: None,
        symmetric: true,
    }
}

/// The archetype of Fig. 1: two triangle clusters joined by one bridge
/// edge through border nodes 2 and 3. Useful for hand-checked
/// disconnection-set tests (`DS = {2}` or `{3}` depending on edge
/// ownership).
pub fn two_triangles_bridge() -> GeneratedGraph {
    let pairs = [(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)];
    let connections = pairs
        .iter()
        .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
        .collect();
    let coords = vec![
        Coord::new(0.0, 0.0),
        Coord::new(0.0, 2.0),
        Coord::new(1.0, 1.0),
        Coord::new(3.0, 1.0),
        Coord::new(4.0, 0.0),
        Coord::new(4.0, 2.0),
    ];
    GeneratedGraph {
        nodes: 6,
        connections,
        coords,
        cluster_of: Some(vec![0, 0, 0, 1, 1, 1]),
        symmetric: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::{matrix, traverse};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.connection_count(), 4);
        let csr = g.closure_graph();
        assert_eq!(traverse::diameter(&csr), 4);
    }

    #[test]
    fn path_degenerate_cases() {
        assert_eq!(path(0).connection_count(), 0);
        assert_eq!(path(1).connection_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.connection_count(), 6);
        let csr = g.closure_graph();
        assert_eq!(traverse::diameter(&csr), 3);
        // Every ordered pair is reachable.
        assert_eq!(matrix::closure_cardinality(&csr), 30);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2);
        // Horizontal: 2 per row × 2 rows; vertical: 3.
        assert_eq!(g.connection_count(), 7);
        assert_eq!(g.nodes, 6);
        let csr = g.closure_graph();
        assert_eq!(traverse::diameter(&csr), 3); // corner to corner
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.connection_count(), 10);
        let csr = g.closure_graph();
        assert_eq!(traverse::diameter(&csr), 1);
    }

    #[test]
    fn two_triangles_bridge_has_articulation_bridge() {
        let g = two_triangles_bridge();
        let csr = g.closure_graph();
        let aps = ds_graph::articulation::articulation_points(&csr);
        assert!(aps.contains(&NodeId(2)));
        assert!(aps.contains(&NodeId(3)));
    }
}
