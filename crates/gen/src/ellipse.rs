//! Ellipse-shaped graphs for the Fig. 8 experiment: "the ellipses
//! represent the same graph, fragmented into 3 fragments … starting on the
//! left side of the graph and going to the right is preferable to starting
//! at the top and going down" (§3.3).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::EllipseConfig;
use crate::general::draw_edges;
use crate::output::GeneratedGraph;
use crate::probability::calibrate_c1;
use crate::spatial::uniform_ellipse;

/// Generate an elongated random graph whose node cloud fills an ellipse
/// with semi-axes `a` (x) and `b` (y).
pub fn generate_ellipse(cfg: &EllipseConfig, seed: u64) -> GeneratedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let coords = uniform_ellipse(&mut rng, cfg.nodes, cfg.a, cfg.b);
    let c1 = calibrate_c1(&coords, cfg.c2, cfg.target_edges);
    let connections = draw_edges(&mut rng, &coords, c1, cfg.c2, cfg.unit_costs, 0);
    GeneratedGraph {
        nodes: cfg.nodes,
        connections,
        coords,
        cluster_of: None,
        symmetric: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_elongated() {
        let cfg = EllipseConfig::default();
        let a = generate_ellipse(&cfg, 4);
        let b = generate_ellipse(&cfg, 4);
        assert_eq!(a.connections, b.connections);
        let xspread = a.coords.iter().map(|c| c.x.abs()).fold(0.0, f64::max);
        let yspread = a.coords.iter().map(|c| c.y.abs()).fold(0.0, f64::max);
        assert!(xspread > 2.0 * yspread, "ellipse must be elongated along x");
    }

    #[test]
    fn edge_count_near_target() {
        let cfg = EllipseConfig {
            nodes: 120,
            target_edges: 360,
            ..Default::default()
        };
        let mean: f64 = (0..8)
            .map(|s| generate_ellipse(&cfg, s).connection_count() as f64)
            .sum::<f64>()
            / 8.0;
        assert!((mean - 360.0).abs() < 60.0, "mean {mean} not near 360");
    }
}
