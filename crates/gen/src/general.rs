//! General (unstructured) random graphs — §4.1 / §4.2.2.

use ds_graph::{Coord, Edge, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::GeneralConfig;
use crate::output::GeneratedGraph;
use crate::probability::{calibrate_c1, edge_probability};
use crate::spatial::uniform_square;

/// Generate a general random graph per the paper's recipe: coordinates
/// first, then one Bernoulli draw per node pair with
/// `P(p,q) = (c1/n²)·e^(−c2·d(p,q))`.
pub fn generate_general(cfg: &GeneralConfig, seed: u64) -> GeneratedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let coords = uniform_square(&mut rng, cfg.nodes, 0.0, 0.0, cfg.extent);
    let c1 = effective_c1(cfg, &coords);
    let connections = draw_edges(&mut rng, &coords, c1, cfg.c2, cfg.unit_costs, 0);
    GeneratedGraph {
        nodes: cfg.nodes,
        connections,
        coords,
        cluster_of: None,
        symmetric: true,
    }
}

/// The `c1` actually used: calibrated from `target_edges` when requested,
/// otherwise the configured raw value.
pub fn effective_c1(cfg: &GeneralConfig, coords: &[Coord]) -> f64 {
    if cfg.target_edges > 0 {
        calibrate_c1(coords, cfg.c2, cfg.target_edges)
    } else {
        cfg.c1
    }
}

/// One Bernoulli draw per unordered pair; the resulting connection carries
/// the rounded Euclidean distance as cost (or 1 in unit mode).
/// `id_offset` shifts node ids, so cluster generators can reuse this for
/// each patch.
pub fn draw_edges(
    rng: &mut StdRng,
    coords: &[Coord],
    c1: f64,
    c2: f64,
    unit_costs: bool,
    id_offset: u32,
) -> Vec<Edge> {
    let n = coords.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = coords[i].distance(&coords[j]);
            let p = edge_probability(c1, c2, n, d);
            if rng.gen::<f64>() < p {
                edges.push(Edge::new(
                    NodeId(id_offset + i as u32),
                    NodeId(id_offset + j as u32),
                    connection_cost(d, unit_costs),
                ));
            }
        }
    }
    edges
}

/// Cost of a connection of geometric length `d`.
pub fn connection_cost(d: f64, unit_costs: bool) -> u64 {
    if unit_costs {
        1
    } else {
        (d.round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneralConfig {
            nodes: 40,
            target_edges: 100,
            ..Default::default()
        };
        let a = generate_general(&cfg, 11);
        let b = generate_general(&cfg, 11);
        assert_eq!(a.connections, b.connections);
        assert_eq!(a.coords, b.coords);
        let c = generate_general(&cfg, 12);
        assert_ne!(
            a.connections, c.connections,
            "different seed, different graph"
        );
    }

    #[test]
    fn edge_count_near_target() {
        let cfg = GeneralConfig {
            nodes: 100,
            target_edges: 280,
            ..Default::default()
        };
        // Average over seeds: expectation is exactly 280, so the mean of
        // 10 draws should be well within 15%.
        let mean: f64 = (0..10)
            .map(|s| generate_general(&cfg, s).connection_count() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            (mean - 280.0).abs() < 42.0,
            "mean edge count {mean} too far from calibrated target 280"
        );
    }

    #[test]
    fn locality_bias() {
        // With strong decay, generated edges should be on average much
        // shorter than random pairs.
        let cfg = GeneralConfig {
            nodes: 120,
            target_edges: 300,
            c2: 0.2,
            ..Default::default()
        };
        let g = generate_general(&cfg, 5);
        let mean_edge_len: f64 = g
            .connections
            .iter()
            .map(|e| g.coords[e.src.index()].distance(&g.coords[e.dst.index()]))
            .sum::<f64>()
            / g.connection_count().max(1) as f64;
        // Mean distance of uniform pairs in a 100x100 square is ~52.
        assert!(
            mean_edge_len < 35.0,
            "edges not local: mean length {mean_edge_len}"
        );
    }

    #[test]
    fn costs_are_distances() {
        let cfg = GeneralConfig {
            nodes: 50,
            target_edges: 120,
            ..Default::default()
        };
        let g = generate_general(&cfg, 3);
        for e in &g.connections {
            let d = g.coords[e.src.index()].distance(&g.coords[e.dst.index()]);
            assert_eq!(e.cost, (d.round() as u64).max(1));
        }
    }

    #[test]
    fn unit_cost_mode() {
        let cfg = GeneralConfig {
            nodes: 50,
            target_edges: 120,
            unit_costs: true,
            ..Default::default()
        };
        let g = generate_general(&cfg, 3);
        assert!(g.connections.iter().all(|e| e.cost == 1));
    }

    #[test]
    fn raw_c1_mode_respected() {
        let cfg = GeneralConfig {
            nodes: 30,
            target_edges: 0,
            c1: 0.0,
            ..Default::default()
        };
        let g = generate_general(&cfg, 3);
        assert_eq!(g.connection_count(), 0, "c1 = 0 generates nothing");
    }

    #[test]
    fn no_self_loops_or_duplicate_pairs() {
        let cfg = GeneralConfig {
            nodes: 60,
            target_edges: 200,
            ..Default::default()
        };
        let g = generate_general(&cfg, 8);
        let mut seen = std::collections::HashSet::new();
        for e in &g.connections {
            assert!(!e.is_loop());
            assert!(seen.insert(e.undirected_key()), "duplicate pair {e}");
        }
    }
}
