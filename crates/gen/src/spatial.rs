//! Coordinate generation: "the first step was to generate coordinates for
//! each node; the coordinates were evenly spread over a given interval"
//! (§4.1).

use ds_graph::Coord;
use rand::rngs::StdRng;
use rand::Rng;

/// `n` coordinates uniform over the square `[x0, x0+extent] × [y0, y0+extent]`.
pub fn uniform_square(rng: &mut StdRng, n: usize, x0: f64, y0: f64, extent: f64) -> Vec<Coord> {
    (0..n)
        .map(|_| {
            Coord::new(
                x0 + rng.gen::<f64>() * extent,
                y0 + rng.gen::<f64>() * extent,
            )
        })
        .collect()
}

/// `n` coordinates uniform inside the ellipse `x²/a² + y²/b² ≤ 1`
/// (centered at the origin), by rejection from the bounding box.
pub fn uniform_ellipse(rng: &mut StdRng, n: usize, a: f64, b: f64) -> Vec<Coord> {
    assert!(a > 0.0 && b > 0.0, "ellipse semi-axes must be positive");
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x = (rng.gen::<f64>() * 2.0 - 1.0) * a;
        let y = (rng.gen::<f64>() * 2.0 - 1.0) * b;
        if x * x / (a * a) + y * y / (b * b) <= 1.0 {
            out.push(Coord::new(x, y));
        }
    }
    out
}

/// Top-left corners for `k` cluster patches laid out on a row with a gap
/// between them — the spatial arrangement of Fig. 3's clusters.
pub fn cluster_origins(k: usize, extent: f64, gap: f64) -> Vec<(f64, f64)> {
    (0..k).map(|i| (i as f64 * (extent + gap), 0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_square_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let coords = uniform_square(&mut rng, 200, 10.0, 20.0, 50.0);
        assert_eq!(coords.len(), 200);
        for c in &coords {
            assert!(c.x >= 10.0 && c.x <= 60.0, "x {} out of range", c.x);
            assert!(c.y >= 20.0 && c.y <= 70.0, "y {} out of range", c.y);
        }
    }

    #[test]
    fn uniform_ellipse_within_ellipse() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = (100.0, 25.0);
        for c in uniform_ellipse(&mut rng, 300, a, b) {
            assert!(c.x * c.x / (a * a) + c.y * c.y / (b * b) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn ellipse_is_anisotropic() {
        // With a >> b the x spread must exceed the y spread.
        let mut rng = StdRng::seed_from_u64(3);
        let coords = uniform_ellipse(&mut rng, 500, 200.0, 20.0);
        let xmax = coords.iter().map(|c| c.x.abs()).fold(0.0, f64::max);
        let ymax = coords.iter().map(|c| c.y.abs()).fold(0.0, f64::max);
        assert!(xmax > 4.0 * ymax);
    }

    #[test]
    fn cluster_origins_are_spaced() {
        let origins = cluster_origins(3, 50.0, 10.0);
        assert_eq!(origins, vec![(0.0, 0.0), (60.0, 0.0), (120.0, 0.0)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform_square(&mut StdRng::seed_from_u64(9), 10, 0.0, 0.0, 1.0);
        let b = uniform_square(&mut StdRng::seed_from_u64(9), 10, 0.0, 0.0, 1.0);
        assert_eq!(a, b);
    }
}
