//! The common output type of all generators.

use ds_graph::{Coord, CsrGraph, Edge, EdgeList};

/// A generated graph: connection tuples, coordinates, and (for
/// transportation graphs) the ground-truth cluster of each node.
///
/// **Edge counting convention.** The paper counts *connections*: Table 1's
/// "average number of edges … was 429" counts each railway-style link
/// once. `connections` follows that convention — one tuple per link. For
/// query processing on symmetric networks each connection stands for both
/// travel directions; [`GeneratedGraph::closure_graph`] expands them.
/// Fragmentation operates on the single-tuple view
/// ([`GeneratedGraph::edge_list`]), matching the paper's counting, and the
/// incidence tests in Figs. 4/7 are direction-agnostic anyway
/// (`x ∈ V_k ∨ y ∈ V_k`).
#[derive(Clone, Debug)]
pub struct GeneratedGraph {
    /// Number of nodes.
    pub nodes: usize,
    /// One tuple per connection (see struct docs for the convention).
    pub connections: Vec<Edge>,
    /// Node coordinates (always produced; §4.1 generates them first).
    pub coords: Vec<Coord>,
    /// Ground-truth cluster id per node, for transportation graphs.
    pub cluster_of: Option<Vec<u32>>,
    /// Whether connections are symmetric (both travel directions exist).
    pub symmetric: bool,
}

impl GeneratedGraph {
    /// Number of connections (the paper's edge count).
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// The directed graph used by closure/query algorithms: symmetric
    /// graphs get both directions of every connection; directed graphs are
    /// used as-is. Coordinates are attached.
    pub fn closure_graph(&self) -> CsrGraph {
        let edges = expand_connections(&self.connections, self.symmetric);
        CsrGraph::from_edges(self.nodes, &edges)
            .with_coords(self.coords.clone())
            .expect("coords generated alongside nodes")
    }

    /// The single-tuple working set for the fragmentation algorithms,
    /// with coordinates attached.
    pub fn edge_list(&self) -> EdgeList {
        EdgeList::new(self.nodes, self.connections.clone()).with_coords(self.coords.clone())
    }

    /// Average `grade` (undirected degree over connections).
    pub fn average_degree(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        2.0 * self.connections.len() as f64 / self.nodes as f64
    }
}

/// Expand connection tuples to the directed edge set: for symmetric
/// graphs each connection yields both directions.
pub fn expand_connections(connections: &[Edge], symmetric: bool) -> Vec<Edge> {
    if !symmetric {
        return connections.to_vec();
    }
    let mut out = Vec::with_capacity(connections.len() * 2);
    for e in connections {
        out.push(*e);
        if !e.is_loop() {
            out.push(e.reversed());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::NodeId;

    fn sample() -> GeneratedGraph {
        GeneratedGraph {
            nodes: 3,
            connections: vec![
                Edge::new(NodeId(0), NodeId(1), 5),
                Edge::new(NodeId(1), NodeId(2), 7),
            ],
            coords: vec![Coord::default(); 3],
            cluster_of: None,
            symmetric: true,
        }
    }

    #[test]
    fn closure_graph_expands_symmetric() {
        let g = sample().closure_graph();
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_symmetric());
        assert!(g.coords().is_some());
    }

    #[test]
    fn directed_graph_not_expanded() {
        let mut s = sample();
        s.symmetric = false;
        let g = s.closure_graph();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_list_uses_single_tuples() {
        let el = sample().edge_list();
        assert_eq!(el.remaining(), 2);
    }

    #[test]
    fn average_degree() {
        assert!((sample().average_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_not_doubled_on_expansion() {
        let out = expand_connections(&[Edge::unit(NodeId(0), NodeId(0))], true);
        assert_eq!(out.len(), 1);
    }
}
