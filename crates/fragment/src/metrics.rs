//! Fragmentation quality metrics — the columns of Tables 1–3.
//!
//! §4.2: "The characteristics of the fragmentations that we show are:
//! average size of the fragments F (i.e., number of edges), average size
//! of the disconnection sets DS (i.e., number of nodes), average deviation
//! ΔF from F, and average deviation ΔDS from DS."

use std::fmt;

use crate::fragmentation::Fragmentation;

/// Summary statistics of one fragmentation.
#[derive(Clone, Debug, PartialEq)]
pub struct FragmentationMetrics {
    /// Number of fragments produced (may differ from the requested count
    /// for the bond-energy and linear algorithms — §4.2.1).
    pub fragment_count: usize,
    /// Number of non-empty disconnection sets (links of G').
    pub ds_count: usize,
    /// F̄ — mean fragment size in edges.
    pub avg_fragment_edges: f64,
    /// ΔF — mean absolute deviation of fragment size.
    pub dev_fragment_edges: f64,
    /// D̄S — mean disconnection set size in nodes (non-empty sets only).
    pub avg_ds_nodes: f64,
    /// ΔDS — mean absolute deviation of disconnection set size.
    pub dev_ds_nodes: f64,
    /// Whether the fragmentation graph is acyclic ("loosely connected").
    pub loosely_connected: bool,
    /// Total border nodes (nodes in ≥ 2 fragments).
    pub border_nodes: usize,
}

impl FragmentationMetrics {
    /// Compute the metrics of a fragmentation.
    pub fn compute(frag: &Fragmentation) -> Self {
        let sizes: Vec<f64> = frag
            .fragments()
            .iter()
            .map(|f| f.edge_count() as f64)
            .collect();
        let ds = frag.disconnection_sets();
        let ds_sizes: Vec<f64> = ds.values().map(|v| v.len() as f64).collect();

        let mut border = std::collections::BTreeSet::new();
        for nodes in ds.values() {
            border.extend(nodes.iter().copied());
        }

        FragmentationMetrics {
            fragment_count: sizes.len(),
            ds_count: ds_sizes.len(),
            avg_fragment_edges: mean(&sizes),
            dev_fragment_edges: mean_abs_dev(&sizes),
            avg_ds_nodes: mean(&ds_sizes),
            dev_ds_nodes: mean_abs_dev(&ds_sizes),
            loosely_connected: frag.fragmentation_graph().is_acyclic(),
            border_nodes: border.len(),
        }
    }
}

impl fmt::Display for FragmentationMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "F={:.1} DS={:.1} dF={:.1} dDS={:.1} ({} fragments, {} DS, {})",
            self.avg_fragment_edges,
            self.avg_ds_nodes,
            self.dev_fragment_edges,
            self.dev_ds_nodes,
            self.fragment_count,
            self.ds_count,
            if self.loosely_connected {
                "acyclic"
            } else {
                "cyclic"
            },
        )
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean absolute deviation from the mean — the paper's "average
/// deviation".
fn mean_abs_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).abs()).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::{Edge, NodeId};

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
            .collect()
    }

    #[test]
    fn metrics_of_balanced_path_split() {
        // 0-1-2-3-4 split into two 2-edge fragments sharing node 2.
        let frag = Fragmentation::new(
            5,
            vec![edges(&[(0, 1), (1, 2)]), edges(&[(2, 3), (3, 4)])],
            vec![vec![], vec![]],
        );
        let m = frag.metrics();
        assert_eq!(m.fragment_count, 2);
        assert_eq!(m.ds_count, 1);
        assert_eq!(m.avg_fragment_edges, 2.0);
        assert_eq!(m.dev_fragment_edges, 0.0);
        assert_eq!(m.avg_ds_nodes, 1.0);
        assert_eq!(m.dev_ds_nodes, 0.0);
        assert!(m.loosely_connected);
        assert_eq!(m.border_nodes, 1);
    }

    #[test]
    fn metrics_of_unbalanced_split() {
        // Sizes 1 and 3 -> F̄ = 2, ΔF = 1.
        let frag = Fragmentation::new(
            5,
            vec![edges(&[(0, 1)]), edges(&[(1, 2), (2, 3), (3, 4)])],
            vec![vec![], vec![]],
        );
        let m = frag.metrics();
        assert_eq!(m.avg_fragment_edges, 2.0);
        assert_eq!(m.dev_fragment_edges, 1.0);
    }

    #[test]
    fn display_is_compact() {
        let frag = Fragmentation::new(2, vec![edges(&[(0, 1)])], vec![vec![]]);
        let s = frag.metrics().to_string();
        assert!(s.contains("F=1.0"));
        assert!(s.contains("acyclic"));
    }

    #[test]
    fn mean_abs_dev_hand_check() {
        assert_eq!(mean_abs_dev(&[1.0, 3.0]), 1.0);
        assert_eq!(mean_abs_dev(&[5.0]), 0.0);
        assert_eq!(mean_abs_dev(&[]), 0.0);
    }
}
