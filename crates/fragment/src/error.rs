//! Errors raised by the fragmentation algorithms and validators.

use std::fmt;

/// Errors from fragmentation construction and validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FragError {
    /// The input relation has no edges — nothing to fragment.
    EmptyRelation,
    /// More fragments requested than the graph can support.
    TooManyFragments { requested: usize, available: usize },
    /// The algorithm requires node coordinates (linear sweep, distributed
    /// centers) but the edge list carries none.
    MissingCoordinates,
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// Fragment edge sets do not partition the input relation: some edge
    /// is missing or assigned twice. Violates the disconnection set
    /// approach's "no redundant computation" guarantee.
    NotAPartition { missing: usize, duplicated: usize },
    /// A label table was supplied whose length differs from the node count.
    LabelLengthMismatch { labels: usize, node_count: usize },
}

impl fmt::Display for FragError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragError::EmptyRelation => write!(f, "input relation has no edges"),
            FragError::TooManyFragments { requested, available } => {
                write!(f, "{requested} fragments requested but only {available} are supportable")
            }
            FragError::MissingCoordinates => {
                write!(f, "algorithm requires node coordinates but none are attached")
            }
            FragError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FragError::NotAPartition { missing, duplicated } => write!(
                f,
                "fragments do not partition the relation: {missing} edges missing, {duplicated} duplicated"
            ),
            FragError::LabelLengthMismatch { labels, node_count } => {
                write!(f, "label table has {labels} entries for {node_count} nodes")
            }
        }
    }
}

impl std::error::Error for FragError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(FragError::EmptyRelation.to_string().contains("no edges"));
        let e = FragError::TooManyFragments {
            requested: 9,
            available: 3,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        let e = FragError::NotAPartition {
            missing: 1,
            duplicated: 2,
        };
        assert!(e.to_string().contains("1 edges missing"));
        assert!(FragError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
    }
}
