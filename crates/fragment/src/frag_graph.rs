//! The fragmentation graph G' (§2.1): "a node N_i for each fragment G_i
//! and an edge E_ij = (N_i, N_j) for each nonempty disconnection set
//! DS_ij."
//!
//! Its key property is *loose connectivity* — acyclicity — which makes the
//! chain of fragments between any two nodes unique. When the property does
//! not hold, "it is required to consider all possible chains of fragments
//! independently" (§2.1); [`FragmentationGraph::chains`] enumerates them.

use crate::fragmentation::FragmentId;
use ds_graph::UnionFind;

/// Undirected graph over fragments.
#[derive(Clone, Debug)]
pub struct FragmentationGraph {
    n: usize,
    /// Sorted `(i, j)` pairs with `i < j`, one per non-empty DS.
    links: Vec<(FragmentId, FragmentId)>,
    adj: Vec<Vec<FragmentId>>,
}

impl FragmentationGraph {
    /// Build from the number of fragments and the linked pairs.
    pub fn new(n: usize, mut links: Vec<(FragmentId, FragmentId)>) -> Self {
        for l in &mut links {
            if l.0 > l.1 {
                *l = (l.1, l.0);
            }
            assert!(l.1 < n, "link {l:?} references fragment >= {n}");
            assert_ne!(l.0, l.1, "self-link in fragmentation graph");
        }
        links.sort_unstable();
        links.dedup();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &links {
            adj[a].push(b);
            adj[b].push(a);
        }
        FragmentationGraph { n, links, adj }
    }

    /// Number of fragments (nodes of G').
    pub fn fragment_count(&self) -> usize {
        self.n
    }

    /// The linked fragment pairs (edges of G'), sorted, `i < j`.
    pub fn links(&self) -> &[(FragmentId, FragmentId)] {
        &self.links
    }

    /// Fragments adjacent to `f`.
    pub fn neighbors(&self, f: FragmentId) -> &[FragmentId] {
        &self.adj[f]
    }

    /// "Loosely connected": the undirected fragmentation graph is a forest.
    /// This is the paper's precondition for the unique-chain property.
    pub fn is_acyclic(&self) -> bool {
        let mut uf = UnionFind::new(self.n);
        self.links.iter().all(|&(a, b)| uf.union(a, b))
    }

    /// All simple paths (chains of fragments) from `from` to `to`,
    /// capped at `max_chains` results and `max_len` fragments per chain.
    ///
    /// "For any two nodes in G there is only one chain of fragments"
    /// when G' is acyclic; otherwise every chain must be evaluated
    /// independently (§2.1). The caps keep pathological fragmentation
    /// graphs from exploding — the paper's prescribed escape hatch for
    /// that case is Parallel Hierarchical Evaluation (ref [12]).
    pub fn chains(
        &self,
        from: FragmentId,
        to: FragmentId,
        max_chains: usize,
        max_len: usize,
    ) -> Vec<Vec<FragmentId>> {
        let mut out = Vec::new();
        if from == to {
            out.push(vec![from]);
            return out;
        }
        let mut on_path = vec![false; self.n];
        let mut path = vec![from];
        on_path[from] = true;
        self.dfs_chains(to, max_chains, max_len, &mut path, &mut on_path, &mut out);
        out
    }

    fn dfs_chains(
        &self,
        to: FragmentId,
        max_chains: usize,
        max_len: usize,
        path: &mut Vec<FragmentId>,
        on_path: &mut [bool],
        out: &mut Vec<Vec<FragmentId>>,
    ) {
        if out.len() >= max_chains || path.len() > max_len {
            return;
        }
        let cur = *path.last().expect("path never empty");
        for &next in &self.adj[cur] {
            if on_path[next] {
                continue;
            }
            if next == to {
                if path.len() < max_len {
                    let mut chain = path.clone();
                    chain.push(to);
                    out.push(chain);
                    if out.len() >= max_chains {
                        return;
                    }
                }
                continue;
            }
            if path.len() + 1 > max_len {
                continue;
            }
            on_path[next] = true;
            path.push(next);
            self.dfs_chains(to, max_chains, max_len, path, on_path, out);
            path.pop();
            on_path[next] = false;
        }
    }

    /// The unique chain between two fragments if the graph is a forest and
    /// they are connected; `None` otherwise. BFS parent-chasing, O(V+E).
    pub fn unique_chain(&self, from: FragmentId, to: FragmentId) -> Option<Vec<FragmentId>> {
        if !self.is_acyclic() {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut parent = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::from([from]);
        parent[from] = from;
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if parent[w] == usize::MAX {
                    parent[w] = v;
                    if w == to {
                        let mut chain = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = parent[cur];
                            chain.push(cur);
                        }
                        chain.reverse();
                        return Some(chain);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_is_acyclic_with_unique_chain() {
        // G1 - G2 - G3 - G4, the Fig. 2 shape.
        let fg = FragmentationGraph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert!(fg.is_acyclic());
        assert_eq!(fg.unique_chain(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(fg.chains(0, 3, 10, 10), vec![vec![0, 1, 2, 3]]);
        assert_eq!(fg.unique_chain(2, 2), Some(vec![2]));
    }

    #[test]
    fn cycle_detected_and_both_chains_found() {
        let fg = FragmentationGraph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(!fg.is_acyclic());
        assert_eq!(
            fg.unique_chain(0, 2),
            None,
            "no unique chain in a cyclic graph"
        );
        let mut chains = fg.chains(0, 2, 10, 10);
        chains.sort();
        assert_eq!(chains, vec![vec![0, 1, 2], vec![0, 3, 2]]);
    }

    #[test]
    fn chains_respect_caps() {
        let fg = FragmentationGraph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(fg.chains(0, 2, 1, 10).len(), 1);
        // Max length 2 fragments: no chain of 3 fragments fits.
        assert!(fg.chains(0, 2, 10, 2).is_empty());
    }

    #[test]
    fn disconnected_fragments_have_no_chain() {
        let fg = FragmentationGraph::new(4, vec![(0, 1), (2, 3)]);
        assert!(fg.is_acyclic());
        assert_eq!(fg.unique_chain(0, 3), None);
        assert!(fg.chains(0, 3, 10, 10).is_empty());
    }

    #[test]
    fn duplicate_and_reversed_links_deduplicated() {
        let fg = FragmentationGraph::new(3, vec![(1, 0), (0, 1), (1, 2)]);
        assert_eq!(fg.links(), &[(0, 1), (1, 2)]);
        assert_eq!(fg.neighbors(1), &[0, 2]);
    }

    #[test]
    fn same_fragment_chain_is_singleton() {
        let fg = FragmentationGraph::new(2, vec![(0, 1)]);
        assert_eq!(fg.chains(1, 1, 10, 10), vec![vec![1]]);
    }
}
