//! The fragmentation model: fragments, shared border nodes, and the
//! partition invariant.
//!
//! §2.1: "R is partitioned into n fragments R_i, each stored at a
//! different computer or processor. This fragmentation induces a
//! partitioning of G into n subgraphs G_i. Disconnection sets DS_ij are
//! given by G_i ∩ G_j (they are thus sets of nodes)."
//!
//! Edges are *partitioned* (each tuple lives in exactly one fragment — the
//! "no redundant computation" property); nodes on fragment borders are
//! *shared*, and those shared nodes are the disconnection sets.

use std::collections::{BTreeMap, BTreeSet};

use ds_graph::{BitSet, CsrGraph, Edge, NodeId};

use crate::error::FragError;
use crate::frag_graph::FragmentationGraph;
use crate::metrics::FragmentationMetrics;

/// Index of a fragment within a [`Fragmentation`].
pub type FragmentId = usize;

/// One fragment: an edge set plus its node set (edge endpoints and any
/// seed nodes the algorithm planted, e.g. centers or sweep starts).
#[derive(Clone, Debug)]
pub struct Fragment {
    id: FragmentId,
    edges: Vec<Edge>,
    /// Sorted, deduplicated node set.
    nodes: Vec<NodeId>,
}

impl Fragment {
    /// Build a fragment; the node set is the edge endpoints plus `seeds`.
    pub fn new(id: FragmentId, edges: Vec<Edge>, seeds: &[NodeId]) -> Self {
        let mut set: BTreeSet<NodeId> = seeds.iter().copied().collect();
        for e in &edges {
            set.insert(e.src);
            set.insert(e.dst);
        }
        Fragment {
            id,
            edges,
            nodes: set.into_iter().collect(),
        }
    }

    /// Fragment id.
    pub fn id(&self) -> FragmentId {
        self.id
    }

    /// The fragment's tuples.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of tuples — the paper's fragment-size measure `F`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sorted node set.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether `v` belongs to this fragment.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Add an edge to this fragment. Endpoints are inserted into the node
    /// set if new (note that growing the node set can change the
    /// disconnection sets — callers that must keep them fixed, like the
    /// engine's incremental updates, restrict to existing nodes).
    pub fn add_edge(&mut self, edge: Edge) {
        for v in [edge.src, edge.dst] {
            if let Err(pos) = self.nodes.binary_search(&v) {
                self.nodes.insert(pos, v);
            }
        }
        self.edges.push(edge);
    }

    /// Remove every edge matching the predicate; returns how many were
    /// removed. The node set is kept (nodes act like seeds), so
    /// disconnection sets are unaffected.
    pub fn remove_edges_matching(&mut self, pred: impl Fn(&Edge) -> bool) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| !pred(e));
        before - self.edges.len()
    }

    /// Local subgraph over the *global* node id space (symmetric
    /// expansion if requested), used for per-fragment measures.
    pub fn local_graph(&self, node_count: usize, symmetric: bool) -> CsrGraph {
        let mut edges = self.edges.clone();
        if symmetric {
            let rev: Vec<Edge> = self
                .edges
                .iter()
                .filter(|e| !e.is_loop())
                .map(|e| e.reversed())
                .collect();
            edges.extend(rev);
        }
        CsrGraph::from_edges(node_count, &edges)
    }

    /// Diameter of this fragment in hops (symmetric view), the iteration
    /// bound of the paper's recursive subqueries: "if the graph is
    /// fragmented in n fragments of equal size, the diameter of each
    /// subgraph is highly reduced" (§2.1).
    ///
    /// Computed on a relabeled local graph so cost is O(|V_i|·|E_i|).
    pub fn diameter(&self) -> u32 {
        if self.nodes.is_empty() {
            return 0;
        }
        // Relabel to a dense local id space.
        let mut local_of = BTreeMap::new();
        for (i, &v) in self.nodes.iter().enumerate() {
            local_of.insert(v, NodeId::from_index(i));
        }
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            let (s, d) = (local_of[&e.src], local_of[&e.dst]);
            edges.push(Edge::new(s, d, e.cost));
            if s != d {
                edges.push(Edge::new(d, s, e.cost));
            }
        }
        let g = CsrGraph::from_edges(self.nodes.len(), &edges);
        ds_graph::traverse::diameter(&g)
    }
}

/// A complete fragmentation of a relation: the fragments plus the node
/// universe they live in.
#[derive(Clone, Debug)]
pub struct Fragmentation {
    node_count: usize,
    fragments: Vec<Fragment>,
}

impl Fragmentation {
    /// Assemble from per-fragment edge vectors and seed nodes.
    /// `seeds[i]` may be empty.
    pub fn new(node_count: usize, edge_sets: Vec<Vec<Edge>>, seeds: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(edge_sets.len(), seeds.len(), "one seed list per fragment");
        let fragments = edge_sets
            .into_iter()
            .zip(seeds)
            .enumerate()
            .map(|(id, (edges, s))| Fragment::new(id, edges, &s))
            .collect();
        Fragmentation {
            node_count,
            fragments,
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The fragments.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// One fragment by id.
    pub fn fragment(&self, id: FragmentId) -> &Fragment {
        &self.fragments[id]
    }

    /// Mutable access to one fragment (for update maintenance).
    pub fn fragment_mut(&mut self, id: FragmentId) -> &mut Fragment {
        &mut self.fragments[id]
    }

    /// Verify the partition invariant against the original relation:
    /// every input edge appears in exactly one fragment (as a multiset).
    pub fn validate(&self, original: &[Edge]) -> Result<(), FragError> {
        use std::collections::HashMap;
        let mut counts: HashMap<Edge, i64> = HashMap::new();
        for e in original {
            *counts.entry(*e).or_insert(0) += 1;
        }
        for f in &self.fragments {
            for e in f.edges() {
                *counts.entry(*e).or_insert(0) -= 1;
            }
        }
        let missing = counts
            .values()
            .filter(|&&c| c > 0)
            .map(|&c| c as usize)
            .sum();
        let duplicated = counts
            .values()
            .filter(|&&c| c < 0)
            .map(|&c| (-c) as usize)
            .sum();
        if missing > 0 || duplicated > 0 {
            return Err(FragError::NotAPartition {
                missing,
                duplicated,
            });
        }
        Ok(())
    }

    /// All fragments containing node `v` (≥ 2 entries means `v` is a
    /// border node).
    pub fn fragments_of_node(&self, v: NodeId) -> Vec<FragmentId> {
        self.fragments
            .iter()
            .filter(|f| f.contains_node(v))
            .map(|f| f.id())
            .collect()
    }

    /// The disconnection sets `DS_ij = V_i ∩ V_j` for `i < j`, non-empty
    /// only. Node lists are sorted.
    pub fn disconnection_sets(&self) -> BTreeMap<(FragmentId, FragmentId), Vec<NodeId>> {
        // One pass over nodes per fragment into per-node membership lists,
        // then pairwise expansion — O(Σ|V_i| + Σ borders²) instead of
        // O(fragments² · nodes).
        let mut members: Vec<Vec<FragmentId>> = vec![Vec::new(); self.node_count];
        for f in &self.fragments {
            for &v in f.nodes() {
                members[v.index()].push(f.id());
            }
        }
        let mut ds: BTreeMap<(FragmentId, FragmentId), Vec<NodeId>> = BTreeMap::new();
        for (v, frs) in members.iter().enumerate() {
            if frs.len() < 2 {
                continue;
            }
            for a in 0..frs.len() {
                for b in (a + 1)..frs.len() {
                    let key = (frs[a].min(frs[b]), frs[a].max(frs[b]));
                    ds.entry(key).or_default().push(NodeId::from_index(v));
                }
            }
        }
        ds
    }

    /// The fragmentation graph G' (§2.1): one node per fragment, one edge
    /// per non-empty disconnection set.
    pub fn fragmentation_graph(&self) -> FragmentationGraph {
        FragmentationGraph::new(
            self.fragment_count(),
            self.disconnection_sets().keys().copied().collect(),
        )
    }

    /// Quality metrics (the columns of Tables 1–3).
    pub fn metrics(&self) -> FragmentationMetrics {
        FragmentationMetrics::compute(self)
    }

    /// Membership bitset per fragment — used by the closure engine to
    /// locate query endpoints quickly.
    pub fn node_membership(&self) -> Vec<BitSet> {
        self.fragments
            .iter()
            .map(|f| {
                let mut bs = BitSet::new(self.node_count);
                for &v in f.nodes() {
                    bs.insert(v.index());
                }
                bs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
            .collect()
    }

    /// Path 0-1-2-3-4 split into [0-1, 1-2] and [2-3, 3-4]: DS_01 = {2}.
    fn path_split() -> Fragmentation {
        Fragmentation::new(
            5,
            vec![edges(&[(0, 1), (1, 2)]), edges(&[(2, 3), (3, 4)])],
            vec![vec![], vec![]],
        )
    }

    #[test]
    fn nodes_derived_from_edges_and_seeds() {
        let f = Fragment::new(0, edges(&[(0, 1)]), &[NodeId(7)]);
        assert_eq!(f.nodes(), &[NodeId(0), NodeId(1), NodeId(7)]);
        assert!(f.contains_node(NodeId(7)));
        assert!(!f.contains_node(NodeId(2)));
    }

    #[test]
    fn disconnection_sets_are_node_intersections() {
        let frag = path_split();
        let ds = frag.disconnection_sets();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[&(0, 1)], vec![NodeId(2)]);
        assert_eq!(frag.fragments_of_node(NodeId(2)), vec![0, 1]);
        assert_eq!(frag.fragments_of_node(NodeId(0)), vec![0]);
    }

    #[test]
    fn validate_accepts_exact_partition() {
        let frag = path_split();
        let all = edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(frag.validate(&all).is_ok());
    }

    #[test]
    fn validate_detects_missing_and_duplicates() {
        let frag = path_split();
        let with_extra = edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let err = frag.validate(&with_extra).unwrap_err();
        assert_eq!(
            err,
            FragError::NotAPartition {
                missing: 1,
                duplicated: 0
            }
        );

        let dup = Fragmentation::new(
            5,
            vec![edges(&[(0, 1), (1, 2)]), edges(&[(1, 2), (2, 3), (3, 4)])],
            vec![vec![], vec![]],
        );
        let all = edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let err = dup.validate(&all).unwrap_err();
        assert_eq!(
            err,
            FragError::NotAPartition {
                missing: 0,
                duplicated: 1
            }
        );
    }

    #[test]
    fn fragment_diameter_uses_symmetric_view() {
        let f = Fragment::new(0, edges(&[(0, 1), (1, 2)]), &[]);
        assert_eq!(f.diameter(), 2);
        let empty = Fragment::new(1, vec![], &[]);
        assert_eq!(empty.diameter(), 0);
    }

    #[test]
    fn three_way_shared_node() {
        // Star: node 0 shared by three fragments.
        let frag = Fragmentation::new(
            4,
            vec![edges(&[(0, 1)]), edges(&[(0, 2)]), edges(&[(0, 3)])],
            vec![vec![], vec![], vec![]],
        );
        let ds = frag.disconnection_sets();
        assert_eq!(ds.len(), 3);
        for key in [(0, 1), (0, 2), (1, 2)] {
            assert_eq!(ds[&key], vec![NodeId(0)], "DS{key:?}");
        }
    }

    #[test]
    fn membership_bitsets() {
        let frag = path_split();
        let m = frag.node_membership();
        assert!(m[0].contains(2) && m[1].contains(2));
        assert!(m[0].contains(0) && !m[1].contains(0));
    }

    #[test]
    fn fragmentation_graph_of_path_split_is_single_edge() {
        let fg = path_split().fragmentation_graph();
        assert_eq!(fg.fragment_count(), 2);
        assert!(fg.is_acyclic());
    }

    #[test]
    fn local_graph_symmetric_expansion() {
        let f = Fragment::new(0, edges(&[(0, 1)]), &[]);
        assert_eq!(f.local_graph(2, false).edge_count(), 1);
        assert_eq!(f.local_graph(2, true).edge_count(), 2);
    }
}
